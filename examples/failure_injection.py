#!/usr/bin/env python3
"""Failure injection: adversaries, hidden 0-chains, and why naive protocols break.

This example exercises the failure substrate directly:

* the introduction's counterexample — a faulty agent that reveals its 0 to a
  single confidant at the last possible round, which splits naive 0-biased
  protocols but not the paper's 0-chain protocols;
* a hidden-chain adversary — a chain of faulty agents that keeps a 0-decision
  propagating in secret, forcing everyone else to wait the full t+1 rounds;
* random sending-omission adversaries, with the EBA specification checked on
  every run and the worst observed decision round reported;
* the generalized failure models — a receive-side deaf agent (``RO(t)``) and a
  general-omission partition (``GO(t)``) — swept through the same pipeline.

Run it with:  ``python examples/failure_injection.py``
"""

from repro import (
    MinProtocol,
    NaiveZeroBiasedProtocol,
    OptimalFipProtocol,
    RunSpec,
    Sweep,
    check_eba,
)
from repro.analysis import longest_zero_chain, zero_chains
from repro.experiments import agreement_violation
from repro.failures import random_omission_adversaries
from repro.workloads import (
    hidden_chain_scenario,
    intro_counterexample,
    partition_scenario,
    random_preferences,
    silent_receiver_scenario,
)


def intro_counterexample_demo() -> None:
    print("=" * 72)
    print("1. The introduction's counterexample (n=4, t=1)")
    print("=" * 72)
    n, t = 4, 1
    preferences, pattern = intro_counterexample(n=n, t=t)
    for protocol in (NaiveZeroBiasedProtocol(t), MinProtocol(t)):
        trace = RunSpec(protocol, n, preferences, pattern).run()
        report = check_eba(trace)
        decisions = {agent: trace.decision_value(agent) for agent in sorted(trace.nonfaulty)}
        print(f"{protocol.name:>10}: nonfaulty decisions {decisions} -> "
              f"{'Agreement VIOLATED' if report.agreement else 'EBA satisfied'}")
    print()
    print(agreement_violation.report(sizes=((3, 1), (5, 2), (7, 3))))
    print()


def hidden_chain_demo() -> None:
    print("=" * 72)
    print("2. A hidden 0-chain (n=7, chain 0 -> 1 -> 2)")
    print("=" * 72)
    n, t = 7, 3
    preferences, pattern = hidden_chain_scenario(n, chain_length=2)
    for protocol in (MinProtocol(t), OptimalFipProtocol(t)):
        trace = RunSpec(protocol, n, preferences, pattern).run()
        print(f"{protocol.name:>10}: decisions "
              f"{ {a: (trace.decision_round(a), trace.decision_value(a)) for a in range(n)} }")
        print(f"{'':>12}longest 0-chain in the run: {longest_zero_chain(trace)}")
    print()


def random_adversaries_demo() -> None:
    print("=" * 72)
    print("3. Random sending-omission adversaries (n=6, t=2, 20 runs)")
    print("=" * 72)
    n, t, count = 6, 2, 20
    adversaries = random_omission_adversaries(n, t, horizon=t + 3, count=count, seed=42)
    preferences = random_preferences(n, count, seed=43)
    protocol = MinProtocol(t)
    # One declarative sweep replaces the hand-rolled loop; the workload is the
    # zip of random preferences and random adversaries.
    results = (Sweep.of(protocol)
               .on(list(zip(preferences, adversaries)))
               .run())
    reports = results.check_eba(deadline=t + 2, validity_for_faulty=True)
    all_ok = all(report.ok for report in reports[protocol.name])
    worst_round = 0
    for trace in results[protocol.name]:
        last = trace.last_decision_round()
        worst_round = max(worst_round, last or 0)
        if zero_chains(trace):
            chain = longest_zero_chain(trace)
            assert chain is not None
    print(f"all {count} runs satisfy EBA with deadline t+2={t + 2}: {all_ok}")
    print(f"worst observed decision round: {worst_round}")
    print()


def failure_model_registry_demo() -> None:
    print("=" * 72)
    print("4. Beyond SO(t): receive and general omissions (n=6, t=2)")
    print("=" * 72)
    n, t = 6, 2
    scenarios = {
        "deaf agents (RO)": silent_receiver_scenario(n, t),
        "partitioned 0-holders (GO)": partition_scenario(n, t),
    }
    for label, (preferences, pattern) in scenarios.items():
        results = (Sweep.of(MinProtocol(t), OptimalFipProtocol(t))
                   .on([(preferences, pattern)])
                   .with_horizon(t + 4)
                   .run())
        print(f"--- {label}: {pattern.describe()} | preferences {list(preferences)}")
        for name in results:
            trace = results.trace(name)
            report = check_eba(trace, deadline=t + 2)
            decisions = {a: trace.decision_value(a) for a in sorted(trace.nonfaulty)}
            print(f"{name:>10}: nonfaulty decisions {decisions} -> "
                  f"{'EBA satisfied' if report.ok else report.violations()}")
    print()
    print("The failure-model comparison experiment (repro-eba failure-models)")
    print("runs this sweep for every registered model and re-checks the")
    print("Theorem 6.5/6.6 implementation claims per model.")
    print()


def main() -> None:
    intro_counterexample_demo()
    hidden_chain_demo()
    random_adversaries_demo()
    failure_model_registry_demo()


if __name__ == "__main__":
    main()
