#!/usr/bin/env python3
"""The Section 8 story: what does limited information exchange cost?

Reproduces the paper's cost/benefit comparison between the minimal, basic, and
full-information exchanges:

* Proposition 8.1 — bits sent per failure-free run,
* Proposition 8.2 — failure-free decision rounds,
* Example 7.1   — the one family of runs where full information genuinely wins,
* the Section 8 conjecture — how small the gap is under random failures.

Run it with:  ``python examples/compare_information_exchange.py [--full]``
(``--full`` also runs Example 7.1 at the paper's original size n=20, t=10,
which takes a few minutes because every FIP message carries an O(n^2 t) graph).
"""

import argparse

from repro.experiments import decision_rounds, example_7_1, fip_gap, message_complexity


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="also reproduce Example 7.1 at the paper's n=20, t=10")
    args = parser.parse_args()

    print(message_complexity.report(settings=((5, 1), (8, 3), (12, 5))))
    print()
    print(decision_rounds.report(settings=((5, 1), (8, 3), (12, 5))))
    print()
    print(example_7_1.report(n=10, t=5))
    print()
    print(fip_gap.report(n=6, t=2, count=25))

    if args.full:
        print()
        print("Reproducing Example 7.1 at the paper's original size (n=20, t=10)...")
        print(example_7_1.report(n=20, t=10, include_sweep=False))


if __name__ == "__main__":
    main()
