#!/usr/bin/env python3
"""Quickstart: run the paper's protocols on a small omission-failure scenario.

This script walks through the library's core workflow on the ``repro.api``
orchestration layer:

1. describe the run declaratively: an action protocol (``P_min``, ``P_basic``,
   or ``P_opt`` — each brings its own information-exchange protocol), the
   initial preferences, and a failure pattern (the adversary);
2. execute the spec — a single :class:`repro.api.RunSpec`, or a
   :class:`repro.api.Sweep` over all three protocols at once (swap in
   ``ParallelExecutor()`` to use every core);
3. inspect the traces and check the EBA specification.

Migration note — the legacy entry points map onto the api layer as follows:

* ``simulate(P, n, prefs, pattern)``      → ``RunSpec(P, n, prefs, pattern).run()``
* ``run_protocol(P, n, prefs, pattern)``  → ``RunSpec(P, n, prefs, pattern).run()``
* ``run_batch(P, n, scenarios)``          → ``Sweep.of(P).on(scenarios).run().batch(P.name)``
* ``corresponding_runs(Ps, n, p, f)``     → ``Sweep.of(*Ps).on([(p, f)]).run().corresponding(0)``
* ``sweep(Ps, n, scenarios)``             → ``Sweep.of(*Ps).on(scenarios).run().batches()``

Run it with:  ``python examples/quickstart.py``
"""

from repro import (
    BasicProtocol,
    FailurePattern,
    MinProtocol,
    OptimalFipProtocol,
    Sweep,
    check_eba,
)
from repro.analysis import zero_chains


def main() -> None:
    n, t = 6, 2

    # Scenario: agent 5 prefers 0, everyone else prefers 1.  Agent 0 is faulty
    # and drops all of its round-1 and round-2 messages except the one to agent 1.
    preferences = (1, 1, 1, 1, 1, 0)
    pattern = FailurePattern.from_blocked(
        n,
        blocked=[(r, 0, j) for r in (0, 1) for j in range(n) if j not in (0, 1)],
    )
    print("Scenario:", pattern.describe(), "| preferences:", list(preferences))
    print()

    # One sweep executes all three protocols on the same initial global state
    # (corresponding runs).  Pass ParallelExecutor() to run on a process pool.
    results = (Sweep.of(MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t))
               .on([(preferences, pattern)])
               .run())

    for name in results:
        trace = results.trace(name)
        report = check_eba(trace, deadline=t + 2)
        print(f"--- {name} over {trace.exchange_name} ---")
        print("decisions:", {agent: (trace.decision_round(agent), trace.decision_value(agent))
                             for agent in range(n)})
        print("bits sent:", trace.total_bits(), "| messages:", trace.total_messages())
        print("0-chains :", zero_chains(trace))
        print("EBA spec :", "OK" if report.ok else report.violations())
        print()

    # The result set also drives the dominance analysis directly:
    print(results.compare("P_opt", "P_min").summary())


if __name__ == "__main__":
    main()
