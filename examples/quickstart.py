#!/usr/bin/env python3
"""Quickstart: run the paper's protocols on a small omission-failure scenario.

This script walks through the library's core workflow:

1. pick an action protocol (``P_min``, ``P_basic``, or ``P_opt``) — each one
   brings its own information-exchange protocol;
2. describe the run: initial preferences plus a failure pattern (the adversary);
3. simulate, inspect the trace, and check the EBA specification.

Run it with:  ``python examples/quickstart.py``
"""

from repro import (
    BasicProtocol,
    FailurePattern,
    MinProtocol,
    OptimalFipProtocol,
    check_eba,
    simulate,
)
from repro.analysis import zero_chains


def main() -> None:
    n, t = 6, 2

    # Scenario: agent 5 prefers 0, everyone else prefers 1.  Agent 0 is faulty
    # and drops all of its round-1 and round-2 messages except the one to agent 1.
    preferences = [1, 1, 1, 1, 1, 0]
    pattern = FailurePattern.from_blocked(
        n,
        blocked=[(r, 0, j) for r in (0, 1) for j in range(n) if j not in (0, 1)],
    )
    print("Scenario:", pattern.describe(), "| preferences:", preferences)
    print()

    for protocol in (MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)):
        trace = simulate(protocol, n, preferences, pattern)
        report = check_eba(trace, deadline=t + 2)
        print(f"--- {protocol.name} over {trace.exchange_name} ---")
        print("decisions:", {agent: (trace.decision_round(agent), trace.decision_value(agent))
                             for agent in range(n)})
        print("bits sent:", trace.total_bits(), "| messages:", trace.total_messages())
        print("0-chains :", zero_chains(trace))
        print("EBA spec :", "OK" if report.ok else report.violations())
        print()


if __name__ == "__main__":
    main()
