"""``repro.store`` — the content-addressed artifact store.

The repo's hot path is exponential: building an interpreted system at n=4
takes seconds, and historically every experiment, CLI invocation, and CI job
rebuilt identical systems and re-ran identical sweeps from scratch.  This
package caches those artifacts once and addresses them by *content*:

* :mod:`repro.store.keys` — canonical hashing of specs, protocols, patterns,
  models, contexts, and programs, with a store version and a code fingerprint
  folded into every key so stale caches can never return wrong results;
* :mod:`repro.store.backends` — pluggable byte stores (filesystem default,
  in-memory for tests);
* :mod:`repro.store.store` — :class:`ArtifactStore`: compressed self-labelled
  payloads, corruption-as-miss recovery, an in-memory LRU layer, size
  accounting, and LRU eviction;
* :mod:`repro.store.caching` — the domain keys and the
  :class:`CachingExecutor` wrapper that makes caching compose with
  ``--parallel`` / ``--jobs`` and makes sweeps resumable.

Everything that computes an expensive artifact takes a ``store=`` argument
(``RunSpec.run`` / ``SweepSpec.run`` / ``Sweep.run``, ``build_system``,
``EBAContext.build_system``, ``check_implements``, ``check_safety``, every
experiment's ``report``); pass an :class:`ArtifactStore`, a cache-directory
path, or ``None`` (off — unless ``REPRO_EBA_CACHE=1`` opts the process in).
The CLI exposes the store as ``--cache`` / ``--cache-dir`` flags and the
``repro-eba cache stats|clear|warm`` subcommand.
"""

from .backends import FilesystemBackend, MemoryBackend, StoreBackend, StoreEntry
from .caching import (
    CachingExecutor,
    implementation_report_key,
    run_task_key,
    safety_report_key,
    sweep_key,
    system_key,
)
from .keys import STORE_VERSION, code_fingerprint, content_key, token
from .store import (
    ArtifactStore,
    StoreLike,
    StoreStats,
    cache_enabled_by_env,
    default_cache_dir,
    default_store,
    resolve_store,
)

__all__ = [
    "ArtifactStore",
    "CachingExecutor",
    "FilesystemBackend",
    "MemoryBackend",
    "STORE_VERSION",
    "StoreBackend",
    "StoreEntry",
    "StoreLike",
    "StoreStats",
    "cache_enabled_by_env",
    "code_fingerprint",
    "content_key",
    "default_cache_dir",
    "default_store",
    "implementation_report_key",
    "resolve_store",
    "run_task_key",
    "safety_report_key",
    "sweep_key",
    "system_key",
    "token",
]
