"""The content-addressed artifact store.

:class:`ArtifactStore` layers three things over a byte
:class:`~repro.store.backends.StoreBackend`:

* **Serialization** — artifacts are written as a small self-describing payload
  (magic, artifact kind, format, then a gzip-compressed body).  Built systems,
  run traces, and reports use compressed pickle; JSON is available for
  artifacts that should stay tool-readable (experiment report text, sweep
  checkpoint manifests).
* **Corruption recovery** — a payload that fails to parse, decompress, or
  deserialize is *deleted and treated as a miss*, never raised: a damaged
  cache degrades to recomputation, it cannot crash a pipeline.  Backend IO
  errors (a full disk, revoked permissions, a flaky network mount) degrade
  the same way: reads report misses, writes are skipped (the in-memory layer
  still remembers the artifact), a one-time warning is emitted, and the
  ``io_errors`` counter in :meth:`ArtifactStore.stats` records the damage.
* **An in-memory LRU layer** — deserialized artifacts are kept in a small
  per-process LRU so repeated access within one process (e.g. the same built
  system consulted by several theorem checks) skips both disk and unpickling.
  Cached artifacts are shared instances: treat everything a store returns as
  frozen (see :meth:`ArtifactStore.get`).

Size accounting and LRU eviction run against the backend's metadata, so
``max_bytes`` bounds the on-disk footprint; :meth:`ArtifactStore.stats` feeds
the ``repro-eba cache stats`` CLI.

The default store lives at ``~/.cache/repro-eba``; override the location with
the ``REPRO_EBA_CACHE_DIR`` environment variable or any explicit path.
Setting ``REPRO_EBA_CACHE=1`` opts every ``store=None`` call site into the
default store, which is how fully external entry points (the quickstart
example, CI smoke runs) get caching without code changes.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.errors import StoreError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.logs import get_logger
from .backends import FilesystemBackend, MemoryBackend, StoreBackend

_logger = get_logger("store")

# Process-wide mirrors of the per-instance session counters: every store in
# the process increments these alongside its own tallies, so ``/metrics`` and
# ``repro-eba obs`` see one aggregate while ``StoreStats.as_dict()`` (a pinned
# schema) keeps its per-instance meaning.
_M_HITS = _metrics.counter("repro_store_hits_total",
                           "Artifact-store hits (memory or backend)")
_M_MEMORY_HITS = _metrics.counter("repro_store_memory_hits_total",
                                  "Artifact-store hits served from the in-memory LRU")
_M_MISSES = _metrics.counter("repro_store_misses_total", "Artifact-store misses")
_M_PUTS = _metrics.counter("repro_store_puts_total", "Artifact-store writes")
_M_CORRUPTED = _metrics.counter("repro_store_corrupted_total",
                                "Corrupt store entries deleted and recomputed")
_M_IO_ERRORS = _metrics.counter("repro_store_io_errors_total",
                                "Store backend IO failures (degraded to uncached)")

#: First bytes of every stored payload; version-suffixed so a format change is
#: just a corrupt (= recomputed) entry for older readers, never a wrong value.
MAGIC = b"REBA1"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_EBA_CACHE_DIR"

#: Environment variable that opts ``store=None`` call sites into the default
#: store ("1"/"true"/"yes"/"on", case-insensitive).
CACHE_ENABLE_ENV = "REPRO_EBA_CACHE"

#: Environment variable bounding the default store's on-disk size, in bytes.
CACHE_MAX_BYTES_ENV = "REPRO_EBA_CACHE_MAX_BYTES"

_SERIALIZERS = ("pickle", "json")


@dataclass
class StoreStats:
    """A snapshot of the store: persistent footprint plus session counters."""

    entries: int = 0
    total_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    puts: int = 0
    corrupted: int = 0
    io_errors: int = 0

    def describe(self) -> str:
        """A human-readable multi-line rendering (used by ``cache stats``)."""
        lines = [
            f"entries      : {self.entries}",
            f"total size   : {_format_bytes(self.total_bytes)}",
        ]
        for kind in sorted(self.by_kind):
            lines.append(f"  {kind:<18}: {self.by_kind[kind]}")
        lines.append(f"session hits : {self.hits} ({self.memory_hits} from memory)")
        lines.append(f"session miss : {self.misses}")
        lines.append(f"session puts : {self.puts}")
        if self.corrupted:
            lines.append(f"corrupted    : {self.corrupted} (deleted, recomputed)")
        if self.io_errors:
            lines.append(f"io errors    : {self.io_errors} (degraded to uncached)")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """The machine-readable view (``cache stats --json``, the service's
        ``/stats``).  The schema is pinned by ``tests/test_cli.py``; treat key
        removals or renames as breaking changes to both consumers.
        """
        return {
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_kind": dict(sorted(self.by_kind.items())),
            "session": {
                "hits": self.hits,
                "memory_hits": self.memory_hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupted": self.corrupted,
                "io_errors": self.io_errors,
            },
        }


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(size)} B"  # pragma: no cover - unreachable


def _encode(obj: object, kind: str, serializer: str) -> bytes:
    if serializer == "json":
        body = json.dumps(obj, sort_keys=True).encode("utf-8")
    else:
        body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    # mtime=0 keeps gzip output deterministic for identical artifacts.
    buffer = io.BytesIO()
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as zipped:
        zipped.write(body)
    return b"\n".join([MAGIC, kind.encode("utf-8"), serializer.encode("utf-8"),
                       buffer.getvalue()])


def _decode(payload: bytes) -> object:
    magic, kind, serializer, body = payload.split(b"\n", 3)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    del kind  # informational; stats reads it via _payload_kind
    body = gzip.decompress(body)
    if serializer == b"json":
        return json.loads(body.decode("utf-8"))
    if serializer == b"pickle":
        return pickle.loads(body)
    raise ValueError(f"unknown serializer {serializer!r}")


def _payload_kind(payload: bytes) -> Optional[str]:
    try:
        magic, kind, _rest = payload.split(b"\n", 2)
    except ValueError:
        return None
    if magic != MAGIC:
        return None
    try:
        return kind.decode("utf-8")
    except UnicodeDecodeError:
        return None


class ArtifactStore:
    """Content-addressed artifact cache over a pluggable backend.

    Parameters
    ----------
    backend:
        Where bytes live; defaults to an in-process :class:`MemoryBackend`.
    max_bytes:
        Optional bound on the backend footprint; exceeding it after a write
        evicts least-recently-used entries until back under the bound.
    memory_entries:
        Capacity of the per-process deserialized-object LRU (0 disables it).
    """

    def __init__(self, backend: Optional[StoreBackend] = None,
                 max_bytes: Optional[int] = None,
                 memory_entries: int = 64) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be non-negative, got {max_bytes}")
        if memory_entries < 0:
            raise StoreError(f"memory_entries must be non-negative, got {memory_entries}")
        self.backend: StoreBackend = backend if backend is not None else MemoryBackend()
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        # One store instance is shared across threads (the service's worker
        # pool, concurrent sweeps); the backend is safe on its own (atomic
        # files / a dict), but the memory LRU, the counters, and the size
        # estimate are read-modify-write state that needs a lock.  Reentrant
        # because put() may call evict_to().
        self._lock = threading.RLock()
        # Running upper bound on the backend footprint, so put() can decide
        # whether eviction is even needed without walking the backend every
        # time.  Overwrites make it over-count, which only triggers an exact
        # recount (in evict_to) earlier than necessary — the safe direction.
        self._size_estimate: Optional[int] = None
        self._hits = 0
        self._memory_hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupted = 0
        self._io_errors = 0
        self._io_warned = False

    def _backend_error(self, operation: str, exc: Exception) -> None:
        """Record a backend IO failure; log a warning the first time only.

        The cache is an accelerator, not a dependency: a backend that starts
        raising (full disk, revoked permissions, flaky mount) must degrade
        every operation to its uncached behaviour, not crash the pipeline.
        One ``repro.store`` WARNING per store instance keeps a long sweep from
        drowning its output in repeats; the ``io_errors`` counter (and its
        process-wide metric) keeps the full tally.
        """
        with self._lock:
            self._io_errors += 1
            _M_IO_ERRORS.inc()
            if self._io_warned:
                return
            self._io_warned = True
        _logger.warning(
            "artifact store backend failed during %s (%r); degrading to "
            "uncached computation (further backend errors counted silently "
            "— see cache stats)", operation, exc)

    # ------------------------------------------------------------------ get/put

    def get(self, key: str) -> Optional[object]:
        """The cached artifact, or ``None`` on miss (including corrupt entries).

        Treat the result as **frozen**: within one process the memory LRU
        hands every caller the *same* instance (that is what makes repeat
        access free), so mutating a returned report/system would corrupt
        later in-process hits while the on-disk copy keeps the original —
        the same sharing contract as ``functools.lru_cache``.
        """
        if not _trace.is_active():
            return self._get_impl(key)
        with _trace.span("store.get", "store", {"key": key[:16]}) as span:
            artifact = self._get_impl(key)
            span.set("hit", artifact is not None)
            return artifact

    def _get_impl(self, key: str) -> Optional[object]:
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self._hits += 1
                self._memory_hits += 1
                _M_HITS.inc()
                _M_MEMORY_HITS.inc()
                return self._memory[key]
            try:
                payload = self.backend.get(key)
            except Exception as exc:
                # IO degradation: an unreadable backend is a miss, not a crash.
                self._backend_error("get", exc)
                self._misses += 1
                _M_MISSES.inc()
                return None
            if payload is None:
                self._misses += 1
                _M_MISSES.inc()
                return None
            try:
                artifact = _decode(payload)
            except Exception:
                # Corruption recovery: drop the entry and report a miss so the
                # caller recomputes; never propagate a damaged cache as an error.
                try:
                    self.backend.delete(key)
                except Exception as exc:
                    self._backend_error("delete", exc)
                self._corrupted += 1
                self._misses += 1
                _M_CORRUPTED.inc()
                _M_MISSES.inc()
                return None
            self._hits += 1
            _M_HITS.inc()
            self._remember_locked(key, artifact)
            return artifact

    def put(self, key: str, artifact: object, kind: str = "artifact",
            serializer: str = "pickle") -> None:
        """Store an artifact under its content key.

        ``kind`` labels the artifact family for ``cache stats``; ``serializer``
        is ``"pickle"`` (default; any library object) or ``"json"`` (kept
        tool-readable on disk — report text, checkpoint manifests).
        """
        if serializer not in _SERIALIZERS:
            raise StoreError(f"unknown serializer {serializer!r}; use one of {_SERIALIZERS}")
        payload = _encode(artifact, kind, serializer)
        if not _trace.is_active():
            self._put_impl(key, payload, artifact)
            return
        with _trace.span("store.put", "store",
                         {"key": key[:16], "kind": kind,
                          "bytes": len(payload)}):
            self._put_impl(key, payload, artifact)

    def _put_impl(self, key: str, payload: bytes, artifact: object) -> None:
        with self._lock:
            try:
                self.backend.put(key, payload)
            except Exception as exc:
                # IO degradation: skip the persistent write but keep the
                # artifact in the memory layer, so this process still gets
                # repeat-access sharing even with a dead disk.
                self._backend_error("put", exc)
                self._remember_locked(key, artifact)
                return
            self._puts += 1
            _M_PUTS.inc()
            self._remember_locked(key, artifact)
            if self.max_bytes is not None:
                if self._size_estimate is None:
                    self._size_estimate = self.total_bytes()
                else:
                    self._size_estimate += len(payload)
                if self._size_estimate > self.max_bytes:
                    self.evict_to(self.max_bytes, protect=key)

    def contains(self, key: str) -> bool:
        """Whether the key is present — no payload read, no hit counted, and no
        recency update (so checkpoint scans cannot perturb LRU eviction)."""
        with self._lock:
            if key in self._memory:
                return True
            try:
                return self.backend.contains(key)
            except Exception as exc:
                self._backend_error("contains", exc)
                return False

    def _remember_locked(self, key: str, artifact: object) -> None:
        # Caller holds self._lock (the _locked suffix is the contract).
        if self.memory_entries <= 0:
            return
        self._memory[key] = artifact
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------ accounting

    def total_bytes(self) -> int:
        """The backend footprint in bytes (0 if the backend cannot be walked)."""
        try:
            return sum(entry.size for entry in self.backend.entries())
        except Exception as exc:
            self._backend_error("entries", exc)
            return 0

    def evict_to(self, max_bytes: int, protect: Optional[str] = None) -> int:
        """Evict least-recently-used entries until the footprint is ≤ ``max_bytes``.

        ``protect`` (typically the key just written) is never evicted, so a
        single artifact larger than the bound stays usable.  Returns the number
        of entries evicted.

        Entries tie on ``last_used`` more often than wall-clock intuition
        suggests — ``st_mtime`` has whole-second granularity on some
        filesystems, so a burst of writes lands on one timestamp — and a
        recency-only sort would make the eviction order among them arbitrary
        (directory-listing order).  The key is the deterministic tie-break:
        same store state, same evictions, on every platform.
        """
        with self._lock:
            try:
                entries = sorted(self.backend.entries(),
                                 key=lambda entry: (entry.last_used, entry.key))
            except Exception as exc:
                self._backend_error("entries", exc)
                return 0
            total = sum(entry.size for entry in entries)
            evicted = 0
            for entry in entries:
                if total <= max_bytes:
                    break
                if entry.key == protect:
                    continue
                try:
                    deleted = self.backend.delete(entry.key)
                except Exception as exc:
                    self._backend_error("delete", exc)
                    deleted = False
                if deleted:
                    self._memory.pop(entry.key, None)
                    total -= entry.size
                    evicted += 1
            self._size_estimate = total  # exact again after the walk
            return evicted

    def clear(self) -> int:
        """Delete every entry (and the memory layer); returns the number deleted."""
        with self._lock:
            deleted = 0
            try:
                for entry in list(self.backend.entries()):
                    if self.backend.delete(entry.key):
                        deleted += 1
            except Exception as exc:
                self._backend_error("clear", exc)
            self._memory.clear()
            self._size_estimate = 0
            return deleted

    def stats(self) -> StoreStats:
        """Current footprint (from the backend) plus this process's counters.

        Kind labels come from :meth:`StoreBackend.peek`, which reads only the
        payload header and leaves recency untouched — running ``cache stats``
        must not reorder (or fully re-read) the cache it is describing.
        """
        with self._lock:
            stats = StoreStats(hits=self._hits, misses=self._misses,
                               memory_hits=self._memory_hits, puts=self._puts,
                               corrupted=self._corrupted,
                               io_errors=self._io_errors)
        try:
            for entry in self.backend.entries():
                stats.entries += 1
                stats.total_bytes += entry.size
                try:
                    head = self.backend.peek(entry.key)
                except Exception as exc:
                    self._backend_error("peek", exc)
                    head = None
                kind = _payload_kind(head) if head is not None else None
                label = kind if kind is not None else "(unreadable)"
                stats.by_kind[label] = stats.by_kind.get(label, 0) + 1
        except Exception as exc:
            self._backend_error("entries", exc)
        with self._lock:
            # Re-read under the lock: the walk above may have raised (counted
            # by _backend_error) and concurrent operations may have failed
            # too — an unlocked read here could publish a torn count.
            stats.io_errors = self._io_errors
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(backend={self.backend!r}, max_bytes={self.max_bytes})"


# ------------------------------------------------------------------ resolution

#: What call sites may pass as a ``store=`` argument.
StoreLike = Union[ArtifactStore, str, Path, None]


def default_cache_dir() -> Path:
    """The default on-disk location: ``$REPRO_EBA_CACHE_DIR`` or ``~/.cache/repro-eba``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-eba").expanduser()


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get(CACHE_MAX_BYTES_ENV)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise StoreError(f"{CACHE_MAX_BYTES_ENV}={raw!r} is not an integer byte count")


def default_store(path: "str | Path | None" = None,
                  max_bytes: Optional[int] = None) -> ArtifactStore:
    """The filesystem-backed store at ``path`` (default: :func:`default_cache_dir`)."""
    root = Path(path).expanduser() if path is not None else default_cache_dir()
    if max_bytes is None:
        max_bytes = _env_max_bytes()
    return ArtifactStore(FilesystemBackend(root), max_bytes=max_bytes)


def cache_enabled_by_env() -> bool:
    """Whether ``REPRO_EBA_CACHE`` opts ``store=None`` call sites into caching."""
    return os.environ.get(CACHE_ENABLE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


#: Stores resolved from a path (or the env opt-in), memoized per absolute
#: path so repeated ``store="dir"`` / ``REPRO_EBA_CACHE=1`` call sites share
#: one handle — and with it the in-memory LRU and the session counters —
#: instead of re-paying disk + unpickle on every nominal "hit".
_RESOLVED_STORES: Dict[Path, ArtifactStore] = {}


def _shared_store(path: "str | Path | None") -> ArtifactStore:
    root = (Path(path).expanduser() if path is not None else default_cache_dir()).resolve()
    store = _RESOLVED_STORES.get(root)
    if store is None:
        store = default_store(root)
        _RESOLVED_STORES[root] = store
    return store


def resolve_store(store: StoreLike) -> Optional[ArtifactStore]:
    """Coerce a ``store=`` argument to an :class:`ArtifactStore` (or ``None`` = off).

    ``None`` normally disables caching, but honours the ``REPRO_EBA_CACHE``
    environment opt-in (returning the default store) so external entry points
    can be cached without threading an argument through.  Strings and paths
    open a filesystem store at that directory; the same path always resolves
    to the same (process-wide) store instance.
    """
    if store is None:
        if cache_enabled_by_env():
            return _shared_store(None)
        return None
    if isinstance(store, ArtifactStore):
        return store
    if isinstance(store, (str, Path)):
        return _shared_store(store)
    raise StoreError(
        f"{store!r} is not a store; pass an ArtifactStore, a cache directory path, or None"
    )
