"""Cache-aware execution: domain keys plus the :class:`CachingExecutor`.

This module is where content addressing meets the ``repro.api`` execution
model.  It provides the canonical keys for the artifact families the library
caches —

========================  =====================================================
kind                      keyed by
========================  =====================================================
``run``                   one executor task (protocol, n, preferences,
                          pattern, horizon)
``resultset``             a whole :class:`~repro.api.specs.SweepSpec`
``system``                (protocol, n, horizon, patterns, preference vectors)
``implementation-report`` (protocol, program, context, max_time,
                          max_mismatches)
``safety-report``         (protocol, context, max_violations)
========================  =====================================================

— and the :class:`CachingExecutor`, an :class:`~repro.api.executors.Executor`
wrapper that serves cached traces and forwards only the *missing* tasks to its
inner backend.  Because caching composes as an executor, it stacks freely with
``--parallel`` / ``--jobs``: misses fan out over the process pool while hits
cost one store read.  Per-task caching is also what makes sweeps resumable: an
interrupted sweep has already persisted every completed run, so rerunning it
restarts at the first missing key (see
:meth:`repro.api.specs.SweepSpec.missing_tasks`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from .keys import content_key
from .store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.executors import Executor, RunTask
    from ..api.specs import SweepSpec


# ------------------------------------------------------------------ domain keys

def run_task_key(task: "RunTask") -> str:
    """The content key of one simulation run (an executor task)."""
    protocol, n, preferences, pattern, horizon = task
    return content_key("run", protocol, n, tuple(preferences), pattern, horizon)


def sweep_key(spec: "SweepSpec") -> str:
    """The content key of a whole sweep's :class:`~repro.api.results.ResultSet`.

    The spec is a frozen dataclass, so its token covers protocols, workload,
    horizon, and seed; any field change mints a different key.
    """
    return content_key("resultset", spec)


def system_key(protocol, n: int, horizon: int, patterns: Sequence,
               preference_vectors: Sequence,
               pattern_weights: Optional[Sequence[int]] = None) -> str:
    """The content key of a built :class:`~repro.systems.interpreted.InterpretedSystem`.

    ``pattern_weights`` (per-pattern orbit multiplicities) is folded in only
    when present: a symmetry-reduced system carries
    :attr:`~repro.systems.interpreted.InterpretedSystem.run_weights` metadata
    and must never alias the exhaustive build of the same pattern list.
    """
    if pattern_weights is None:
        return content_key("system", protocol, n, horizon, tuple(patterns),
                           tuple(preference_vectors))
    return content_key("system", protocol, n, horizon, tuple(patterns),
                       tuple(preference_vectors),
                       ("pattern-weights", tuple(pattern_weights)))


def implementation_report_key(protocol, program, context,
                              max_time: Optional[int], max_mismatches: int) -> str:
    """The content key of a :func:`~repro.kbp.implementation.check_implements` report."""
    return content_key("implementation-report", protocol, program, context,
                       max_time, max_mismatches)


def safety_report_key(protocol, context, max_violations: int) -> str:
    """The content key of a :func:`~repro.kbp.safety.check_safety` report."""
    return content_key("safety-report", protocol, context, max_violations)


# ------------------------------------------------------------------ the executor

class CachingExecutor:
    """An executor that consults an :class:`ArtifactStore` before computing.

    Wraps any inner :class:`~repro.api.executors.Executor` (``None`` = the
    serial default).  ``run_tasks`` looks every task up by content key, runs
    only the misses on the inner backend — preserving the library-wide
    task-order determinism contract — and persists the fresh traces before
    returning, so a crash mid-sweep loses at most the in-flight batch.
    """

    def __init__(self, store: ArtifactStore,
                 inner: Optional["Executor"] = None) -> None:
        from ..api.executors import resolve_executor
        self.store = store
        self.inner = resolve_executor(inner)

    def run_tasks(self, tasks: Sequence["RunTask"]) -> List:
        tasks = list(tasks)
        keys = [run_task_key(task) for task in tasks]
        results: List = [self.store.get(key) for key in keys]
        missing = [index for index, trace in enumerate(results) if trace is None]
        if missing:
            fresh = self.inner.run_tasks([tasks[index] for index in missing])
            for index, trace in zip(missing, fresh):
                self.store.put(keys[index], trace, kind="run")
                results[index] = trace
        return results

    def run_batches(self, batches: Sequence) -> List:
        """Batched-construction work items, cache-aware.

        Each batch (a :data:`~repro.simulation.batch.BatchTask` — a pattern
        chunk crossed with the preference vectors) expands to its per-run
        tasks and is looked up under the *same* per-run content keys as
        ``run_tasks``, so traces cached by one entry path are hits for the
        other.  A batch with any missing run is recomputed **whole** through
        the inner backend's ``run_batches`` — forwarding only the missing runs
        would shatter the round-major sharing the batch engine exists for —
        and every fresh trace is persisted individually, keeping sweeps
        resumable at per-run granularity.

        Before this method existed, :func:`~repro.systems.interpreted.build_system`
        saw a ``run_tasks``-only executor and silently fell back to per-run
        simulation whenever ``--cache`` was on — caching *disabled* the ~18×
        batched engine.  Now the fan-out is preserved: the inner executor
        still receives batch work items (orbit-aligned chunks under
        ``--parallel``), pinned by ``tests/test_store_caching.py``.
        """
        batches = list(batches)
        per_batch: List[Optional[List]] = []
        missing: List[int] = []
        missing_keys: List[List[str]] = []
        for index, batch in enumerate(batches):
            protocol, n, preference_vectors, patterns, horizon = batch
            keys = [run_task_key((protocol, n, preferences, pattern, horizon))
                    for pattern in patterns
                    for preferences in preference_vectors]
            traces = [self.store.get(key) for key in keys]
            if any(trace is None for trace in traces):
                per_batch.append(None)
                missing.append(index)
                missing_keys.append(keys)
            else:
                per_batch.append(traces)
        if missing:
            to_run = [batches[index] for index in missing]
            if hasattr(self.inner, "run_batches"):
                fresh = list(self.inner.run_batches(to_run))
            else:
                fresh = self.inner.run_tasks([
                    (protocol, n, preferences, pattern, horizon)
                    for protocol, n, preference_vectors, patterns, horizon in to_run
                    for pattern in patterns
                    for preferences in preference_vectors
                ])
            cursor = 0
            for index, keys in zip(missing, missing_keys):
                chunk = fresh[cursor:cursor + len(keys)]
                cursor += len(keys)
                for key, trace in zip(keys, chunk):
                    self.store.put(key, trace, kind="run")
                per_batch[index] = chunk
        results: List = []
        for traces in per_batch:
            results.extend(traces)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachingExecutor(store={self.store!r}, inner={self.inner!r})"
