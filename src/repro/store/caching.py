"""Cache-aware execution: domain keys plus the :class:`CachingExecutor`.

This module is where content addressing meets the ``repro.api`` execution
model.  It provides the canonical keys for the artifact families the library
caches —

========================  =====================================================
kind                      keyed by
========================  =====================================================
``run``                   one executor task (protocol, n, preferences,
                          pattern, horizon)
``resultset``             a whole :class:`~repro.api.specs.SweepSpec`
``system``                (protocol, n, horizon, patterns, preference vectors)
``implementation-report`` (protocol, program, context, max_time,
                          max_mismatches)
``safety-report``         (protocol, context, max_violations)
========================  =====================================================

— and the :class:`CachingExecutor`, an :class:`~repro.api.executors.Executor`
wrapper that serves cached traces and forwards only the *missing* tasks to its
inner backend.  Because caching composes as an executor, it stacks freely with
``--parallel`` / ``--jobs``: misses fan out over the process pool while hits
cost one store read.  Per-task caching is also what makes sweeps resumable: an
interrupted sweep has already persisted every completed run, so rerunning it
restarts at the first missing key (see
:meth:`repro.api.specs.SweepSpec.missing_tasks`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from .keys import content_key
from .store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.executors import Executor, RunTask
    from ..api.specs import SweepSpec


# ------------------------------------------------------------------ domain keys

def run_task_key(task: "RunTask") -> str:
    """The content key of one simulation run (an executor task)."""
    protocol, n, preferences, pattern, horizon = task
    return content_key("run", protocol, n, tuple(preferences), pattern, horizon)


def sweep_key(spec: "SweepSpec") -> str:
    """The content key of a whole sweep's :class:`~repro.api.results.ResultSet`.

    The spec is a frozen dataclass, so its token covers protocols, workload,
    horizon, and seed; any field change mints a different key.
    """
    return content_key("resultset", spec)


def system_key(protocol, n: int, horizon: int, patterns: Sequence,
               preference_vectors: Sequence,
               pattern_weights: Optional[Sequence[int]] = None) -> str:
    """The content key of a built :class:`~repro.systems.interpreted.InterpretedSystem`.

    ``pattern_weights`` (per-pattern orbit multiplicities) is folded in only
    when present: a symmetry-reduced system carries
    :attr:`~repro.systems.interpreted.InterpretedSystem.run_weights` metadata
    and must never alias the exhaustive build of the same pattern list.
    """
    if pattern_weights is None:
        return content_key("system", protocol, n, horizon, tuple(patterns),
                           tuple(preference_vectors))
    return content_key("system", protocol, n, horizon, tuple(patterns),
                       tuple(preference_vectors),
                       ("pattern-weights", tuple(pattern_weights)))


def implementation_report_key(protocol, program, context,
                              max_time: Optional[int], max_mismatches: int) -> str:
    """The content key of a :func:`~repro.kbp.implementation.check_implements` report."""
    return content_key("implementation-report", protocol, program, context,
                       max_time, max_mismatches)


def safety_report_key(protocol, context, max_violations: int) -> str:
    """The content key of a :func:`~repro.kbp.safety.check_safety` report."""
    return content_key("safety-report", protocol, context, max_violations)


# ------------------------------------------------------------------ the executor

class CachingExecutor:
    """An executor that consults an :class:`ArtifactStore` before computing.

    Wraps any inner :class:`~repro.api.executors.Executor` (``None`` = the
    serial default).  ``run_tasks`` looks every task up by content key, runs
    only the misses on the inner backend — preserving the library-wide
    task-order determinism contract — and persists the fresh traces before
    returning, so a crash mid-sweep loses at most the in-flight batch.
    """

    def __init__(self, store: ArtifactStore,
                 inner: Optional["Executor"] = None) -> None:
        from ..api.executors import resolve_executor
        self.store = store
        self.inner = resolve_executor(inner)

    def run_tasks(self, tasks: Sequence["RunTask"]) -> List:
        tasks = list(tasks)
        keys = [run_task_key(task) for task in tasks]
        results: List = [self.store.get(key) for key in keys]
        missing = [index for index, trace in enumerate(results) if trace is None]
        if missing:
            fresh = self.inner.run_tasks([tasks[index] for index in missing])
            for index, trace in zip(missing, fresh):
                self.store.put(keys[index], trace, kind="run")
                results[index] = trace
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachingExecutor(store={self.store!r}, inner={self.inner!r})"
