"""Canonical content hashing for cache keys.

Every artifact the store caches — a simulated run, a built
:class:`~repro.systems.interpreted.InterpretedSystem`, an implementation or
safety report, an executed :class:`~repro.api.results.ResultSet` — is addressed
by the **content key** of the configuration that produced it, never by a name
chosen by the caller.  Two requirements shape the scheme:

1. **Canonical.**  Logically equal configurations must hash identically across
   processes and platforms.  Python's ``hash()`` is salted per process and
   ``pickle`` does not canonicalise set iteration order, so keys are computed
   over an explicit *token tree*: a nested tuple of tagged primitives built by
   :func:`token`, with every unordered collection sorted on the way in (the
   same idea as ``FailurePattern.__reduce__``'s sorted-tuple pickling).
2. **Never stale.**  A cache must not survive a change that could alter the
   artifact.  Every key therefore folds in :data:`STORE_VERSION` (bumped on
   any change to the on-disk format or the key scheme itself) and
   :func:`code_fingerprint`, a hash of the ``repro`` package's own source
   files — editing any library module invalidates the whole cache, which costs
   a rebuild but can never silently return results computed by old code.

The token rules cover everything the library keys by construction: primitives,
sequences, mappings, sets (sorted), enums, frozen dataclasses (protocols,
patterns, models, contexts, specs, formulas), callables (by qualified name),
and plain objects via their ``__dict__``.  Objects can override the generic
treatment with a ``__store_token__()`` method returning any tokenisable value.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from pathlib import Path
from typing import Iterable, Optional, Tuple

from ..core.errors import StoreError

#: Version of the key scheme and on-disk payload format.  Bump on any change
#: to either; every existing cache entry becomes unreachable (stale-proofing).
STORE_VERSION = 1

_FINGERPRINT_CACHE: Optional[str] = None


def code_fingerprint() -> str:
    """A hash of every ``repro/**/*.py`` source file, computed once per process.

    Folding this into every key means a cache written by one version of the
    library is invisible to any other version: the expensive failure mode of
    content-addressed caching — a stale hit after a semantics change — cannot
    happen.  The cost is over-invalidation (a docstring edit also rebuilds),
    which is the safe direction.
    """
    global _FINGERPRINT_CACHE
    if _FINGERPRINT_CACHE is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT_CACHE = digest.hexdigest()
    return _FINGERPRINT_CACHE


def _qualified_name(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _sorted_tokens(tokens: Iterable[object]) -> Tuple[object, ...]:
    # Tokens are heterogeneous nested tuples; sorting by repr is total and
    # deterministic where direct comparison would raise on mixed types.
    return tuple(sorted(tokens, key=repr))


def token(obj: object) -> object:
    """The canonical token tree of ``obj`` (nested tuples of tagged primitives).

    Raises :class:`~repro.core.errors.StoreError` for objects with no rule —
    better to refuse a key than to mint one that collides or drifts.
    """
    if obj is None:
        return ("none",)
    if isinstance(obj, bool):  # before int: bool is an int subclass
        return ("bool", obj)
    if isinstance(obj, int):
        return ("int", obj)
    if isinstance(obj, float):
        return ("float", repr(obj))
    if isinstance(obj, str):
        return ("str", obj)
    if isinstance(obj, bytes):
        return ("bytes", obj.hex())
    if isinstance(obj, enum.Enum):
        return ("enum", _qualified_name(type(obj)), obj.name)
    custom = getattr(obj, "__store_token__", None)
    if custom is not None and not isinstance(obj, type):
        return ("custom", _qualified_name(type(obj)), token(custom()))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return ("dataclass", _qualified_name(type(obj)), tuple(
            (field.name, token(getattr(obj, field.name)))
            for field in dataclasses.fields(obj)
        ))
    if isinstance(obj, (tuple, list)):
        return ("seq", tuple(token(item) for item in obj))
    if isinstance(obj, dict):
        return ("map", _sorted_tokens(
            (token(key), token(value)) for key, value in obj.items()))
    if isinstance(obj, (set, frozenset)):
        return ("set", _sorted_tokens(token(item) for item in obj))
    if isinstance(obj, type):
        return ("type", _qualified_name(obj))
    if callable(obj) and hasattr(obj, "__qualname__"):
        # Functions, methods, and factory callables key by qualified name: the
        # code fingerprint already covers their behaviour.
        return ("callable", f"{getattr(obj, '__module__', '?')}.{obj.__qualname__}")
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is not None:
        return ("object", _qualified_name(type(obj)), _sorted_tokens(
            (name, token(value)) for name, value in instance_dict.items()
        ))
    raise StoreError(
        f"cannot build a canonical store token for {obj!r} "
        f"(type {_qualified_name(type(obj))}); give it a __store_token__() method"
    )


def content_key(kind: str, *parts: object) -> str:
    """The content-addressed key of an artifact: sha256 over the token tree.

    ``kind`` namespaces artifact families ("run", "system",
    "implementation-report", ...); ``parts`` are the configuration values the
    artifact is a pure function of.  :data:`STORE_VERSION` and
    :func:`code_fingerprint` are folded into every key.
    """
    payload = (
        "repro-store",
        STORE_VERSION,
        code_fingerprint(),
        kind,
        tuple(token(part) for part in parts),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()
