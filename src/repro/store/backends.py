"""Pluggable storage backends for the artifact store.

A backend is a flat byte-oriented key/value store with enough metadata (size,
last-use time) for the :class:`~repro.store.store.ArtifactStore` to do size
accounting and LRU eviction.  Serialization, compression, and corruption
handling all live *above* the backend, so a new backend only moves bytes:

* :class:`FilesystemBackend` — the default: one file per entry under a root
  directory, sharded by key prefix, with atomic writes and mtime-based
  recency.  Safe for concurrent readers and (whole-entry) concurrent writers.
* :class:`MemoryBackend` — a dict, for tests and ephemeral in-process caching.

To add a backend (say Redis or S3), implement the six methods of
:class:`StoreBackend` — ``get``/``put``/``delete``/``contains``/``peek``/
``entries`` — and hand an instance to ``ArtifactStore``; nothing else in the
library knows where bytes live.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Protocol, runtime_checkable


@dataclass(frozen=True)
class StoreEntry:
    """Backend metadata for one stored artifact."""

    key: str
    size: int
    last_used: float


@runtime_checkable
class StoreBackend(Protocol):
    """The byte-level storage interface the artifact store drives.

    ``get`` is the only read that marks an entry as recently used; ``contains``
    and ``peek`` must *not* touch recency, so membership tests (resumable-sweep
    checkpoint scans) and metadata reads (``cache stats``) cannot perturb the
    LRU eviction order.
    """

    def get(self, key: str) -> Optional[bytes]:  # pragma: no cover - interface
        """The stored payload, or ``None``; marks the entry as recently used."""
        ...

    def put(self, key: str, payload: bytes) -> None:  # pragma: no cover - interface
        """Store (or atomically replace) the payload under ``key``."""
        ...

    def delete(self, key: str) -> bool:  # pragma: no cover - interface
        """Remove the entry; returns whether it existed."""
        ...

    def contains(self, key: str) -> bool:  # pragma: no cover - interface
        """Whether the entry exists — no payload read, no recency update."""
        ...

    def peek(self, key: str, size: int = 256) -> Optional[bytes]:  # pragma: no cover
        """Up to ``size`` leading payload bytes — no recency update."""
        ...

    def entries(self) -> Iterator[StoreEntry]:  # pragma: no cover - interface
        """Every stored entry with its size and last-use time."""
        ...


class FilesystemBackend:
    """One file per artifact under ``root``, sharded as ``<key[:2]>/<key>``.

    Writes go through a temp file + :func:`os.replace`, so readers never see a
    half-written entry and concurrent writers of the same key last-write-win
    with intact payloads either way (content addressing makes both payloads
    equivalent anyway).  Reads bump the file's mtime, which is the recency
    signal LRU eviction sorts by.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / key

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            os.utime(path)  # recency for LRU eviction; best effort
        except OSError:
            pass
        return payload

    def put(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def peek(self, key: str, size: int = 256) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read(size)
        except OSError:
            return None

    def entries(self) -> Iterator[StoreEntry]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    stat = path.stat()
                except OSError:  # deleted underneath us
                    continue
                yield StoreEntry(key=path.name, size=stat.st_size,
                                 last_used=stat.st_mtime)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FilesystemBackend({str(self.root)!r})"


class MemoryBackend:
    """An in-process dict backend (tests, ephemeral caches)."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}
        self._used: Dict[str, float] = {}
        self._clock = 0.0

    def _tick(self) -> float:
        # A monotonic logical clock: wall time has too little resolution to
        # order the rapid back-to-back accesses tests perform.
        self._clock += 1.0
        return self._clock

    def get(self, key: str) -> Optional[bytes]:
        payload = self._data.get(key)
        if payload is not None:
            self._used[key] = self._tick()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        self._data[key] = payload
        self._used[key] = self._tick()

    def delete(self, key: str) -> bool:
        self._used.pop(key, None)
        return self._data.pop(key, None) is not None

    def contains(self, key: str) -> bool:
        return key in self._data

    def peek(self, key: str, size: int = 256) -> Optional[bytes]:
        payload = self._data.get(key)
        return payload[:size] if payload is not None else None

    def entries(self) -> Iterator[StoreEntry]:
        for key, payload in list(self._data.items()):
            # 0.0 (= older than any real tick), NOT wall time: mixing clock
            # domains would sort a fallback entry as the newest of all.
            yield StoreEntry(key=key, size=len(payload),
                             last_used=self._used.get(key, 0.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryBackend({len(self._data)} entries)"
