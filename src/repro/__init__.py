"""repro — a reproduction of *Optimal Eventual Byzantine Agreement Protocols with
Omission Failures* (Alpturer, Halpern, van der Meyden, PODC 2023).

The package implements, from scratch:

* the runs-and-systems semantic model and an epistemic model checker
  (:mod:`repro.logic`, :mod:`repro.systems`);
* the sending-omissions failure model and adversary constructions
  (:mod:`repro.failures`);
* the three information-exchange protocols ``E_min``, ``E_basic``, ``E_fip``
  (:mod:`repro.exchange`);
* the action protocols ``P_min``, ``P_basic``, and the polynomial-time optimal
  full-information protocol ``P_opt`` (:mod:`repro.protocols`);
* the knowledge-based programs ``P0`` and ``P1`` and implementation checking
  (:mod:`repro.kbp`);
* a synchronous simulator, EBA specification checkers, and the analyses used
  by the paper's Section 8 cost comparison (:mod:`repro.simulation`,
  :mod:`repro.spec`, :mod:`repro.analysis`);
* the experiments that regenerate every quantitative claim of the paper
  (:mod:`repro.experiments`).

Quickstart
----------

>>> from repro import MinProtocol, simulate, check_eba
>>> trace = simulate(MinProtocol(t=1), n=4, preferences=[0, 1, 1, 1])
>>> check_eba(trace).ok
True
>>> trace.decision_value(1)
0
"""

from .core import (
    Action,
    AgentId,
    ConfigurationError,
    DECIDE_0,
    DECIDE_1,
    NOOP,
    ProtocolError,
    ReproError,
    Value,
    decide,
)
from .failures import (
    CrashModel,
    FailureFreeModel,
    FailurePattern,
    SendingOmissionModel,
    silent_adversary,
)
from .exchange import (
    BasicExchange,
    CommGraph,
    FullInformationExchange,
    MinimalExchange,
)
from .protocols import (
    ActionProtocol,
    BasicProtocol,
    DelayedMinProtocol,
    EagerOneProtocol,
    MinProtocol,
    NaiveZeroBiasedProtocol,
    OptimalFipProtocol,
)
from .simulation import RunTrace, corresponding_runs, run_batch, run_protocol, simulate
from .spec import SpecReport, check_eba, require_eba
from .analysis import (
    DominanceResult,
    compare_protocols,
    pairwise_comparison,
    run_metrics,
    zero_chains,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "ActionProtocol",
    "AgentId",
    "BasicExchange",
    "BasicProtocol",
    "CommGraph",
    "ConfigurationError",
    "CrashModel",
    "DECIDE_0",
    "DECIDE_1",
    "DelayedMinProtocol",
    "DominanceResult",
    "EagerOneProtocol",
    "FailureFreeModel",
    "FailurePattern",
    "FullInformationExchange",
    "MinProtocol",
    "MinimalExchange",
    "NOOP",
    "NaiveZeroBiasedProtocol",
    "OptimalFipProtocol",
    "ProtocolError",
    "ReproError",
    "RunTrace",
    "SendingOmissionModel",
    "SpecReport",
    "Value",
    "check_eba",
    "compare_protocols",
    "corresponding_runs",
    "decide",
    "pairwise_comparison",
    "require_eba",
    "run_batch",
    "run_metrics",
    "run_protocol",
    "silent_adversary",
    "simulate",
    "zero_chains",
    "__version__",
]
