"""repro — a reproduction of *Optimal Eventual Byzantine Agreement Protocols with
Omission Failures* (Alpturer, Halpern, van der Meyden, PODC 2023).

The package implements, from scratch:

* the runs-and-systems semantic model and an epistemic model checker
  (:mod:`repro.logic`, :mod:`repro.systems`);
* the failure-model registry — sending omissions ``SO(t)`` (the paper's
  model), receive omissions ``RO(t)``, general omissions ``GO(t)``, crash,
  failure-free — and adversary constructions (:mod:`repro.failures`);
* the three information-exchange protocols ``E_min``, ``E_basic``, ``E_fip``
  (:mod:`repro.exchange`);
* the action protocols ``P_min``, ``P_basic``, and the polynomial-time optimal
  full-information protocol ``P_opt`` (:mod:`repro.protocols`);
* the knowledge-based programs ``P0`` and ``P1`` and implementation checking
  (:mod:`repro.kbp`);
* a synchronous simulator and the declarative orchestration layer that drives
  it serially or over a process pool (:mod:`repro.simulation`,
  :mod:`repro.api`), EBA specification checkers, and the analyses used by the
  paper's Section 8 cost comparison (:mod:`repro.spec`, :mod:`repro.analysis`);
* the experiments that regenerate every quantitative claim of the paper
  (:mod:`repro.experiments`).

Quickstart
----------

Describe *what* to run with a spec, then execute it:

>>> from repro import MinProtocol, RunSpec, check_eba
>>> trace = RunSpec(MinProtocol(t=1), n=4, preferences=(0, 1, 1, 1)).run()
>>> check_eba(trace).ok
True
>>> trace.decision_value(1)
0

Sweeps run several protocols over a whole workload — on all cores, if asked:

>>> from repro import OptimalFipProtocol, ParallelExecutor, Sweep
>>> from repro.workloads import random_scenarios
>>> results = (Sweep.of(MinProtocol(t=1), OptimalFipProtocol(t=1))
...            .on(random_scenarios(n=4, t=1, count=10))
...            .run(ParallelExecutor()))
>>> results.compare("P_opt", "P_min").first_dominates
True

Migrating from the legacy entry points
--------------------------------------

The pre-``repro.api`` functions still work but emit ``DeprecationWarning``:

* ``simulate(P, n, prefs, pattern)``      → ``RunSpec(P, n, prefs, pattern).run()``
* ``run_protocol(P, n, prefs, pattern)``  → ``RunSpec(P, n, prefs, pattern).run()``
* ``run_batch(P, n, scenarios)``          → ``Sweep.of(P).on(scenarios).run().batch(P.name)``
* ``corresponding_runs(Ps, n, p, f)``     → ``Sweep.of(*Ps).on([(p, f)]).run().corresponding(0)``
* ``sweep(Ps, n, scenarios)``             → ``Sweep.of(*Ps).on(scenarios).run().batches()``

(The low-level engine primitive is still available, non-deprecated, as
:func:`repro.simulation.engine.simulate`.)
"""

from .analysis import (
    DominanceResult,
    compare_protocols,
    pairwise_comparison,
    run_metrics,
    zero_chains,
)
from .api import (
    Executor,
    ParallelExecutor,
    ResultSet,
    RunSpec,
    SerialExecutor,
    Sweep,
    SweepSpec,
)
from .core import (
    Action,
    AgentId,
    ConfigurationError,
    DECIDE_0,
    DECIDE_1,
    NOOP,
    ProtocolError,
    ReproError,
    Value,
    decide,
)
from .exchange import (
    BasicExchange,
    CommGraph,
    FullInformationExchange,
    MinimalExchange,
)
from .failures import (
    CrashModel,
    FailureFreeModel,
    FailureModel,
    FailurePattern,
    GeneralOmissionModel,
    ReceiveOmissionModel,
    SendingOmissionModel,
    available_models,
    make_model,
    silent_adversary,
    silent_receiver_adversary,
)
from .protocols import (
    ActionProtocol,
    BasicProtocol,
    DelayedMinProtocol,
    EagerOneProtocol,
    MinProtocol,
    NaiveZeroBiasedProtocol,
    OptimalFipProtocol,
)
from .simulation import RoundRecord, RunTrace
from .simulation.runner import (  # deprecated shims over repro.api
    corresponding_runs,
    run_batch,
    run_protocol,
    simulate,
    sweep,
)
from .spec import SpecReport, check_eba, require_eba

__version__ = "1.1.0"

__all__ = [
    "Action",
    "ActionProtocol",
    "AgentId",
    "BasicExchange",
    "BasicProtocol",
    "CommGraph",
    "ConfigurationError",
    "CrashModel",
    "DECIDE_0",
    "DECIDE_1",
    "DelayedMinProtocol",
    "DominanceResult",
    "EagerOneProtocol",
    "Executor",
    "FailureFreeModel",
    "FailureModel",
    "FailurePattern",
    "FullInformationExchange",
    "GeneralOmissionModel",
    "ReceiveOmissionModel",
    "MinProtocol",
    "MinimalExchange",
    "NOOP",
    "NaiveZeroBiasedProtocol",
    "OptimalFipProtocol",
    "ParallelExecutor",
    "ProtocolError",
    "ReproError",
    "ResultSet",
    "RoundRecord",
    "RunSpec",
    "RunTrace",
    "SendingOmissionModel",
    "SerialExecutor",
    "SpecReport",
    "Sweep",
    "SweepSpec",
    "Value",
    "available_models",
    "check_eba",
    "compare_protocols",
    "make_model",
    "corresponding_runs",
    "decide",
    "pairwise_comparison",
    "require_eba",
    "run_batch",
    "run_metrics",
    "run_protocol",
    "silent_adversary",
    "silent_receiver_adversary",
    "simulate",
    "sweep",
    "zero_chains",
    "__version__",
]
