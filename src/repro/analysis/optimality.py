"""Empirical optimality probing: one-step deviations from a protocol.

The paper's optimality results (Theorem 6.3, Corollaries 6.7 and 7.8) say that
no EBA decision protocol for the same information exchange *strictly dominates*
``P_min`` / ``P_basic`` / the FIP implementation of ``P1``.  A simulation cannot
quantify over every protocol, but it can probe the statement where it bites:
take the protocol's decision table on the local states that actually arise,
flip one entry at a time towards an *earlier* decision, and check what happens.
Optimality predicts that every such one-step "speed-up" either

* violates the EBA specification on some run of the context, or
* fails to dominate the original protocol (it is later somewhere else).

:func:`probe_optimality` runs exactly that experiment over an exhaustively
enumerated context (small ``n``), reporting each deviation and its fate.  This
is the strongest optimality evidence short of the paper's proof: it covers
*every* protocol at Hamming distance one from the candidate on its reachable
states, not just the handful of named baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.types import Action, DECIDE_0, DECIDE_1, NOOP
from ..exchange.base import LocalState
from ..protocols.base import ActionProtocol
from ..simulation.engine import simulate
from ..simulation.runner import Scenario
from ..spec.eba import check_eba
from ..systems.contexts import EBAContext
from ..workloads.preferences import enumerate_preferences
from .dominance import compare_traces


class _DeviatingProtocol(ActionProtocol):
    """A protocol equal to a base protocol except at one local state."""

    state_type = LocalState

    def __init__(self, base: ActionProtocol, state: LocalState, action: Action) -> None:
        super().__init__(base.t)
        self.base = base
        self.deviation_state = state
        self.deviation_action = action
        self.name = f"{base.name}+dev"

    def make_exchange(self, n: int):
        return self.base.make_exchange(n)

    def act(self, state: LocalState) -> Action:
        if state == self.deviation_state:
            return self.deviation_action
        return self.base.act(state)


@dataclass(frozen=True)
class DeviationOutcome:
    """The fate of one one-step deviation."""

    state: LocalState
    original_action: Action
    deviating_action: Action
    violates_spec: bool
    strictly_dominates: bool
    violating_runs: int

    @property
    def refutes_optimality(self) -> bool:
        """A deviation refutes optimality only if it is correct *and* strictly dominates."""
        return (not self.violates_spec) and self.strictly_dominates


@dataclass
class OptimalityProbeReport:
    """Aggregate result of probing every one-step deviation of a protocol."""

    protocol_name: str
    context_name: str
    scenarios: int
    deviations_tried: int = 0
    outcomes: List[DeviationOutcome] = field(default_factory=list)

    @property
    def consistent_with_optimality(self) -> bool:
        """Whether no tried deviation was both correct and strictly dominating."""
        return not any(outcome.refutes_optimality for outcome in self.outcomes)

    def counterexamples(self) -> List[DeviationOutcome]:
        """Deviations that would refute optimality (empty if the probe is consistent)."""
        return [outcome for outcome in self.outcomes if outcome.refutes_optimality]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "consistent" if self.consistent_with_optimality else "REFUTED"
        return (f"OptimalityProbeReport({self.protocol_name} in {self.context_name}: "
                f"{self.deviations_tried} deviations over {self.scenarios} scenarios, {status})")


def context_scenarios(context: EBAContext) -> List[Scenario]:
    """Every (preference vector, failure pattern) scenario of an enumerable context."""
    patterns = list(context.patterns())
    return [
        (preferences, pattern)
        for pattern in patterns
        for preferences in enumerate_preferences(context.n)
    ]


def reachable_states(protocol: ActionProtocol, n: int, scenarios: Iterable[Scenario],
                     horizon: int) -> List[LocalState]:
    """The undecided local states that arise when running ``protocol`` over ``scenarios``.

    Only states at times strictly below ``horizon`` are returned (a deviation at
    the final time cannot make any decision earlier).
    """
    seen: Dict[LocalState, None] = {}
    for preferences, pattern in scenarios:
        trace = simulate(protocol, n, preferences, pattern, horizon=horizon)
        for time in range(horizon):
            for agent in range(n):
                state = trace.state_of(agent, time)
                if state.decided is None:
                    seen.setdefault(state, None)
    return list(seen)


def earlier_decision_candidates(action: Action) -> Tuple[Action, ...]:
    """The alternative actions that could only make a protocol decide earlier.

    A ``noop`` can be replaced by either decision; an existing decision can only
    be flipped to the other value (which keeps the timing but changes the value,
    still a legitimate competitor protocol).
    """
    if action == NOOP:
        return (DECIDE_0, DECIDE_1)
    if action == DECIDE_0:
        return (DECIDE_1,)
    return (DECIDE_0,)


def probe_optimality(protocol: ActionProtocol, context: EBAContext,
                     scenarios: Optional[List[Scenario]] = None,
                     max_deviations: Optional[int] = None) -> OptimalityProbeReport:
    """Try every one-step deviation of ``protocol`` over the context's scenarios.

    Parameters
    ----------
    protocol:
        The candidate optimal protocol (e.g. ``MinProtocol(t)``).
    context:
        An enumerable EBA context (``gamma_min`` / ``gamma_basic`` with small ``n``).
    scenarios:
        The workload of corresponding runs; defaults to every scenario of the
        context (exhaustive).
    max_deviations:
        Optional cap on the number of deviations tried (useful for quick runs).
    """
    if scenarios is None:
        scenarios = context_scenarios(context)
    horizon = context.horizon
    n = context.n
    base_traces = [
        simulate(protocol, n, preferences, pattern, horizon=horizon)
        for preferences, pattern in scenarios
    ]
    report = OptimalityProbeReport(
        protocol_name=protocol.name,
        context_name=context.name,
        scenarios=len(scenarios),
    )
    states = reachable_states(protocol, n, scenarios, horizon)
    for state in states:
        original_action = protocol.act(state)
        for candidate_action in earlier_decision_candidates(original_action):
            if max_deviations is not None and report.deviations_tried >= max_deviations:
                return report
            deviant = _DeviatingProtocol(protocol, state, candidate_action)
            violating_runs = 0
            deviant_traces = []
            for (preferences, pattern) in scenarios:
                trace = simulate(deviant, n, preferences, pattern, horizon=horizon)
                deviant_traces.append(trace)
                if not check_eba(trace).ok:
                    violating_runs += 1
            if violating_runs:
                outcome = DeviationOutcome(
                    state=state,
                    original_action=original_action,
                    deviating_action=candidate_action,
                    violates_spec=True,
                    strictly_dominates=False,
                    violating_runs=violating_runs,
                )
            else:
                comparison = compare_traces(deviant_traces, base_traces)
                outcome = DeviationOutcome(
                    state=state,
                    original_action=original_action,
                    deviating_action=candidate_action,
                    violates_spec=False,
                    strictly_dominates=comparison.first_strictly_dominates,
                    violating_runs=0,
                )
            report.deviations_tried += 1
            report.outcomes.append(outcome)
    return report
