"""Quantitative metrics over run traces.

These are the measurements Section 8 talks about:

* **bits sent** per run (Proposition 8.1),
* **messages sent** per run,
* **decision rounds** — when each agent first decides (Proposition 8.2,
  Example 7.1), and aggregates over batches of runs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.types import AgentId, Value
from ..simulation.trace import RunTrace


@dataclass(frozen=True)
class RunMetrics:
    """Per-run metrics extracted from a trace."""

    protocol_name: str
    n: int
    num_faulty: int
    rounds_simulated: int
    total_bits: int
    total_bits_excluding_self: int
    total_messages: int
    decision_rounds: Dict[AgentId, Optional[int]]
    decision_values: Dict[AgentId, Optional[Value]]
    last_nonfaulty_decision_round: Optional[int]

    @property
    def earliest_decision_round(self) -> Optional[int]:
        """The earliest first-decision round across all agents (``None`` if nobody decides)."""
        rounds = [r for r in self.decision_rounds.values() if r is not None]
        return min(rounds) if rounds else None


def run_metrics(trace: RunTrace) -> RunMetrics:
    """Extract the standard metrics from a single trace."""
    return RunMetrics(
        protocol_name=trace.protocol_name,
        n=trace.n,
        num_faulty=trace.pattern.num_faulty,
        rounds_simulated=trace.horizon,
        total_bits=trace.total_bits(include_self=True),
        total_bits_excluding_self=trace.total_bits(include_self=False),
        total_messages=trace.total_messages(include_self=True),
        decision_rounds={agent: trace.decision_round(agent) for agent in range(trace.n)},
        decision_values={agent: trace.decision_value(agent) for agent in range(trace.n)},
        last_nonfaulty_decision_round=trace.last_decision_round(nonfaulty_only=True),
    )


def nonfaulty_decision_rounds(trace: RunTrace) -> List[int]:
    """First-decision rounds of the nonfaulty agents (only those that decide)."""
    rounds = []
    for agent in sorted(trace.nonfaulty):
        round_number = trace.decision_round(agent)
        if round_number is not None:
            rounds.append(round_number)
    return rounds


def last_nonfaulty_decision_round(trace: RunTrace) -> Optional[int]:
    """The round by which the last nonfaulty agent has decided (``None`` if one never does)."""
    return trace.last_decision_round(nonfaulty_only=True)


@dataclass(frozen=True)
class AggregateMetrics:
    """Metrics aggregated over a batch of runs of the same protocol."""

    protocol_name: str
    runs: int
    mean_bits: float
    max_bits: int
    mean_messages: float
    mean_last_decision_round: float
    max_last_decision_round: int
    mean_decision_round: float

    def as_row(self) -> Dict[str, object]:
        """A flat dict suitable for the table renderer."""
        return {
            "protocol": self.protocol_name,
            "runs": self.runs,
            "mean bits": round(self.mean_bits, 1),
            "max bits": self.max_bits,
            "mean msgs": round(self.mean_messages, 1),
            "mean last decision": round(self.mean_last_decision_round, 2),
            "max last decision": self.max_last_decision_round,
            "mean decision": round(self.mean_decision_round, 2),
        }


def aggregate_metrics(traces: Sequence[RunTrace]) -> AggregateMetrics:
    """Aggregate a batch of traces of the *same* protocol."""
    if not traces:
        raise ValueError("cannot aggregate an empty batch of traces")
    names = {trace.protocol_name for trace in traces}
    if len(names) != 1:
        raise ValueError(f"traces from multiple protocols in one aggregate: {sorted(names)}")
    bits = [trace.total_bits() for trace in traces]
    messages = [trace.total_messages() for trace in traces]
    last_rounds: List[int] = []
    all_rounds: List[int] = []
    for trace in traces:
        last = last_nonfaulty_decision_round(trace)
        if last is not None:
            last_rounds.append(last)
        all_rounds.extend(nonfaulty_decision_rounds(trace))
    return AggregateMetrics(
        protocol_name=names.pop(),
        runs=len(traces),
        mean_bits=statistics.fmean(bits),
        max_bits=max(bits),
        mean_messages=statistics.fmean(messages),
        mean_last_decision_round=statistics.fmean(last_rounds) if last_rounds else float("nan"),
        max_last_decision_round=max(last_rounds) if last_rounds else 0,
        mean_decision_round=statistics.fmean(all_rounds) if all_rounds else float("nan"),
    )


def decision_round_histogram(traces: Iterable[RunTrace],
                             nonfaulty_only: bool = True) -> Dict[int, int]:
    """Histogram of first-decision rounds across a batch of traces."""
    histogram: Dict[int, int] = {}
    for trace in traces:
        agents = sorted(trace.nonfaulty) if nonfaulty_only else range(trace.n)
        for agent in agents:
            round_number = trace.decision_round(agent)
            if round_number is None:
                continue
            histogram[round_number] = histogram.get(round_number, 0) + 1
    return dict(sorted(histogram.items()))
