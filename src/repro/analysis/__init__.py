"""Trace analysis: metrics, 0-chains, and dominance comparisons."""

from .chains import (
    ZeroChain,
    hears_from,
    hears_from_frontier,
    longest_zero_chain,
    received_zero_chain,
    zero_chains,
    zero_deciders_by_round,
)
from .dominance import (
    DominanceCounterexample,
    DominanceResult,
    compare_protocols,
    compare_traces,
    pairwise_comparison,
)
from .metrics import (
    AggregateMetrics,
    RunMetrics,
    aggregate_metrics,
    decision_round_histogram,
    last_nonfaulty_decision_round,
    nonfaulty_decision_rounds,
    run_metrics,
)
from .optimality import (
    DeviationOutcome,
    OptimalityProbeReport,
    context_scenarios,
    probe_optimality,
    reachable_states,
)

__all__ = [
    "AggregateMetrics",
    "DeviationOutcome",
    "DominanceCounterexample",
    "DominanceResult",
    "OptimalityProbeReport",
    "RunMetrics",
    "context_scenarios",
    "probe_optimality",
    "reachable_states",
    "ZeroChain",
    "aggregate_metrics",
    "compare_protocols",
    "compare_traces",
    "decision_round_histogram",
    "hears_from",
    "hears_from_frontier",
    "last_nonfaulty_decision_round",
    "longest_zero_chain",
    "nonfaulty_decision_rounds",
    "pairwise_comparison",
    "received_zero_chain",
    "run_metrics",
    "zero_chains",
    "zero_deciders_by_round",
]
