"""0-chains and the hears-from relation, extracted from run traces.

Section 6 defines a *0-chain* of length ``m`` in a run as a sequence of
distinct agents ``i_0, ..., i_m`` such that

(a) ``i_0`` has initial preference 0,
(b) agent ``i_k`` first decides 0 in round ``k + 1``, and
(c) for ``k >= 1``, ``i_k`` knows at time ``k`` that ``i_{k-1}`` has just
    decided 0.

In every EBA context "knowing that ``i_{k-1}`` just decided 0" is witnessed by
receiving the distinguished decide-0 message from ``i_{k-1}`` in round ``k``,
so chains can be read off a trace: the ground-truth chain relation is what the
correctness proofs (Proposition 6.1) and the safety condition reason about.

The *hears-from* relation (Definition A.1) is also provided at trace level: it
is the transitive closure of "received a non-``⊥`` message", with the built-in
persistence that a message received at round ``m + 1`` is remembered at all
later times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.types import AgentId
from ..exchange.messages import DecideNotification, GraphMessage
from ..simulation.trace import RunTrace


@dataclass(frozen=True)
class ZeroChain:
    """A 0-chain: ``agents[k]`` first decides 0 in round ``k + 1``."""

    agents: Tuple[AgentId, ...]

    @property
    def length(self) -> int:
        """The chain's length ``m`` (one less than the number of agents on it)."""
        return len(self.agents) - 1

    @property
    def last_agent(self) -> AgentId:
        return self.agents[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ZeroChain(" + " → ".join(str(a) for a in self.agents) + ")"


def zero_deciders_by_round(trace: RunTrace) -> Dict[int, FrozenSet[AgentId]]:
    """Map each round index ``k`` (0-based) to the agents that first decide 0 in round ``k + 1``."""
    result: Dict[int, FrozenSet[AgentId]] = {}
    for record in trace.rounds:
        deciders = frozenset(
            agent for agent in range(trace.n)
            if record.actions[agent].is_decision and record.actions[agent].value == 0
        )
        if deciders:
            result[record.round_index] = deciders
    return result


def _decision_visible(trace: RunTrace, round_index: int, sender: AgentId,
                      receiver: AgentId) -> bool:
    """Whether ``receiver`` can tell from its round-``round_index + 1`` inbox that ``sender`` decided 0.

    For the limited exchanges the witness is the delivered ``DecideNotification(0)``;
    for the full-information exchange any delivered message suffices (the
    receiver can recompute the sender's decision from its graph).
    """
    message = trace.delivered_message(round_index, sender, receiver)
    if message is None:
        return False
    if isinstance(message, DecideNotification):
        return message.value == 0
    if isinstance(message, GraphMessage):
        return True
    return False


def zero_chains(trace: RunTrace) -> List[ZeroChain]:
    """All maximal-prefix 0-chains present in a trace.

    The result enumerates, for every agent that decides 0 in some round
    ``k + 1``, the chains of length ``k`` ending at that agent (if any).  For
    reporting purposes one chain per endpoint is enough, so we return a single
    witness chain per (endpoint, round) rather than every permutation.
    """
    deciders = zero_deciders_by_round(trace)
    chains: Dict[Tuple[AgentId, int], ZeroChain] = {}

    for round_index in sorted(deciders):
        for agent in sorted(deciders[round_index]):
            if round_index == 0:
                if trace.preferences[agent] == 0:
                    chains[(agent, 0)] = ZeroChain((agent,))
                continue
            # Find a predecessor that decided 0 in the previous round and whose
            # decide message reached this agent.
            for predecessor in sorted(deciders.get(round_index - 1, frozenset())):
                previous = chains.get((predecessor, round_index - 1))
                if previous is None or agent in previous.agents:
                    continue
                if _decision_visible(trace, round_index - 1, predecessor, agent):
                    chains[(agent, round_index)] = ZeroChain(previous.agents + (agent,))
                    break
            else:
                # Also allow a round-0 self start (init 0 discovered late is impossible,
                # but an agent with init 0 that decides late would break the chain
                # structure — record it as a singleton for diagnosis).
                if trace.preferences[agent] == 0:
                    chains[(agent, round_index)] = ZeroChain((agent,))
    return list(chains.values())


def received_zero_chain(trace: RunTrace, agent: AgentId, time: int) -> Optional[ZeroChain]:
    """The 0-chain of length ``time`` ending at ``agent``, if one exists in the trace."""
    for chain in zero_chains(trace):
        if chain.last_agent == agent and chain.length == time:
            return chain
    return None


def longest_zero_chain(trace: RunTrace) -> Optional[ZeroChain]:
    """The longest 0-chain in the trace (``None`` if no agent ever decides 0)."""
    chains = zero_chains(trace)
    if not chains:
        return None
    return max(chains, key=lambda chain: chain.length)


def hears_from_frontier(trace: RunTrace, agent: AgentId, time: int) -> List[int]:
    """Ground-truth ``last_{agent,j}(r, time)`` for every ``j`` (``-1`` = never heard from).

    Uses the actual deliveries recorded in the trace, i.e. the run's hears-from
    relation rather than any single agent's knowledge of it.
    """
    frontier = [-1] * trace.n
    frontier[agent] = time
    changed = True
    while changed:
        changed = False
        for record in trace.rounds:
            round_index = record.round_index
            if round_index + 1 > time:
                continue
            for receiver in range(trace.n):
                if frontier[receiver] < round_index + 1:
                    continue
                for sender in range(trace.n):
                    if record.delivered[receiver][sender] is None:
                        continue
                    if frontier[sender] < round_index:
                        frontier[sender] = round_index
                        changed = True
    return frontier


def hears_from(trace: RunTrace, source: Tuple[AgentId, int],
               target: Tuple[AgentId, int]) -> bool:
    """Whether the point ``source`` hears-into the point ``target`` in the trace."""
    source_agent, source_time = source
    target_agent, target_time = target
    frontier = hears_from_frontier(trace, target_agent, target_time)
    return frontier[source_agent] >= source_time
