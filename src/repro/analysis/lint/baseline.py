"""The committed baseline: grandfathered findings with justifications.

``lint-baseline.json`` holds findings that are acknowledged but not (yet)
fixed.  Each entry matches on ``(path, rule, message)`` — line numbers are
deliberately excluded so entries survive unrelated edits — and carries a
mandatory ``justification`` line explaining *why* the finding stands.

The runner consumes entries as multiset matches: two identical findings need
two identical entries.  Entries that match nothing are *stale*; ``--strict``
fails on them so the baseline can only shrink silently, never rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding

__all__ = ["BaselineEntry", "Baseline", "load_baseline", "write_baseline"]

BASELINE_VERSION = 1
DEFAULT_JUSTIFICATION = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    rule: str
    message: str
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.message)

    def as_dict(self) -> Dict[str, str]:
        return {"path": self.path, "rule": self.rule, "message": self.message,
                "justification": self.justification}


class Baseline:
    """A loaded baseline file, with multiset matching against findings."""

    def __init__(self, entries: List[BaselineEntry]) -> None:
        self.entries = list(entries)

    def split(self, findings: List[Finding]
              ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition ``findings`` into (new, baselined) and return the stale
        entries that matched nothing."""
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + 1
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            remaining = budget.get(finding.key, 0)
            if remaining > 0:
                budget[finding.key] = remaining - 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale: List[BaselineEntry] = []
        spent: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            used_total = sum(1 for f in baselined if f.key == entry.key)
            seen = spent.get(entry.key, 0)
            if seen >= used_total:
                stale.append(entry)
            spent[entry.key] = seen + 1
        return new, baselined, stale


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline([])
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: unsupported baseline format")
    entries: List[BaselineEntry] = []
    for raw in data.get("entries", []):
        entries.append(BaselineEntry(
            path=str(raw["path"]), rule=str(raw["rule"]),
            message=str(raw["message"]),
            justification=str(raw.get("justification",
                                      DEFAULT_JUSTIFICATION))))
    return Baseline(entries)


def write_baseline(path: Path, findings: List[Finding],
                   previous: Baseline) -> Baseline:
    """Write a baseline covering ``findings``, keeping the justifications of
    entries that already existed; new entries get a TODO placeholder."""
    kept: Dict[Tuple[str, str, str], List[str]] = {}
    for entry in previous.entries:
        kept.setdefault(entry.key, []).append(entry.justification)
    entries: List[BaselineEntry] = []
    for finding in sorted(findings, key=lambda f: f.key):
        justifications = kept.get(finding.key)
        justification = (justifications.pop(0) if justifications
                         else DEFAULT_JUSTIFICATION)
        entries.append(BaselineEntry(path=finding.path, rule=finding.rule,
                                     message=finding.message,
                                     justification=justification))
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.as_dict() for entry in entries],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return Baseline(entries)
