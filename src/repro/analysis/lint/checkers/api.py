"""API: surface-hygiene rules.

**API001** — calls to deprecated shims.  Deprecated symbols are listed per
defining module (:data:`~..registry.DEPRECATED_SYMBOLS`) and call sites are
resolved through the file's imports, so ``simulate`` imported from
``repro.simulation.engine`` (the real engine) is never confused with the
legacy ``repro.simulation.runner.simulate`` shim.  Legacy keyword arguments
(``engine="per-run"``) are flagged the same way.

**API002** — an executor-accepting function that calls another
executor-accepting function without forwarding its ``executor``.  The callee
set is discovered project-wide in a pre-pass (every scanned ``def`` with an
``executor`` parameter), so a dropped argument silently serialising a
parallel pipeline is caught wherever it happens.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from ..findings import Finding
from ..registry import Checker, DEPRECATED_KEYWORDS, DEPRECATED_SYMBOLS, FileContext, register

__all__ = ["ApiSurfaceChecker", "index_executor_functions"]


def has_executor_param(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    args = func.args
    every = (args.posonlyargs + args.args + args.kwonlyargs)
    return any(arg.arg == "executor" for arg in every)


def index_executor_functions(tree: ast.Module) -> Set[str]:
    """Names of functions/methods in ``tree`` accepting an ``executor``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and has_executor_param(node):
            names.add(node.name)
    return names


def _absolute_module(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
    """Resolve a (possibly relative) ``from ... import`` to a dotted module
    path using the file's location under the ``repro`` package."""
    if node.level == 0:
        return node.module
    parts = ctx.module_path.split("/")
    if not parts or parts[0] != "repro":
        return None
    package = parts[:-1]  # drop the file name
    if parts[-1] == "__init__.py":
        package = parts[:-1]
    hops = node.level - 1
    if hops > len(package):
        return None
    base = package[:len(package) - hops] if hops else package
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _deprecated_bindings(ctx: FileContext) -> Dict[str, str]:
    """Local name -> "module.symbol" for imports of deprecated symbols."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            module = _absolute_module(ctx, node)
            if module is None:
                continue
            deprecated = DEPRECATED_SYMBOLS.get(module, ())
            for alias in node.names:
                if alias.name in deprecated:
                    bindings[alias.asname or alias.name] = \
                        f"{module}.{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in DEPRECATED_SYMBOLS:
                    bindings[(alias.asname or alias.name).split(".")[0]] = \
                        alias.name
    return bindings


def _call_name(node: ast.Call) -> Optional[Tuple[str, Optional[str]]]:
    """``(base, attr)`` for ``base.attr(...)`` or ``(name, None)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return (func.id, None)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return None


def _is_executor_value(expr: ast.expr) -> bool:
    """Whether ``expr`` syntactically carries an executor (``executor``,
    ``self.executor``, ``args.executor``, ...)."""
    if isinstance(expr, ast.Name):
        return expr.id == "executor"
    if isinstance(expr, ast.Attribute):
        return expr.attr == "executor"
    return False


def _passes_executor(node: ast.Call) -> bool:
    if any(kw.arg == "executor" or kw.arg is None  # **kwargs may carry it
           for kw in node.keywords):
        return True
    # Positional forwarding counts too: resolve_executor(executor), ...
    return any(_is_executor_value(arg) for arg in node.args) or \
        any(isinstance(arg, ast.Starred) for arg in node.args)


def _import_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound by imports — the only attribute-call bases (besides
    ``self``/``cls``) API002 trusts to resolve to project functions."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _local_defs_without_executor(tree: ast.Module) -> Set[str]:
    """Function names defined in this file where *no* definition takes an
    executor — a plain-name call to one of these resolves locally, so a
    same-named executor-accepting function elsewhere is irrelevant."""
    with_exec: Set[str] = set()
    without: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            (with_exec if has_executor_param(node) else without).add(node.name)
    return without - with_exec


@register
class ApiSurfaceChecker(Checker):
    family = "API"
    codes = {
        "API001": ("call to a deprecated shim (legacy entry points, "
                   "engine=\"per-run\") outside the shim modules"),
        "API002": ("executor-accepting function drops the executor when "
                   "calling an executor-accepting callee"),
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_deprecated(ctx)
        yield from self._check_executor_threading(ctx)

    def _check_deprecated(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.allows(ctx.config.deprecated_allowed, ctx.module_path):
            return
        bindings = _deprecated_bindings(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            named = _call_name(node)
            if named is not None:
                base, attr = named
                if attr is None and base in bindings:
                    yield ctx.finding(
                        node, "API001",
                        f"call to deprecated shim {bindings[base]}; use the "
                        "RunSpec/Sweep builders")
                elif attr is not None:
                    target = bindings.get(base)
                    module = target if target in DEPRECATED_SYMBOLS else None
                    if module is None and base in DEPRECATED_SYMBOLS:
                        module = base
                    if module and attr in DEPRECATED_SYMBOLS[module]:
                        yield ctx.finding(
                            node, "API001",
                            f"call to deprecated shim {module}.{attr}; use "
                            "the RunSpec/Sweep builders")
            for keyword in node.keywords:
                legacy = DEPRECATED_KEYWORDS.get(keyword.arg or "")
                if not legacy:
                    continue
                value = keyword.value
                if isinstance(value, ast.Constant) and value.value in legacy:
                    yield ctx.finding(
                        node, "API001",
                        f"legacy keyword {keyword.arg}={value.value!r}; the "
                        "per-run engine era is over, drop the argument")

    def _check_executor_threading(self, ctx: FileContext) -> Iterator[Finding]:
        callees = set(ctx.project.executor_functions)
        callees -= _local_defs_without_executor(ctx.tree)
        if not callees:
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not has_executor_param(node):
                continue
            yield from self._scan_function(ctx, node, callees, aliases)

    def _scan_function(self, ctx: FileContext,
                       func: "ast.FunctionDef | ast.AsyncFunctionDef",
                       callees: Set[str], aliases: Set[str]
                       ) -> Iterator[Finding]:
        # Manual traversal so nested defs/lambdas are skipped — they are
        # scanned on their own when they accept an executor, and a closure
        # that deliberately binds no executor is not this function's bug.
        stack: "list[ast.AST]" = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            named = _call_name(node)
            if named is None:
                continue
            base, attr = named
            callee = attr if attr is not None else base
            if attr is not None and base not in aliases \
                    and base not in {"self", "cls"}:
                # x.measure(...) on an arbitrary object is a method call that
                # only shares a name with the indexed function — skip it.
                continue
            if callee in callees and not _passes_executor(node):
                yield ctx.finding(
                    node, "API002",
                    f"{func.name}(..., executor=...) calls {callee}() "
                    "without forwarding executor=; the parallel plan is "
                    "silently dropped")
