"""OBS: observability-hygiene rules.

**OBS001** — bare output (``print``, ``warnings.warn``, ``sys.stderr.write``)
outside ``repro/obs/`` and the CLI.  Library code reports through
``repro.obs.logs`` (loggers, ``warn_once``) so embedders stay in control of
what reaches the terminal.  ``warnings.warn`` with an explicit
``DeprecationWarning``/``PendingDeprecationWarning`` category is allowed —
that is the sanctioned channel for API deprecations.

**OBS002** — a metric family registered at a call site
(``counter("...")``/``gauge``/``histogram``) must follow the registry naming
rules: ``repro_`` prefix, lowercase ``[a-z0-9_]``, counters end ``_total``,
histograms carry a base-unit suffix (``_seconds``/``_bytes``), gauges do
*not* end ``_total``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, Optional

from ..findings import Finding
from ..registry import Checker, FileContext, register

__all__ = ["ObsHygieneChecker"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_DEPRECATION_CATEGORIES = {"DeprecationWarning", "PendingDeprecationWarning"}
_REGISTRATION_FUNCS = {"counter", "gauge", "histogram"}
_HISTOGRAM_UNITS = ("_seconds", "_bytes")


def _warn_category(node: ast.Call) -> Optional[ast.expr]:
    """The category argument of a ``warnings.warn`` call, if present."""
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "category":
            return keyword.value
    return None


def _is_deprecation(node: ast.Call) -> bool:
    category = _warn_category(node)
    if category is None:
        return False
    if isinstance(category, ast.Name):
        return category.id in _DEPRECATION_CATEGORIES
    if isinstance(category, ast.Attribute):
        return category.attr in _DEPRECATION_CATEGORIES
    return False


def _registration_kind(node: ast.Call) -> Optional[str]:
    """``counter``/``gauge``/``histogram`` when ``node`` registers a metric
    family with a literal name."""
    func = node.func
    name: Optional[str] = None
    if isinstance(func, ast.Name) and func.id in _REGISTRATION_FUNCS:
        name = func.id
    elif isinstance(func, ast.Attribute) and func.attr in _REGISTRATION_FUNCS:
        name = func.attr
    if name is None or not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return name
    return None


@register
class ObsHygieneChecker(Checker):
    family = "OBS"
    codes = {
        "OBS001": ("bare print/warnings.warn/sys.stderr.write outside "
                   "repro/obs and the CLI; route through repro.obs.logs"),
        "OBS002": ("metric family name violates the repro_* registry "
                   "naming rules"),
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_output(ctx)
        yield from self._check_metric_names(ctx)

    def _check_output(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.allows(ctx.config.obs_output_allowed, ctx.module_path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield ctx.finding(
                    node, "OBS001",
                    "bare print() in library code; use "
                    "repro.obs.logs.get_logger(...)")
            elif isinstance(func, ast.Attribute) and func.attr == "warn" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "warnings":
                if not _is_deprecation(node):
                    yield ctx.finding(
                        node, "OBS001",
                        "warnings.warn() outside a deprecation; use "
                        "repro.obs.logs.warn_once(...)")
            elif isinstance(func, ast.Attribute) and func.attr == "write":
                target = func.value
                if (isinstance(target, ast.Attribute)
                        and target.attr in {"stderr", "stdout"}
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "sys"):
                    yield ctx.finding(
                        node, "OBS001",
                        f"direct sys.{target.attr}.write(); use "
                        "repro.obs.logs.get_logger(...)")

    def _check_metric_names(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _registration_kind(node)
            if kind is None:
                continue
            assert isinstance(node.args[0], ast.Constant)
            name = node.args[0].value
            prefix = ctx.config.metric_prefix
            if not name.startswith(prefix) or not _NAME_RE.match(name):
                yield ctx.finding(
                    node, "OBS002",
                    f"metric name {name!r} must match "
                    f"^{prefix}[a-z0-9_]*$")
                continue
            if kind == "counter" and not name.endswith("_total"):
                yield ctx.finding(
                    node, "OBS002",
                    f"counter {name!r} must end with _total")
            elif kind == "gauge" and name.endswith("_total"):
                yield ctx.finding(
                    node, "OBS002",
                    f"gauge {name!r} must not end with _total (reserved "
                    "for counters)")
            elif kind == "histogram" and not name.endswith(_HISTOGRAM_UNITS):
                yield ctx.finding(
                    node, "OBS002",
                    f"histogram {name!r} must carry a base-unit suffix "
                    f"({'/'.join(_HISTOGRAM_UNITS)})")
