"""Built-in checkers.  Importing this package registers all of them."""

from .api import ApiSurfaceChecker
from .determinism import DeterminismChecker
from .locks import LockDisciplineChecker
from .obs import ObsHygieneChecker

__all__ = [
    "ApiSurfaceChecker",
    "DeterminismChecker",
    "LockDisciplineChecker",
    "ObsHygieneChecker",
]
