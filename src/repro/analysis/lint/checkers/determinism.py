"""DET: determinism rules.

The repo's byte-identical-trace guarantee dies the moment unordered
iteration reaches a serialization boundary.  These rules catch the
syntactically visible cases:

* **DET001** — a ``set``/``frozenset`` literal, comprehension, or
  constructor call flowing into a serialization sink (``json.dump[s]``,
  ``pickle.dump[s]``, ``marshal.dumps``, ``str.join``) without an enclosing
  ``sorted(...)``.
* **DET002** — module-level ``random`` (the unseeded process-global RNG)
  used outside ``workloads``/``testing``.  Seeded ``random.Random(seed)``
  instances are fine anywhere.
* **DET003** — iterating a filesystem enumeration (``glob``/``rglob``/
  ``iterdir``/``scandir``/``listdir``) whose order is OS-dependent, without
  ``sorted(...)`` around it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set

from ..findings import Finding
from ..registry import Checker, FileContext, register

__all__ = ["DeterminismChecker"]

#: ``module -> functions`` whose call is a serialization sink.
_SINK_MODULES = {
    "json": {"dump", "dumps"},
    "pickle": {"dump", "dumps"},
    "marshal": {"dump", "dumps"},
}

#: Filesystem enumerators with OS-dependent ordering (method or function).
_FS_ENUMERATORS = {"glob", "rglob", "iterdir", "scandir", "listdir"}

#: ``random`` module functions that consume the unseeded global RNG.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "getrandbits", "gauss", "betavariate",
    "expovariate", "normalvariate", "triangular", "vonmisesvariate",
}


def _is_sorted_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "sorted")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _sink_name(node: ast.Call) -> "str | None":
    """If ``node`` is a serialization sink call, its display name."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if (isinstance(func.value, ast.Name)
                and func.value.id in _SINK_MODULES
                and func.attr in _SINK_MODULES[func.value.id]):
            return f"{func.value.id}.{func.attr}"
        if func.attr == "join" and isinstance(func.value, ast.Constant) \
                and isinstance(func.value.value, str):
            return "str.join"
    return None


def _walk_skipping_sorted(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree but do not descend into ``sorted(...)`` calls — their
    contents are order-canonicalised by construction."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if _is_sorted_call(child):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _unsorted_sets_within(call: ast.Call) -> Iterator[ast.AST]:
    """Set-typed expressions reachable from a sink call's arguments without
    passing through ``sorted``."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if _is_sorted_call(arg):
            continue
        if _is_set_expr(arg):
            yield arg
        for child in _walk_skipping_sorted(arg):
            if _is_set_expr(child):
                yield child


def _is_fs_enumeration(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _FS_ENUMERATORS
    if isinstance(func, ast.Name):
        return func.id in _FS_ENUMERATORS
    return False


def _imports_global_random(tree: ast.Module) -> Set[str]:
    """Names in this module that alias the unseeded global RNG's functions:
    ``{"random"}`` for ``import random``, plus any ``from random import x``
    for x in the global-RNG function set."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    names.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                for alias in node.names:
                    if alias.name in _GLOBAL_RANDOM:
                        names.add(alias.asname or alias.name)
    return names


@register
class DeterminismChecker(Checker):
    family = "DET"
    codes = {
        "DET001": ("set/frozenset value reaches a serialization sink "
                   "without an enclosing sorted()"),
        "DET002": ("unseeded module-level random outside workloads/testing "
                   "breaks run reproducibility"),
        "DET003": ("filesystem enumeration iterated without sorted() has "
                   "OS-dependent order"),
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_sinks(ctx)
        yield from self._check_random(ctx)
        yield from self._check_fs_order(ctx)

    def _check_sinks(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_name(node)
            if sink is None:
                continue
            for offender in _unsorted_sets_within(node):
                yield ctx.finding(
                    offender, "DET001",
                    f"unordered set value flows into {sink}(); wrap the "
                    "iteration in sorted(...)")

    def _check_random(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.allows(ctx.config.random_allowed, ctx.module_path):
            return
        aliases = _imports_global_random(ctx.tree)
        if not aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if (isinstance(func.value, ast.Name)
                        and func.value.id in aliases
                        and func.attr in _GLOBAL_RANDOM):
                    yield ctx.finding(
                        node, "DET002",
                        f"random.{func.attr}() uses the unseeded global "
                        "RNG; use random.Random(seed) and thread it "
                        "through")
            elif isinstance(func, ast.Name) and func.id in aliases \
                    and func.id != "random":
                yield ctx.finding(
                    node, "DET002",
                    f"{func.id}() from the random module uses the unseeded "
                    "global RNG; use random.Random(seed)")

    def _check_fs_order(self, ctx: FileContext) -> Iterator[Finding]:
        seen: Set[int] = set()
        # A comprehension handed straight to sorted(...) is order-safe no
        # matter what it iterates — collect those first and exempt them.
        sanctified: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if _is_sorted_call(node):
                for arg in node.args:
                    sanctified.add(id(arg))

        def flag(iterable: ast.AST) -> Iterator[Finding]:
            if id(iterable) in seen or not _is_fs_enumeration(iterable):
                return
            seen.add(id(iterable))
            yield ctx.finding(
                iterable, "DET003",
                "directory enumeration order is OS-dependent; wrap in "
                "sorted(...)")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                yield from flag(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if id(node) in sanctified:
                    continue
                for generator in node.generators:
                    yield from flag(generator.iter)
