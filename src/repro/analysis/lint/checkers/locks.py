"""LOCK: lock-discipline rules.

**LOCK001** — a guarded attribute touched outside a ``with self._lock``
block.  A class opts in either through the built-in contracts
(:data:`~..registry.BUILTIN_GUARDS` covers ``JobQueue``, ``ArtifactStore``,
``EventBus``, ``MetricsRegistry``) or by declaring its own::

    class Cache:
        _GUARDED_BY = {"_entries": "_lock", "_bytes": "_lock"}

Conventions honoured by the checker:

* ``__init__``/``__new__`` are exempt (no concurrent access before the
  object escapes its constructor).
* Methods named ``*_locked`` are exempt — the suffix is the repo's contract
  that the caller already holds the lock.
* A nested function or lambda defined inside a ``with self._lock`` block is
  *not* considered locked: it may run after the block exits (callbacks,
  gauge functions), so guarded access inside it is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Set, Tuple

from ..findings import Finding
from ..registry import (BUILTIN_GUARDS, Checker, FileContext, GuardSpec,
                        register)

__all__ = ["LockDisciplineChecker"]


def _declared_guards(cls: ast.ClassDef) -> Optional[GuardSpec]:
    """A ``_GUARDED_BY = {"attr": "_lock"}`` dict literal in the class body,
    parsed into a :class:`GuardSpec` (``None`` when absent/malformed)."""
    for stmt in cls.body:
        targets: Tuple[ast.expr, ...] = ()
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = tuple(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = (stmt.target,), stmt.value
        if not any(isinstance(t, ast.Name) and t.id == "_GUARDED_BY"
                   for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            return None
        attrs: Set[str] = set()
        locks: Set[str] = set()
        for key, lock in zip(value.keys, value.values):
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(lock, ast.Constant)
                    and isinstance(lock.value, str)):
                attrs.add(key.value)
                locks.add(lock.value)
        if attrs:
            return GuardSpec(locks=tuple(sorted(locks)),
                             attrs=tuple(sorted(attrs)))
        return None
    return None


def _guard_for(cls: ast.ClassDef) -> Optional[GuardSpec]:
    declared = _declared_guards(cls)
    if declared is not None:
        return declared
    return BUILTIN_GUARDS.get(cls.name)


def _self_name(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> Optional[str]:
    args = func.args.posonlyargs + func.args.args
    if not args:
        return None
    return args[0].arg


def _acquires_lock(item: ast.withitem, self_name: str,
                   locks: Tuple[str, ...]) -> bool:
    expr = item.context_expr
    return (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self_name
            and expr.attr in locks)


class _MethodScanner(ast.NodeVisitor):
    """Walk one method body tracking whether the class lock is held."""

    def __init__(self, ctx: FileContext, cls_name: str, self_name: str,
                 guard: GuardSpec) -> None:
        self.ctx = ctx
        self.cls_name = cls_name
        self.self_name = self_name
        self.guard = guard
        self.lock_depth = 0
        self.findings: list[Finding] = []
        self._guarded: Set[str] = set(guard.attrs)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        acquired = any(_acquires_lock(item, self.self_name, self.guard.locks)
                       for item in node.items)
        for item in node.items:
            self.visit(item)
        if acquired:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            self.lock_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: ast.AST) -> None:
        # A closure defined under the lock may outlive it — scan its body
        # as if the lock were not held.
        saved = self.lock_depth
        self.lock_depth = 0
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.lock_depth = saved

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (self.lock_depth == 0
                and isinstance(node.value, ast.Name)
                and node.value.id == self.self_name
                and node.attr in self._guarded):
            self.findings.append(self.ctx.finding(
                node, "LOCK001",
                f"{self.cls_name}.{node.attr} is guarded by "
                f"{'/'.join(self.guard.locks)} but accessed outside it"))
        self.generic_visit(node)


@register
class LockDisciplineChecker(Checker):
    family = "LOCK"
    codes = {
        "LOCK001": ("guarded attribute accessed outside a `with self._lock` "
                    "block (declare contracts via _GUARDED_BY)"),
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guard = _guard_for(node)
            if guard is None:
                continue
            yield from self._check_class(ctx, node, guard)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     guard: GuardSpec) -> Iterator[Finding]:
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in {"__init__", "__new__"}:
                continue
            if stmt.name.endswith("_locked"):
                continue
            self_name = _self_name(stmt)
            if self_name is None:
                continue
            scanner = _MethodScanner(ctx, cls.name, self_name, guard)
            for child in stmt.body:
                scanner.visit(child)
            yield from scanner.findings
