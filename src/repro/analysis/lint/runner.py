"""Collect files, run every registered checker, apply suppressions and the
baseline, and render the result."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Importing the subpackage registers every built-in checker with CHECKERS.
from . import checkers as _checkers  # noqa: F401
from .baseline import Baseline, BaselineEntry
from .checkers.api import index_executor_functions
from .findings import Finding, finding_sort_key
from .registry import (CHECKERS, FileContext, LintConfig, ProjectIndex,
                       module_path_for)
from .suppressions import parse_suppressions

__all__ = ["LintResult", "collect_files", "lint_paths", "render_human",
           "render_json"]


@dataclass
class LintResult:
    """Everything one lint invocation learned."""

    #: Findings not covered by a suppression comment, sorted.
    findings: List[Finding] = field(default_factory=list)
    #: The subset of ``findings`` a baseline entry absorbed.
    baselined: List[Finding] = field(default_factory=list)
    #: The subset of ``findings`` nothing absorbs — these fail the build.
    new: List[Finding] = field(default_factory=list)
    #: Findings silenced by suppression comments (informational).
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing — stale under ``--strict``.
    stale: List[BaselineEntry] = field(default_factory=list)
    #: How many files were scanned.
    files: int = 0

    def exit_code(self, strict: bool = False) -> int:
        if self.new:
            return 1
        if strict and self.stale:
            return 1
        return 0


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand directories to their ``*.py`` files, sorted for determinism."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py")
                                if "__pycache__" not in p.parts))
        else:
            files.append(path)
    unique: Dict[Path, None] = {}
    for path in files:
        unique.setdefault(path, None)
    return list(unique)


def _relativize(path: Path, root: Optional[Path]) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse(path: Path, display: str
           ) -> "Tuple[Optional[ast.Module], Optional[Finding], str]":
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return None, Finding(display, 1, 1, "PARSE001",
                             f"cannot read file: {error}"), ""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, Finding(display, error.lineno or 1,
                             (error.offset or 0) + 1, "PARSE001",
                             f"syntax error: {error.msg}"), source
    return tree, None, source


def lint_paths(paths: Sequence[Path], config: Optional[LintConfig] = None,
               baseline: Optional[Baseline] = None,
               root: Optional[Path] = None) -> LintResult:
    """Lint ``paths`` (files or directories) and return the split result."""
    config = config if config is not None else LintConfig()
    baseline = baseline if baseline is not None else Baseline([])
    result = LintResult()
    project = ProjectIndex()

    contexts: List[FileContext] = []
    raw: List[Finding] = []
    for path in collect_files(paths):
        display = _relativize(path, root)
        tree, parse_finding, source = _parse(path, display)
        result.files += 1
        if parse_finding is not None:
            raw.append(parse_finding)
            continue
        assert tree is not None
        project.executor_functions |= index_executor_functions(tree)
        contexts.append(FileContext(
            path=display, module_path=module_path_for(path), source=source,
            tree=tree, config=config, project=project))

    checkers = [cls() for cls in CHECKERS]
    for ctx in contexts:
        file_findings: List[Finding] = []
        for checker in checkers:
            file_findings.extend(checker.check(ctx))
        if not file_findings:
            continue
        suppressions = parse_suppressions(ctx.source)
        for finding in file_findings:
            if suppressions.is_suppressed(finding):
                result.suppressed.append(finding)
            else:
                raw.append(finding)

    result.findings = sorted(raw, key=finding_sort_key)
    result.suppressed.sort(key=finding_sort_key)
    result.new, result.baselined, result.stale = baseline.split(
        result.findings)
    return result


def render_human(result: LintResult, strict: bool = False) -> str:
    """The terminal report: one line per new finding plus a summary."""
    lines: List[str] = [finding.render() for finding in result.new]
    if strict:
        for entry in result.stale:
            lines.append(
                f"{entry.path}: stale baseline entry for {entry.rule} "
                f"({entry.message!r}) — remove it from the baseline")
    summary = (f"{result.files} files scanned: "
               f"{len(result.new)} finding(s), "
               f"{len(result.baselined)} baselined, "
               f"{len(result.suppressed)} suppressed")
    if result.stale:
        summary += f", {len(result.stale)} stale baseline entr(y/ies)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict[str, object]:
    """The machine report (``--json``)."""
    return {
        "version": 1,
        "files": result.files,
        "findings": [f.as_dict() for f in result.new],
        "baselined": [f.as_dict() for f in result.baselined],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "stale_baseline": [e.as_dict() for e in result.stale],
        "counts": {
            "new": len(result.new),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline": len(result.stale),
        },
    }


def iter_rule_lines() -> Iterable[str]:
    """``--list-rules`` output: code, then description."""
    from .registry import all_rule_codes
    for code, description in all_rule_codes().items():
        yield f"{code}  {description}"
