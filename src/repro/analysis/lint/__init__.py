"""``repro.analysis.lint`` — an AST-based invariant linter.

The conventions that keep this reproduction byte-identical and thread-safe
(sorted iteration before serialization, guarded shared state, output only
through ``repro.obs``) are enforced mechanically here, the way the
differential oracles enforce the semantic ones.  Four rule families ship
built-in — **DET** (determinism), **LOCK** (lock discipline), **OBS**
(observability hygiene), **API** (surface hygiene) — behind a registry that
third parties extend with :func:`register`.

Workflow surfaces: ``repro-eba lint`` / ``tools/repro_lint.py`` (CI), a
per-line suppression comment (``# repro-lint: disable=RULE``), and a
committed ``lint-baseline.json`` of grandfathered findings with
justifications.  See ``docs/static-analysis.md``.
"""

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .cli import add_lint_arguments, main, run_lint_command
from .findings import Finding
from .registry import (BUILTIN_GUARDS, CHECKERS, Checker, FileContext,
                       GuardSpec, LintConfig, ProjectIndex, all_rule_codes,
                       register)
from .runner import (LintResult, collect_files, lint_paths, render_human,
                     render_json)
from .suppressions import SuppressionMap, parse_suppressions

__all__ = [
    "BUILTIN_GUARDS",
    "Baseline",
    "BaselineEntry",
    "CHECKERS",
    "Checker",
    "FileContext",
    "Finding",
    "GuardSpec",
    "LintConfig",
    "LintResult",
    "ProjectIndex",
    "SuppressionMap",
    "add_lint_arguments",
    "all_rule_codes",
    "collect_files",
    "lint_paths",
    "load_baseline",
    "main",
    "parse_suppressions",
    "register",
    "render_human",
    "render_json",
    "run_lint_command",
    "write_baseline",
]
