"""The finding record shared by every checker, the runner, and the CLI."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict

__all__ = ["Finding", "finding_sort_key"]


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location.

    ``path`` is the path the file was scanned under (relative where
    possible), ``rule`` is a registry code like ``DET001``, and ``message``
    is the human sentence.  Baseline matching uses ``(path, rule, message)``
    — deliberately *not* the line number, so baselined findings survive
    unrelated edits above them.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def family(self) -> str:
        """The rule family — the code with trailing digits stripped."""
        return self.rule.rstrip("0123456789")

    @property
    def key(self) -> "tuple[str, str, str]":
        """The baseline identity of this finding."""
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def finding_sort_key(finding: Finding) -> "tuple[str, int, int, str, str]":
    return (finding.path, finding.line, finding.col, finding.rule,
            finding.message)


def at_node(path: str, node: ast.AST, rule: str, message: str) -> Finding:
    """A finding anchored at an AST node's location."""
    return Finding(path=path, line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0) + 1, rule=rule,
                   message=message)
