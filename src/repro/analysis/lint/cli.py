"""Argument handling shared by ``repro-eba lint`` and ``tools/repro_lint.py``.

Exit codes: 0 clean (or everything baselined/suppressed), 1 findings (or,
under ``--strict``, stale baseline entries), 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import load_baseline, write_baseline
from .registry import LintConfig
from .runner import iter_rule_lines, lint_paths, render_human, render_json

__all__ = ["add_lint_arguments", "run_lint_command", "main"]

DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared with the repro-eba CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing = empty)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover current findings (existing "
             "justifications are kept; new entries get a TODO)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable report on stdout")
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (CI mode)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule code and exit")


def run_lint_command(args: argparse.Namespace,
                     stdout=None) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    if args.list_rules:
        for line in iter_rule_lines():
            print(line, file=out)
        return 0

    raw_paths: Sequence[str] = args.paths or ["src/repro"]
    paths: List[Path] = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.exists():
            print(f"repro-lint: no such path: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    baseline_path = Path(args.baseline)
    try:
        baseline = load_baseline(baseline_path)
    except (ValueError, json.JSONDecodeError, KeyError) as error:
        print(f"repro-lint: bad baseline {baseline_path}: {error}",
              file=sys.stderr)
        return 2

    result = lint_paths(paths, config=LintConfig(), baseline=baseline)

    if args.write_baseline:
        write_baseline(baseline_path, result.findings, baseline)
        print(f"wrote {baseline_path} with {len(result.findings)} "
              "entr(y/ies)", file=out)
        return 0

    if args.as_json:
        print(json.dumps(render_json(result), indent=2, sort_keys=True),
              file=out)
    else:
        print(render_human(result, strict=args.strict), file=out)
    return result.exit_code(strict=args.strict)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``tools/repro_lint.py``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro codebase")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint_command(args)
