"""Per-line suppression comments: ``# repro-lint: disable=RULE[,RULE...]``.

A trailing comment suppresses matching findings on its own line::

    value = risky()  # repro-lint: disable=LOCK001

A standalone comment line suppresses the next code line instead (and any
directly following comment lines chain through)::

    # repro-lint: disable=DET001  -- ordering is canonicalised downstream
    payload = encode(entries)

``disable=`` takes rule codes (``LOCK001``), whole families (``LOCK``), or
``all``.  Everything after the rule list is free text — use it for the
one-line justification.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

from .findings import Finding

__all__ = ["SuppressionMap", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s+--.*|\s*$)")


class SuppressionMap:
    """Line number -> the set of rule selectors disabled on that line."""

    def __init__(self, by_line: Dict[int, Set[str]]) -> None:
        self._by_line = by_line

    def is_suppressed(self, finding: Finding) -> bool:
        selectors = self._by_line.get(finding.line)
        if not selectors:
            return False
        return ("all" in selectors or finding.rule in selectors
                or finding.family in selectors)

    def __bool__(self) -> bool:
        return bool(self._by_line)


def _selectors(comment: str) -> Set[str]:
    match = _DIRECTIVE.search(comment)
    if match is None:
        return set()
    return {part.strip() for part in match.group(1).split(",") if part.strip()}


def parse_suppressions(source: str) -> SuppressionMap:
    """Build the suppression map for one file's source text.

    Tolerates tokenization failures (the parser reports those separately as
    PARSE findings) by returning an empty map.
    """
    by_line: Dict[int, Set[str]] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionMap({})
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        selectors = _selectors(token.string)
        if not selectors:
            continue
        line = token.start[0]
        stripped = lines[line - 1].strip() if line - 1 < len(lines) else ""
        if stripped.startswith("#"):
            # Standalone comment: apply to the next non-comment, non-blank
            # line (directly following comment lines chain through).
            target = line + 1
            while target - 1 < len(lines):
                text = lines[target - 1].strip()
                if text and not text.startswith("#"):
                    break
                target += 1
            by_line.setdefault(target, set()).update(selectors)
        else:
            by_line.setdefault(line, set()).update(selectors)
    return SuppressionMap(by_line)
