"""Checker registry, per-file context, and the lint configuration.

A checker is a class with a ``family`` (``DET``, ``LOCK``, ...), a ``codes``
table mapping each rule code it can emit to a one-line description, and a
``check(ctx)`` method yielding :class:`~.findings.Finding` objects for one
parsed file.  Registration is declarative::

    @register
    class DeterminismChecker:
        family = "DET"
        codes = {"DET001": "..."}
        def check(self, ctx): ...

The runner instantiates every registered checker once per invocation and
feeds each file's :class:`FileContext` through all of them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Set, Tuple, Type

from .findings import Finding, at_node

__all__ = [
    "CHECKERS", "Checker", "FileContext", "GuardSpec", "LintConfig",
    "ProjectIndex", "all_rule_codes", "register",
]


class Checker:
    """Protocol-style base class for checkers (subclassing is optional)."""

    family: str = ""
    codes: Dict[str, str] = {}

    def check(self, ctx: "FileContext") -> Iterable[Finding]:
        raise NotImplementedError


#: Registered checker classes, in registration order.
CHECKERS: List[Type[Checker]] = []


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to :data:`CHECKERS`."""
    if not getattr(cls, "family", ""):
        raise ValueError(f"checker {cls.__name__} has no family")
    if not getattr(cls, "codes", None):
        raise ValueError(f"checker {cls.__name__} declares no rule codes")
    for code in cls.codes:
        if not code.startswith(cls.family):
            raise ValueError(
                f"checker {cls.__name__}: code {code} outside family {cls.family}")
    CHECKERS.append(cls)
    return cls


def all_rule_codes() -> Dict[str, str]:
    """Every registered rule code mapped to its description, sorted."""
    table: Dict[str, str] = {}
    for cls in CHECKERS:
        table.update(cls.codes)
    return dict(sorted(table.items()))


@dataclass(frozen=True)
class GuardSpec:
    """Lock-discipline contract for one class: which attributes may only be
    touched while holding which lock(s)."""

    locks: Tuple[str, ...]
    attrs: Tuple[str, ...]


def _guard(locks: Iterable[str], attrs: Iterable[str]) -> GuardSpec:
    return GuardSpec(locks=tuple(sorted(locks)), attrs=tuple(sorted(attrs)))


#: Built-in lock contracts for the repo's core shared-state classes.  A class
#: body can declare (or override) its own via a ``_GUARDED_BY`` dict literal
#: mapping attribute name -> lock attribute name.
BUILTIN_GUARDS: Mapping[str, GuardSpec] = {
    "JobQueue": _guard(
        # _ready is a Condition constructed over _lock; entering either
        # acquires the same underlying lock.
        ("_lock", "_ready"),
        ("_jobs", "_pending", "_delayed", "_delay_seq", "_queued", "_stopped"),
    ),
    "ArtifactStore": _guard(
        ("_lock",),
        ("_memory", "_size_estimate", "_hits", "_memory_hits", "_misses",
         "_puts", "_corrupted", "_io_errors", "_io_warned"),
    ),
    "EventBus": _guard(("_lock",), ("_subscribers",)),
    "MetricsRegistry": _guard(("_lock",), ("_metrics",)),
}

#: Symbols whose call sites are deprecated, keyed by defining module.  Calls
#: are resolved through the file's imports, so a same-named symbol imported
#: from elsewhere (e.g. ``simulation.engine.simulate``) is never flagged.
DEPRECATED_SYMBOLS: Mapping[str, Tuple[str, ...]] = {
    "repro.simulation.runner": (
        "simulate", "run_protocol", "run_batch", "corresponding_runs", "sweep"),
    "repro.api.specs": ("set_resume_notifier",),
    "repro.api": ("set_resume_notifier",),
    "repro": ("set_resume_notifier",),
}

#: Keyword arguments whose presence marks a call as legacy.
DEPRECATED_KEYWORDS: Mapping[str, Tuple[str, ...]] = {
    "engine": ("per-run",),
}


@dataclass(frozen=True)
class LintConfig:
    """Scan-wide policy: which module paths are exempt from which families.

    Globs are matched (:func:`fnmatch.fnmatch`) against the *module path* —
    the file path from its ``repro`` package component down, e.g.
    ``repro/obs/bus.py`` — so the allowlists hold no matter where the
    checkout lives or which root the scan started from.
    """

    #: Paths where bare print/stderr output is the job (the CLIs, obs itself).
    obs_output_allowed: Tuple[str, ...] = (
        "repro/obs/*.py", "repro/cli.py", "repro/analysis/lint/cli.py")
    #: Paths allowed to use the unseeded module-level ``random``.
    random_allowed: Tuple[str, ...] = (
        "repro/workloads/*.py", "repro/testing/*.py")
    #: Paths allowed to call deprecated shims (the shim modules themselves).
    deprecated_allowed: Tuple[str, ...] = ("repro/simulation/runner.py",
                                           "repro/api/specs.py")
    #: Required metric-name prefix and per-kind suffix rules.
    metric_prefix: str = "repro_"

    def allows(self, globs: Tuple[str, ...], module_path: str) -> bool:
        return any(fnmatch(module_path, pattern) for pattern in globs)


@dataclass
class ProjectIndex:
    """Cross-file facts gathered in a pre-pass over every scanned file.

    ``executor_functions`` holds the names of functions *defined anywhere in
    the scanned set* that accept an ``executor`` parameter — the callee side
    of the API002 "dropped executor" rule.
    """

    executor_functions: Set[str] = field(default_factory=set)


@dataclass
class FileContext:
    """One parsed file plus everything a checker needs to judge it."""

    path: str
    module_path: str
    source: str
    tree: ast.Module
    config: LintConfig
    project: ProjectIndex

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return at_node(self.path, node, rule, message)


def module_path_for(path: Path) -> str:
    """The path from the last ``repro`` component down (posix), or the file
    name when the file is not under a ``repro`` package (e.g. fixtures)."""
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.name


def walk_with_parents(tree: ast.AST) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(node, ancestors)`` pairs, ancestors outermost-first."""
    stack: List[Tuple[ast.AST, List[ast.AST]]] = [(tree, [])]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + [node]
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_ancestors))
