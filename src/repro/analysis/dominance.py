"""Dominance comparisons between action protocols (Section 5's ``≤_γ`` relation).

An action protocol ``P`` *dominates* ``P'`` with respect to a context if, in
every pair of corresponding runs (same preferences, same failure pattern),
every agent that is nonfaulty in ``P``'s run decides under ``P`` no later than
it does under ``P'``.  ``P`` *strictly* dominates ``P'`` if it dominates and is
not dominated back.  An EBA protocol is *optimal* if no EBA protocol strictly
dominates it.

True optimality quantifies over all protocols, which the paper establishes by
proof; what this module checks empirically is the decidable consequence: over
any workload of corresponding runs, the relations between the protocols we
implement come out as the theory predicts (e.g. nothing strictly dominates
``P_min`` in its context, while ``P_min`` strictly dominates the delayed
baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING, Tuple

from ..core.types import AgentId
from ..protocols.base import ActionProtocol
from ..simulation.runner import Scenario
from ..simulation.trace import RunTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.executors import Executor


@dataclass(frozen=True)
class DominanceCounterexample:
    """A witness that one protocol decided strictly later than another for some nonfaulty agent."""

    scenario_index: int
    agent: AgentId
    earlier_protocol: str
    earlier_round: Optional[int]
    later_protocol: str
    later_round: Optional[int]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"scenario {self.scenario_index}: agent {self.agent} decides in round "
                f"{self.earlier_round} under {self.earlier_protocol} but round "
                f"{self.later_round} under {self.later_protocol}")


@dataclass
class DominanceResult:
    """The outcome of comparing two protocols over a workload of corresponding runs."""

    first_name: str
    second_name: str
    scenarios: int
    first_dominates: bool
    second_dominates: bool
    first_strictly_earlier: int
    second_strictly_earlier: int
    counterexamples_to_first: List[DominanceCounterexample] = field(default_factory=list)
    counterexamples_to_second: List[DominanceCounterexample] = field(default_factory=list)

    @property
    def first_strictly_dominates(self) -> bool:
        """Whether the first protocol dominates and is sometimes strictly earlier."""
        return self.first_dominates and not self.second_dominates

    @property
    def second_strictly_dominates(self) -> bool:
        return self.second_dominates and not self.first_dominates

    @property
    def equivalent(self) -> bool:
        """Whether the two protocols decide at identical times on every scenario."""
        return self.first_dominates and self.second_dominates

    def summary(self) -> str:
        if self.equivalent:
            verdict = "decide at identical times"
        elif self.first_strictly_dominates:
            verdict = f"{self.first_name} strictly dominates {self.second_name}"
        elif self.second_strictly_dominates:
            verdict = f"{self.second_name} strictly dominates {self.first_name}"
        else:
            verdict = "incomparable (each is sometimes strictly earlier)"
        return (f"{self.first_name} vs {self.second_name} over {self.scenarios} scenarios: "
                f"{verdict}")


def _dominates_on_pair(earlier: RunTrace, later: RunTrace, scenario_index: int,
                       ) -> Tuple[bool, int, List[DominanceCounterexample]]:
    """Check the dominance inequality for one pair of corresponding runs.

    Returns ``(dominates, strictly_earlier_count, counterexamples)`` where the
    counterexamples witness agents for which ``earlier`` decides strictly later.
    """
    dominates = True
    strictly_earlier = 0
    counterexamples: List[DominanceCounterexample] = []
    for agent in sorted(earlier.nonfaulty):
        round_a = earlier.decision_round(agent)
        round_b = later.decision_round(agent)
        if round_a is None:
            # The candidate dominator never decides: it cannot dominate unless the
            # other protocol also never decides for this agent.
            if round_b is not None:
                dominates = False
                counterexamples.append(DominanceCounterexample(
                    scenario_index, agent, later.protocol_name, round_b,
                    earlier.protocol_name, round_a))
            continue
        if round_b is None or round_a < round_b:
            strictly_earlier += 1
            continue
        if round_a > round_b:
            dominates = False
            counterexamples.append(DominanceCounterexample(
                scenario_index, agent, later.protocol_name, round_b,
                earlier.protocol_name, round_a))
    return dominates, strictly_earlier, counterexamples


def compare_traces(first: Sequence[RunTrace], second: Sequence[RunTrace]) -> DominanceResult:
    """Compare two equally long sequences of corresponding traces."""
    if len(first) != len(second):
        raise ValueError("corresponding trace sequences must have equal length")
    first_dominates = True
    second_dominates = True
    first_strict = 0
    second_strict = 0
    counter_first: List[DominanceCounterexample] = []
    counter_second: List[DominanceCounterexample] = []
    for index, (trace_a, trace_b) in enumerate(zip(first, second)):
        if (trace_a.preferences != trace_b.preferences
                or trace_a.pattern != trace_b.pattern):
            raise ValueError(f"scenario {index}: traces are not corresponding runs")
        ok_a, strict_a, ce_a = _dominates_on_pair(trace_a, trace_b, index)
        ok_b, strict_b, ce_b = _dominates_on_pair(trace_b, trace_a, index)
        first_dominates &= ok_a
        second_dominates &= ok_b
        first_strict += strict_a
        second_strict += strict_b
        counter_first.extend(ce_a)
        counter_second.extend(ce_b)
    name_a = first[0].protocol_name if first else "first"
    name_b = second[0].protocol_name if second else "second"
    return DominanceResult(
        first_name=name_a,
        second_name=name_b,
        scenarios=len(first),
        first_dominates=first_dominates,
        second_dominates=second_dominates,
        first_strictly_earlier=first_strict,
        second_strictly_earlier=second_strict,
        counterexamples_to_first=counter_first,
        counterexamples_to_second=counter_second,
    )


def compare_protocols(first: ActionProtocol, second: ActionProtocol, n: int,
                      scenarios: Iterable[Scenario],
                      horizon: Optional[int] = None,
                      executor: Optional["Executor"] = None) -> DominanceResult:
    """Run both protocols over the scenarios and compare decision times.

    Note that the two protocols may use *different* information-exchange
    protocols; the comparison is then between ``(E_1, P_1)`` and ``(E_2, P_2)``
    pairs — this is how Section 8 compares the minimal, basic, and
    full-information settings, and is coarser than the paper's
    per-information-exchange optimality notion.
    """
    from ..api import run_sweep
    results = run_sweep([first, second], scenarios, n=n, horizon=horizon,
                        executor=executor)
    return results.compare(first.name, second.name)


def pairwise_comparison(protocols: Sequence[ActionProtocol], n: int,
                        scenarios: Sequence[Scenario],
                        horizon: Optional[int] = None,
                        executor: Optional["Executor"] = None,
                        ) -> Dict[Tuple[str, str], DominanceResult]:
    """All pairwise dominance results over a shared workload."""
    from ..api import run_sweep
    results = run_sweep(list(protocols), scenarios, n=n, horizon=horizon,
                        executor=executor)
    return results.pairwise()
