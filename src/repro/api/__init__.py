"""``repro.api`` — the unified experiment-orchestration layer.

This package is the single way runs are specified and executed.  It separates
three concerns that the legacy entry points (``simulate`` / ``run_protocol`` /
``run_batch`` / ``corresponding_runs`` / ``sweep``) each re-wired by hand:

* **What to run** — :class:`RunSpec` and :class:`SweepSpec`, frozen declarative
  descriptions of runs (protocols, system size, workload, horizon, seed),
  built directly or through the fluent :class:`Sweep` builder;
* **How to run it** — the :class:`Executor` backends: :class:`SerialExecutor`
  (in-process) and :class:`ParallelExecutor` (process pool), both honouring
  the same deterministic task→trace ordering, optionally wrapped by the
  content-addressed artifact cache (``store=`` on every ``run`` method /
  :class:`~repro.store.CachingExecutor`, see :mod:`repro.store`);
* **What comes back** — :class:`ResultSet`, which plugs into the analysis
  (:meth:`~ResultSet.compare`, :meth:`~ResultSet.pairwise`), specification
  (:meth:`~ResultSet.check_eba`), and reporting (:meth:`~ResultSet.table`)
  layers, and can still be viewed through the legacy ``BatchResult`` /
  dict-of-traces shapes.

Typical usage::

    from repro.api import ParallelExecutor, Sweep
    from repro.protocols import MinProtocol, OptimalFipProtocol
    from repro.workloads import random_scenarios

    results = (Sweep.of(MinProtocol(t=2), OptimalFipProtocol(t=2))
               .on(random_scenarios(n=7, t=2, count=500))
               .with_horizon(5)
               .run(ParallelExecutor()))
    print(results.compare("P_opt", "P_min").summary())

Migration from the legacy entry points
--------------------------------------

====================================  ====================================================
Legacy call                           ``repro.api`` equivalent
====================================  ====================================================
``simulate(P, n, prefs, pat)``        ``RunSpec(P, n, prefs, pat).run()``
``run_protocol(P, n, prefs, pat)``    ``RunSpec(P, n, prefs, pat).run()``
``run_batch(P, n, scenarios)``        ``Sweep.of(P).on(scenarios).run().batch(P.name)``
``corresponding_runs(Ps, n, p, f)``   ``Sweep.of(*Ps).on([(p, f)]).run().corresponding(0)``
``sweep(Ps, n, scenarios)``           ``Sweep.of(*Ps).on(scenarios).run().batches()``
====================================  ====================================================

The legacy functions remain importable from :mod:`repro` as deprecated shims
over this layer.
"""

from typing import Dict, Iterable, Optional, Sequence

from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from ..simulation.trace import RunTrace
from ..store import ArtifactStore, CachingExecutor, StoreLike, default_store, resolve_store
from .executors import (
    Executor,
    ParallelExecutor,
    RunTask,
    SerialExecutor,
    execute_task,
    executor_from_flags,
    resolve_executor,
)
from .results import ResultSet
from .specs import RunSpec, Scenario, Sweep, SweepSpec, set_resume_notifier

__all__ = [
    "ArtifactStore",
    "CachingExecutor",
    "Executor",
    "ParallelExecutor",
    "ResultSet",
    "RunSpec",
    "RunTask",
    "Scenario",
    "SerialExecutor",
    "StoreLike",
    "Sweep",
    "SweepSpec",
    "corresponding",
    "default_store",
    "execute_task",
    "executor_from_flags",
    "resolve_executor",
    "resolve_store",
    "run",
    "run_sweep",
    "set_resume_notifier",
]


def run(protocol: ActionProtocol, n: int, preferences: Sequence[int],
        pattern: Optional[FailurePattern] = None,
        horizon: Optional[int] = None,
        executor: Optional[Executor] = None,
        store: StoreLike = None) -> RunTrace:
    """Execute a single run (shorthand for ``RunSpec(...).run(executor, store)``)."""
    return RunSpec(protocol=protocol, n=n, preferences=tuple(preferences),
                   pattern=pattern, horizon=horizon).run(executor, store=store)


def run_sweep(protocols: Sequence[ActionProtocol], scenarios: Iterable[Scenario],
              n: Optional[int] = None, horizon: Optional[int] = None,
              executor: Optional[Executor] = None,
              store: StoreLike = None) -> ResultSet:
    """Execute a sweep (shorthand for ``Sweep.of(*protocols).on(...).run(executor, store)``)."""
    return Sweep.of(*protocols).on(scenarios, n=n).with_horizon(horizon).run(
        executor, store=store)


def corresponding(protocols: Sequence[ActionProtocol], n: int,
                  preferences: Sequence[int], pattern: FailurePattern,
                  horizon: Optional[int] = None,
                  executor: Optional[Executor] = None,
                  store: StoreLike = None) -> Dict[str, RunTrace]:
    """Run several protocols on one initial global state; map name → trace."""
    results = run_sweep(protocols, [(tuple(preferences), pattern)], n=n,
                        horizon=horizon, executor=executor, store=store)
    return results.corresponding(0)
