"""The unified result container produced by executing a :class:`SweepSpec`.

A :class:`ResultSet` subsumes the two ad-hoc result shapes of the legacy batch
layer — ``BatchResult`` (one protocol over a workload) and the dict-of-traces
returned by ``corresponding_runs`` (several protocols on one scenario) — and
plugs directly into the analysis, specification, and reporting layers:

* :meth:`ResultSet.compare` / :meth:`ResultSet.pairwise` feed
  :func:`repro.analysis.compare_traces` (the Section 5 dominance relation);
* :meth:`ResultSet.check_eba` runs :func:`repro.spec.check_eba` over every
  trace;
* :meth:`ResultSet.rows` / :meth:`ResultSet.table` feed
  :func:`repro.reporting.tables.format_table`.

Indexing follows both legacy shapes: ``results["P_min"]`` is the protocol's
trace tuple (the ``BatchResult`` view) and ``results.corresponding(i)`` is the
scenario's name→trace mapping (the ``corresponding_runs`` view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, TYPE_CHECKING, Tuple

from ..core.errors import ConfigurationError
from ..simulation.runner import BatchResult, Scenario
from ..simulation.trace import RunTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.dominance import DominanceResult
    from ..spec.eba import SpecReport


@dataclass(frozen=True)
class ResultSet:
    """The traces of a sweep: every protocol over every scenario, in order.

    ``traces[p][s]`` is the trace of protocol ``protocol_names[p]`` on
    ``scenarios[s]``; column ``s`` across protocols is a family of
    corresponding runs (same initial global state).  Equality is structural,
    so two result sets are equal exactly when every trace matches — the
    property the executor-equivalence guarantee is stated in terms of.
    """

    protocol_names: Tuple[str, ...]
    scenarios: Tuple[Scenario, ...]
    traces: Tuple[Tuple[RunTrace, ...], ...]
    horizon: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.traces) != len(self.protocol_names):
            raise ConfigurationError(
                f"{len(self.protocol_names)} protocols but {len(self.traces)} trace rows"
            )
        for name, row in zip(self.protocol_names, self.traces):
            if len(row) != len(self.scenarios):
                raise ConfigurationError(
                    f"protocol {name!r} has {len(row)} traces for "
                    f"{len(self.scenarios)} scenarios"
                )

    # ------------------------------------------------------------------ access

    def __len__(self) -> int:
        """The number of scenarios (runs per protocol)."""
        return len(self.scenarios)

    def __contains__(self, protocol_name: str) -> bool:
        return protocol_name in self.protocol_names

    def __iter__(self) -> Iterator[str]:
        return iter(self.protocol_names)

    def _index_of(self, protocol_name: str) -> int:
        try:
            return self.protocol_names.index(protocol_name)
        except ValueError:
            raise ConfigurationError(
                f"no protocol {protocol_name!r} in this result set "
                f"(have: {', '.join(self.protocol_names)})"
            ) from None

    def __getitem__(self, protocol_name: str) -> Tuple[RunTrace, ...]:
        """All traces of one protocol, in scenario order."""
        return self.traces[self._index_of(protocol_name)]

    def trace(self, protocol_name: str, scenario_index: int = 0) -> RunTrace:
        """The trace of one protocol on one scenario."""
        return self[protocol_name][scenario_index]

    def only(self) -> RunTrace:
        """The single trace of a one-protocol, one-scenario result set."""
        if len(self.protocol_names) != 1 or len(self.scenarios) != 1:
            raise ConfigurationError(
                f"only() needs a 1x1 result set, got {len(self.protocol_names)} "
                f"protocol(s) x {len(self.scenarios)} scenario(s)"
            )
        return self.traces[0][0]

    # ------------------------------------------------------------------ legacy views

    def batch(self, protocol_name: str) -> BatchResult:
        """One protocol's results in the legacy ``BatchResult`` shape."""
        return BatchResult(protocol_name=protocol_name, traces=self[protocol_name])

    def batches(self) -> Dict[str, BatchResult]:
        """All results in the legacy ``sweep()`` shape (name → BatchResult)."""
        return {name: self.batch(name) for name in self.protocol_names}

    def corresponding(self, scenario_index: int = 0) -> Dict[str, RunTrace]:
        """One scenario's family of corresponding runs (name → trace)."""
        return {name: self.traces[index][scenario_index]
                for index, name in enumerate(self.protocol_names)}

    # ------------------------------------------------------------------ analysis integration

    def compare(self, first: str, second: str) -> "DominanceResult":
        """Dominance comparison of two protocols over the shared workload."""
        from ..analysis.dominance import compare_traces
        return compare_traces(self[first], self[second])

    def pairwise(self) -> Dict[Tuple[str, str], "DominanceResult"]:
        """All pairwise dominance results, keyed like ``pairwise_comparison``."""
        from ..analysis.dominance import compare_traces
        results: Dict[Tuple[str, str], "DominanceResult"] = {}
        for i, first in enumerate(self.protocol_names):
            for second in self.protocol_names[i + 1:]:
                results[(first, second)] = compare_traces(self[first], self[second])
        return results

    # ------------------------------------------------------------------ spec integration

    def check_eba(self, deadline: Optional[int] = None,
                  validity_for_faulty: bool = False) -> Dict[str, Tuple["SpecReport", ...]]:
        """Run the EBA specification checker over every trace."""
        from ..spec.eba import check_eba
        return {
            name: tuple(check_eba(trace, deadline=deadline,
                                  validity_for_faulty=validity_for_faulty)
                        for trace in self[name])
            for name in self.protocol_names
        }

    def spec_violations(self, deadline: Optional[int] = None,
                        validity_for_faulty: bool = False) -> Dict[str, int]:
        """Per-protocol count of scenarios whose trace violates the EBA spec."""
        return {
            name: sum(1 for report in reports if not report.ok)
            for name, reports in self.check_eba(
                deadline=deadline, validity_for_faulty=validity_for_faulty).items()
        }

    # ------------------------------------------------------------------ reporting integration

    def rows(self) -> List[Dict[str, object]]:
        """One reporting row per (protocol, scenario) pair, for ``format_table``."""
        rows: List[Dict[str, object]] = []
        for name in self.protocol_names:
            for index, trace in enumerate(self[name]):
                last = trace.last_decision_round(nonfaulty_only=True)
                values = {trace.decision_value(agent) for agent in trace.nonfaulty}
                values.discard(None)
                if not values:
                    value = "undecided"
                elif len(values) == 1:
                    value = values.pop()
                else:
                    value = "split"
                rows.append({
                    "protocol": name,
                    "scenario": index,
                    "adversary": trace.pattern.describe(),
                    "nonfaulty decide by": last if last is not None else "",
                    "value": value,
                })
        return rows

    def table(self, title: Optional[str] = None) -> str:
        """Render :meth:`rows` as an aligned plain-text table."""
        from ..reporting.tables import format_table
        return format_table(self.rows(), title=title)

    # ------------------------------------------------------------------ cosmetics

    def summary(self) -> str:
        """A one-line description of the result set."""
        return (f"ResultSet({len(self.protocol_names)} protocols x "
                f"{len(self.scenarios)} scenarios: "
                f"{', '.join(self.protocol_names)})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()
