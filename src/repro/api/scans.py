"""Run-space scans: shard per-run kernels across processes via shared memory.

The vectorized check phase (the Definition 6.2 safety scan in
:mod:`repro.kbp.safety`) reduces almost everything to word-array pipelines —
but one ingredient, the zero-chain receipt of clause (2), inspects each run's
delivered messages and stays per-run Python.  This module is the fan-out for
exactly that shape of work: a *scan kernel* ``kernel(system, start, stop)``
that maps a contiguous run range to a fixed-dtype array with one row per run.

``scan_runs`` shards ``[0, num_runs)`` into contiguous blocks and runs the
kernel over them:

* **in-process** when there is nothing to gain (one worker, few runs, numpy or
  the ``fork`` start method unavailable) — the fallback is always correct,
  parallelism is purely an optimisation;
* **forked workers + shared memory** otherwise.  The parent stashes the
  (large, already-built) :class:`~repro.systems.interpreted.InterpretedSystem`
  and the kernel in a module global *before* forking, so children inherit them
  by copy-on-write and the work items that cross the process boundary are bare
  ``(start, stop)`` tuples — no system pickling, in either direction.  Results
  come back through one :class:`multiprocessing.shared_memory.SharedMemory`
  block: each worker writes its rows at ``result[start:stop]``, which is
  race-free because the shards are disjoint.

Because every shard is a pure function of the run range and the rows land at
their run's own index, the assembled array is byte-identical to the serial
kernel call for any worker count — the same determinism contract the run/batch
executors keep (see :mod:`repro.api.executors`), extended to the check phase.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Optional, Sequence, Tuple

from ..logic import words as _words
from ..obs import trace as _trace
from ..systems.interpreted import InterpretedSystem

__all__ = ["ScanKernel", "scan_runs", "fork_available"]

#: A per-run scan kernel: ``kernel(system, start, stop)`` returns an array of
#: shape ``(stop - start, *row_shape)`` — row ``i`` describes run ``start + i``.
ScanKernel = Callable[[InterpretedSystem, int, int], "object"]

#: Below this many runs the fork + shared-memory machinery costs more than the
#: scan itself; ``scan_runs`` stays in-process.
MIN_RUNS_TO_FORK = 2048

#: Pre-fork stash: ``(system, kernel)``, inherited by workers via fork
#: copy-on-write.  Only ever set around a ``scan_runs`` fan-out.
_SCAN_STATE: Optional[Tuple[InterpretedSystem, ScanKernel]] = None


def fork_available() -> bool:
    """Whether the copy-on-write ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker(item: Tuple[str, Tuple[int, ...], str, int, int]) -> Tuple[int, int]:
    """One shard: run the stashed kernel and write its rows into shared memory."""
    from multiprocessing import shared_memory

    import numpy as np

    shm_name, total_shape, dtype_str, start, stop = item
    system, kernel = _SCAN_STATE  # type: ignore[misc]  # set pre-fork
    shard_span = _trace.NOOP
    if _trace.is_active():
        # Forked worker: the inherited tracer reopens the sink under this
        # pid, so shard spans merge into the parent's trace file.
        shard_span = _trace.span("scan.shard", "exec",
                                 {"start": start, "stop": stop})
    with shard_span:
        rows = np.asarray(kernel(system, start, stop), dtype=np.dtype(dtype_str))
    expected = (stop - start,) + tuple(total_shape[1:])
    if rows.shape != expected:
        raise ValueError(
            f"scan kernel returned shape {rows.shape} for runs [{start}, {stop}); "
            f"expected {expected}")
    block = shared_memory.SharedMemory(name=shm_name)
    try:
        result = np.ndarray(total_shape, dtype=np.dtype(dtype_str), buffer=block.buf)
        result[start:stop] = rows
    finally:
        block.close()
    return (start, stop)


def scan_runs(system: InterpretedSystem, kernel: ScanKernel, *,
              row_shape: Sequence[int] = (), dtype: str = "int16",
              workers: int = 1):
    """Apply a per-run kernel over every run, sharded across ``workers`` processes.

    Parameters
    ----------
    system:
        The (fully built) system to scan.
    kernel:
        The scan kernel; must be a pure function of ``(system, start, stop)``.
    row_shape:
        Trailing shape of one run's row (``()`` for a scalar per run).
    dtype:
        numpy dtype string of the result array.
    workers:
        Desired process count.  The call falls back to one in-process kernel
        invocation whenever sharding cannot help (``workers <= 1``, fewer than
        :data:`MIN_RUNS_TO_FORK` runs, no numpy, or no ``fork``).

    Returns the assembled ``(num_runs, *row_shape)`` array (a plain in-process
    copy; the shared-memory block is unlinked before returning).
    """
    global _SCAN_STATE

    num_runs = len(system.runs)
    serial = (
        workers <= 1
        or num_runs < MIN_RUNS_TO_FORK
        or not _words.HAVE_NUMPY
        or not fork_available()
    )
    scan_span = _trace.NOOP
    if _trace.is_active():
        scan_span = _trace.span("scan.runs", "exec", {
            "runs": num_runs, "workers": workers, "serial": serial})
    with scan_span as span:
        if serial:
            result = kernel(system, 0, num_runs)
            if _words.HAVE_NUMPY:
                import numpy as np
                return np.asarray(result, dtype=np.dtype(dtype))
            return result

        from multiprocessing import shared_memory

        import numpy as np

        total_shape = (num_runs,) + tuple(row_shape)
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(total_shape)) * dt.itemsize)
        shards = _words.blocks(num_runs, workers * 4)
        span.set("shards", len(shards))
        block = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            items = [(block.name, total_shape, dt.str, start, stop)
                     for start, stop in shards]
            _SCAN_STATE = (system, kernel)
            try:
                context = multiprocessing.get_context("fork")
                with context.Pool(processes=min(workers, len(items))) as pool:
                    pool.map(_worker, items)
            finally:
                _SCAN_STATE = None
            shared = np.ndarray(total_shape, dtype=dt, buffer=block.buf)
            return shared.copy()
        finally:
            block.close()
            block.unlink()
