"""Pluggable execution backends for run specs.

An :class:`Executor` turns a sequence of *run tasks* — ``(protocol, n,
preferences, pattern, horizon)`` tuples, the pure-data description of one call
to the simulation engine — into the corresponding sequence of
:class:`~repro.simulation.trace.RunTrace` objects, **in the same order**.  That
ordering contract is what lets :meth:`repro.api.specs.SweepSpec.run` produce
identical :class:`~repro.api.results.ResultSet` contents on every backend: the
executor only decides *where* runs execute, never what the result looks like.

Two backends are provided:

* :class:`SerialExecutor` — runs everything in-process; the default.
* :class:`ParallelExecutor` — fans tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; worthwhile for large sweeps
  because every run is an independent, deterministic, CPU-bound simulation.

Both backends additionally understand *batch tasks*
(:data:`~repro.simulation.batch.BatchTask`): chunks of a system build executed
through the round-major :class:`~repro.simulation.batch.BatchSimulator` via
``run_batches`` — the fan-out unit :func:`repro.systems.interpreted.build_system`
uses, so ``--parallel`` parallelises over pattern chunks instead of individual
runs.  The :class:`~repro.store.CachingExecutor` implements ``run_batches``
too (cache-aware, forwarding whole missing batches to its inner backend), so
``--cache`` composes with the batched engine; executors that only implement
``run_tasks`` still work everywhere — callers fall back to per-run tasks.

Tasks and traces cross process boundaries by pickling, which every protocol,
failure pattern, and trace in the library supports (they are plain dataclasses
and plain classes).
"""

from __future__ import annotations

import os
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..core.errors import ConfigurationError
from ..failures.pattern import FailurePattern
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.bus import BUS, ProgressReporter
from ..protocols.base import ActionProtocol
from ..simulation.batch import BatchTask, execute_batches
from ..simulation.engine import simulate
from ..simulation.trace import RunTrace

_POOL_REBUILDS = _metrics.counter(
    "repro_pool_rebuilds_total",
    "Broken process pools rebuilt mid-sweep by ParallelExecutor")

#: The pure-data description of one simulation run:
#: ``(protocol, n, preferences, pattern, horizon)``.
RunTask = Tuple[ActionProtocol, int, Sequence[int], Optional[FailurePattern], Optional[int]]


def execute_task(task: RunTask) -> RunTrace:
    """Execute one run task with the simulation engine.

    Module-level (rather than a method) so process-pool workers can import it
    by qualified name when unpickling work items.
    """
    protocol, n, preferences, pattern, horizon = task
    return simulate(protocol, n, preferences, pattern=pattern, horizon=horizon)


def _execute_task_chunk(tasks: Sequence[RunTask]) -> List[RunTrace]:
    """One pool work item: a contiguous chunk of run tasks, in order.

    Runs worker-side: the span (when tracing is on — fork children inherit
    the enabled tracer) lands in the same trace file as the parent's, under
    the child's pid.
    """
    if not _trace.is_active():
        return [execute_task(task) for task in tasks]
    with _trace.span("exec.chunk", "exec", {"tasks": len(tasks)}):
        return [execute_task(task) for task in tasks]


def _execute_batch_chunk(batches: Sequence[BatchTask]) -> List[RunTrace]:
    """One pool work item: a contiguous chunk of batch tasks, in order."""
    if not _trace.is_active():
        return execute_batches(batches)
    with _trace.span("exec.chunk", "exec", {"batches": len(batches)}):
        return execute_batches(batches)


@runtime_checkable
class Executor(Protocol):
    """The execution-backend interface.

    Implementations must return exactly one trace per task, in task order.
    """

    def run_tasks(self, tasks: Sequence[RunTask]) -> List[RunTrace]:  # pragma: no cover
        ...


class SerialExecutor:
    """Run every task in the calling process, one after another."""

    def run_tasks(self, tasks: Sequence[RunTask]) -> List[RunTrace]:
        return [execute_task(task) for task in tasks]

    def run_batches(self, batches: Sequence[BatchTask]) -> List[RunTrace]:
        """Run batched-construction work items in-process, in order.

        Consecutive batches of the same ``(protocol, n)`` share one
        :class:`~repro.simulation.batch.BatchSimulator`, so serially executing
        a chunked system build loses none of the cross-run sharing.
        """
        return execute_batches(batches)

    def scan_runs(self, system, kernel, *, row_shape=(), dtype="int16"):
        """Apply a per-run scan kernel in-process (see :mod:`repro.api.scans`)."""
        from .scans import scan_runs
        return scan_runs(system, kernel, row_shape=row_shape, dtype=dtype, workers=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan tasks out over a process pool, preserving task order.

    Parameters
    ----------
    max_workers:
        Worker-process count; defaults to ``os.cpu_count()``.
    chunksize:
        How many tasks each worker picks up at a time.  Defaults to a heuristic
        (roughly ``len(tasks) / (4 * max_workers)``, at least 1) that amortises
        pickling overhead on large sweeps.
    pool_retries:
        How many times a **dead process pool** is rebuilt before giving up.
        A worker process dying (OOM kill, segfault, a crashing task) breaks
        the whole ``ProcessPoolExecutor``; instead of aborting the sweep, the
        executor rebuilds the pool and resubmits only the chunks that never
        finished — completed chunks keep their results, so nothing is
        recomputed and the output stays byte-identical to a serial run.

    Determinism
    -----------
    Chunks are indexed by position and their results reassembled in
    submission order regardless of which worker (or which pool incarnation)
    finishes first, and every simulation run is itself a pure function of its
    task, so the returned traces are identical to :class:`SerialExecutor`'s
    for any workload, any worker count, and any number of pool rebuilds.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 pool_retries: int = 2) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        if pool_retries < 0:
            raise ConfigurationError(f"pool_retries must be non-negative, got {pool_retries}")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.pool_retries = pool_retries

    def _effective_workers(self) -> int:
        return self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)

    def _map_chunks(self, function, chunks: List[list], workers: int) -> List[list]:
        """Run ``function`` over every chunk, surviving pool death.

        Submits each chunk as its own future (so a broken pool loses only the
        chunks that had not completed), collects results by chunk index, and
        on :class:`~concurrent.futures.process.BrokenProcessPool` rebuilds the
        pool for the unfinished remainder — up to ``pool_retries`` rebuilds.
        A chunk raising an ordinary exception propagates unchanged: task
        errors are real errors, only pool death is retried.
        """
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        fanout_span = _trace.NOOP
        if _trace.is_active():
            fanout_span = _trace.span("exec.map_chunks", "exec",
                                      {"chunks": len(chunks),
                                       "workers": workers})
        reporter = None
        if BUS.has_subscribers("progress"):
            reporter = ProgressReporter("parallel", total=len(chunks),
                                        unit="chunks")
        with fanout_span as span:
            results: List[Optional[list]] = [None] * len(chunks)
            pending = list(range(len(chunks)))
            rebuilds = 0
            while pending:
                with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                    futures = {pool.submit(function, chunks[index]): index
                               for index in pending}
                    for future in as_completed(futures):
                        index = futures[future]
                        try:
                            results[index] = future.result()
                            if reporter is not None:
                                reporter.advance()
                        except BrokenProcessPool:
                            # The pool marks every unfinished future with this
                            # error; keep draining so completed chunks are kept.
                            pass
                pending = [index for index in pending if results[index] is None]
                if pending:
                    rebuilds += 1
                    _POOL_REBUILDS.inc()
                    _trace.event("exec.pool_rebuild", "exec",
                                 {"pending": len(pending)})
                    BUS.emit("pool.rebuild", pending=len(pending))
                    if rebuilds > self.pool_retries:
                        raise BrokenProcessPool(
                            f"process pool died {rebuilds} time(s) with "
                            f"{len(pending)} chunk(s) unfinished; giving up "
                            f"(pool_retries={self.pool_retries})")
            if rebuilds:
                span.set("rebuilds", rebuilds)
            return results  # type: ignore[return-value]  # every slot filled

    def run_tasks(self, tasks: Sequence[RunTask]) -> List[RunTrace]:
        tasks = list(tasks)
        workers = min(self._effective_workers(), max(1, len(tasks)))
        if workers == 1 or len(tasks) <= 1:
            # Nothing to parallelise: skip the pool (and its fork/pickle cost).
            return [execute_task(task) for task in tasks]
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(tasks) // (4 * workers))
        chunks = [list(tasks[start:start + chunksize])
                  for start in range(0, len(tasks), chunksize)]
        traces: List[RunTrace] = []
        for chunk_traces in self._map_chunks(_execute_task_chunk, chunks, workers):
            traces.extend(chunk_traces)
        return traces

    def run_batches(self, batches: Sequence[BatchTask]) -> List[RunTrace]:
        """Fan batched-construction work items out over the pool, preserving order.

        Each batch (a contiguous chunk of failure patterns crossed with the
        preference vectors; when :func:`repro.systems.interpreted.build_system`
        builds from orbits, chunk boundaries respect orbit boundaries) runs
        through one worker-side
        :class:`~repro.simulation.batch.BatchSimulator`, so the round-major
        sharing survives inside every chunk while the chunks themselves run in
        parallel.  Chunk results are reassembled in submission order, and each
        batch is a pure function of its task, so the concatenated traces are
        identical to :meth:`SerialExecutor.run_batches`'s for any chunking —
        including after a mid-sweep pool rebuild (see :meth:`_map_chunks`).
        """
        batches = list(batches)
        workers = min(self._effective_workers(), max(1, len(batches)))
        if workers == 1 or len(batches) <= 1:
            return execute_batches(batches)
        chunksize = self.chunksize
        if chunksize is None:
            # Unlike run tasks, batches are already coarse (build_system
            # emits at most a few dozen), so per-batch dispatch load-balances
            # better than the IPC-amortising heuristic above and costs
            # nothing.
            chunksize = 1
        chunks = [list(batches[start:start + chunksize])
                  for start in range(0, len(batches), chunksize)]
        traces: List[RunTrace] = []
        for chunk_traces in self._map_chunks(_execute_batch_chunk, chunks, workers):
            traces.extend(chunk_traces)
        return traces

    def scan_runs(self, system, kernel, *, row_shape=(), dtype="int16"):
        """Shard a per-run scan kernel across forked workers via shared memory.

        The check-phase counterpart of :meth:`run_batches`: where batch tasks
        parallelise system *construction*, scan kernels parallelise the
        per-run remainder of the *check* phase (the safety scan's zero-chain
        receipts).  Dispatches to :func:`repro.api.scans.scan_runs`, which
        inherits the already-built system into fork children copy-on-write and
        assembles rows through one shared-memory block — falling back to an
        in-process call whenever sharding cannot pay (small systems, one
        worker, platforms without ``fork``), with byte-identical results
        either way.
        """
        from .scans import scan_runs
        return scan_runs(system, kernel, row_shape=row_shape, dtype=dtype,
                         workers=self._effective_workers())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ParallelExecutor(max_workers={self.max_workers}, "
                f"chunksize={self.chunksize}, pool_retries={self.pool_retries})")


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """Default-resolve an executor argument (``None`` → :class:`SerialExecutor`)."""
    if executor is None:
        return SerialExecutor()
    if not isinstance(executor, Executor):
        raise ConfigurationError(
            f"{executor!r} is not an Executor (needs a run_tasks(tasks) method)"
        )
    return executor


def executor_from_flags(parallel: bool = False, jobs: Optional[int] = None) -> Executor:
    """Build the backend described by ``--parallel`` / ``--jobs``-style flags.

    The single translation point from user-facing flags to a backend, shared
    by the CLI and the benchmarks.  Passing ``jobs`` *implies* the parallel
    backend: ``--jobs 8`` without ``--parallel`` historically fell through to
    a :class:`SerialExecutor` silently, which turned an explicit request for
    eight workers into a serial run with no warning.  Now any ``jobs`` value
    selects a :class:`ParallelExecutor` with that worker count, ``parallel``
    alone selects one with all cores, and a non-positive ``jobs`` raises
    :class:`~repro.core.errors.ConfigurationError` at the flag layer instead
    of surfacing as a pool error later.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"--jobs must be a positive worker count, got {jobs}")
    if parallel or jobs is not None:
        return ParallelExecutor(max_workers=jobs)
    return SerialExecutor()
