"""Pluggable execution backends for run specs.

An :class:`Executor` turns a sequence of *run tasks* — ``(protocol, n,
preferences, pattern, horizon)`` tuples, the pure-data description of one call
to the simulation engine — into the corresponding sequence of
:class:`~repro.simulation.trace.RunTrace` objects, **in the same order**.  That
ordering contract is what lets :meth:`repro.api.specs.SweepSpec.run` produce
identical :class:`~repro.api.results.ResultSet` contents on every backend: the
executor only decides *where* runs execute, never what the result looks like.

Two backends are provided:

* :class:`SerialExecutor` — runs everything in-process; the default.
* :class:`ParallelExecutor` — fans tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; worthwhile for large sweeps
  because every run is an independent, deterministic, CPU-bound simulation.

Both backends additionally understand *batch tasks*
(:data:`~repro.simulation.batch.BatchTask`): chunks of a system build executed
through the round-major :class:`~repro.simulation.batch.BatchSimulator` via
``run_batches`` — the fan-out unit :func:`repro.systems.interpreted.build_system`
uses, so ``--parallel`` parallelises over pattern chunks instead of individual
runs.  The :class:`~repro.store.CachingExecutor` implements ``run_batches``
too (cache-aware, forwarding whole missing batches to its inner backend), so
``--cache`` composes with the batched engine; executors that only implement
``run_tasks`` still work everywhere — callers fall back to per-run tasks.

Tasks and traces cross process boundaries by pickling, which every protocol,
failure pattern, and trace in the library supports (they are plain dataclasses
and plain classes).
"""

from __future__ import annotations

import os
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..core.errors import ConfigurationError
from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from ..simulation.batch import BatchTask, execute_batch, execute_batches
from ..simulation.engine import simulate
from ..simulation.trace import RunTrace

#: The pure-data description of one simulation run:
#: ``(protocol, n, preferences, pattern, horizon)``.
RunTask = Tuple[ActionProtocol, int, Sequence[int], Optional[FailurePattern], Optional[int]]


def execute_task(task: RunTask) -> RunTrace:
    """Execute one run task with the simulation engine.

    Module-level (rather than a method) so process-pool workers can import it
    by qualified name when unpickling work items.
    """
    protocol, n, preferences, pattern, horizon = task
    return simulate(protocol, n, preferences, pattern=pattern, horizon=horizon)


@runtime_checkable
class Executor(Protocol):
    """The execution-backend interface.

    Implementations must return exactly one trace per task, in task order.
    """

    def run_tasks(self, tasks: Sequence[RunTask]) -> List[RunTrace]:  # pragma: no cover
        ...


class SerialExecutor:
    """Run every task in the calling process, one after another."""

    def run_tasks(self, tasks: Sequence[RunTask]) -> List[RunTrace]:
        return [execute_task(task) for task in tasks]

    def run_batches(self, batches: Sequence[BatchTask]) -> List[RunTrace]:
        """Run batched-construction work items in-process, in order.

        Consecutive batches of the same ``(protocol, n)`` share one
        :class:`~repro.simulation.batch.BatchSimulator`, so serially executing
        a chunked system build loses none of the cross-run sharing.
        """
        return execute_batches(batches)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan tasks out over a process pool, preserving task order.

    Parameters
    ----------
    max_workers:
        Worker-process count; defaults to ``os.cpu_count()``.
    chunksize:
        How many tasks each worker picks up at a time.  Defaults to a heuristic
        (roughly ``len(tasks) / (4 * max_workers)``, at least 1) that amortises
        pickling overhead on large sweeps.

    Determinism
    -----------
    ``ProcessPoolExecutor.map`` yields results in submission order regardless
    of which worker finishes first, and every simulation run is itself a pure
    function of its task, so the returned traces are identical to
    :class:`SerialExecutor`'s for any workload and any worker count.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def _effective_workers(self) -> int:
        return self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)

    def run_tasks(self, tasks: Sequence[RunTask]) -> List[RunTrace]:
        from concurrent.futures import ProcessPoolExecutor

        tasks = list(tasks)
        workers = min(self._effective_workers(), max(1, len(tasks)))
        if workers == 1 or len(tasks) <= 1:
            # Nothing to parallelise: skip the pool (and its fork/pickle cost).
            return [execute_task(task) for task in tasks]
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(tasks) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_task, tasks, chunksize=chunksize))

    def run_batches(self, batches: Sequence[BatchTask]) -> List[RunTrace]:
        """Fan batched-construction work items out over the pool, preserving order.

        Each batch (a contiguous chunk of failure patterns crossed with the
        preference vectors; when :func:`repro.systems.interpreted.build_system`
        builds from orbits, chunk boundaries respect orbit boundaries) runs
        through one worker-side
        :class:`~repro.simulation.batch.BatchSimulator`, so the round-major
        sharing survives inside every chunk while the chunks themselves run in
        parallel.  ``ProcessPoolExecutor.map`` keeps submission order, and each
        batch is a pure function of its task, so the concatenated traces are
        identical to :meth:`SerialExecutor.run_batches`'s for any chunking.
        """
        from concurrent.futures import ProcessPoolExecutor

        batches = list(batches)
        workers = min(self._effective_workers(), max(1, len(batches)))
        if workers == 1 or len(batches) <= 1:
            return execute_batches(batches)
        chunksize = self.chunksize
        if chunksize is None:
            # Unlike run tasks, batches are already coarse (build_system
            # emits at most a few dozen), so per-batch dispatch load-balances
            # better than the IPC-amortising heuristic above and costs
            # nothing.
            chunksize = 1
        with ProcessPoolExecutor(max_workers=workers) as pool:
            traces: List[RunTrace] = []
            for batch_traces in pool.map(execute_batch, batches, chunksize=chunksize):
                traces.extend(batch_traces)
            return traces

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(max_workers={self.max_workers}, chunksize={self.chunksize})"


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """Default-resolve an executor argument (``None`` → :class:`SerialExecutor`)."""
    if executor is None:
        return SerialExecutor()
    if not isinstance(executor, Executor):
        raise ConfigurationError(
            f"{executor!r} is not an Executor (needs a run_tasks(tasks) method)"
        )
    return executor


def executor_from_flags(parallel: bool = False, jobs: Optional[int] = None) -> Executor:
    """Build the backend described by ``--parallel`` / ``--jobs``-style flags.

    The single translation point from user-facing flags to a backend, shared
    by the CLI and the benchmarks.  Passing ``jobs`` *implies* the parallel
    backend: ``--jobs 8`` without ``--parallel`` historically fell through to
    a :class:`SerialExecutor` silently, which turned an explicit request for
    eight workers into a serial run with no warning.  Now any ``jobs`` value
    selects a :class:`ParallelExecutor` with that worker count, ``parallel``
    alone selects one with all cores, and a non-positive ``jobs`` raises
    :class:`~repro.core.errors.ConfigurationError` at the flag layer instead
    of surfacing as a pool error later.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"--jobs must be a positive worker count, got {jobs}")
    if parallel or jobs is not None:
        return ParallelExecutor(max_workers=jobs)
    return SerialExecutor()
