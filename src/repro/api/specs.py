"""Declarative run specifications: :class:`RunSpec`, :class:`SweepSpec`, and the
fluent :class:`Sweep` builder.

Every quantitative claim of the paper reduces to one shape of computation: run
a set of action protocols over a workload of ``(preferences, failure-pattern)``
scenarios and compare corresponding runs.  A :class:`SweepSpec` captures that
shape declaratively — protocols, system size, workload, horizon, and the seed
the workload was generated from — so the *what* of an experiment is separated
from the *how* of its execution (see :mod:`repro.api.executors`).

Specs are frozen: building one never runs anything, and the fluent builder
returns a new :class:`Sweep` at every step, so partially built sweeps can be
shared and forked freely::

    base = Sweep.of(MinProtocol(t=1), OptimalFipProtocol(t=1))
    spec = base.on(random_scenarios(n=7, t=2, count=500)).with_horizon(5).build()
    results = spec.run(ParallelExecutor())
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence, TYPE_CHECKING, Tuple

from ..core.errors import ConfigurationError
from ..core.types import PreferenceVector, validate_preferences
from ..failures.pattern import FailurePattern
from ..obs import trace as _trace
from ..obs.bus import BUS
from ..protocols.base import ActionProtocol
from ..simulation.runner import Scenario
from ..simulation.trace import RunTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from typing import Callable
    from ..store import StoreLike
    from .executors import Executor
    from .results import ResultSet


#: Deprecated single-purpose observer predating the :data:`repro.obs.bus.BUS`
#: event bus.  When installed it is still called with ``(spec, remaining,
#: total)`` on a partial resume — in addition to the ``sweep.resume`` bus
#: event every resume now emits.  New code should subscribe to the bus.
_RESUME_NOTIFIER: "Optional[Callable[[SweepSpec, int, int], None]]" = None


def set_resume_notifier(callback) -> "Optional[Callable[[SweepSpec, int, int], None]]":
    """Install the legacy sweep-resume observer; returns the previous one.

    .. deprecated::
        Subscribe to the ``"sweep.resume"`` event on
        :data:`repro.obs.bus.BUS` instead — the bus carries the same
        ``spec``/``remaining``/``total`` payload without claiming a single
        global slot.  This shim keeps existing callers working: the installed
        callback is invoked exactly as before (and a ``DeprecationWarning``
        is emitted at install time).  Pass ``None`` to uninstall (silently).
    """
    global _RESUME_NOTIFIER
    if callback is not None:
        import warnings
        warnings.warn(
            "set_resume_notifier is deprecated; subscribe to the "
            "'sweep.resume' event on repro.obs.bus.BUS instead",
            DeprecationWarning, stacklevel=2)
    previous = _RESUME_NOTIFIER
    _RESUME_NOTIFIER = callback
    return previous


def _duplicate_names(protocols: Sequence[ActionProtocol]) -> Tuple[str, ...]:
    """The protocol names that occur more than once, in first-seen order."""
    seen: dict = {}
    for protocol in protocols:
        seen[protocol.name] = seen.get(protocol.name, 0) + 1
    return tuple(name for name, count in seen.items() if count > 1)


def _check_unique_names(protocols: Sequence[ActionProtocol], where: str) -> None:
    duplicates = _duplicate_names(protocols)
    if duplicates:
        raise ConfigurationError(
            f"duplicate protocol name(s) {', '.join(repr(name) for name in duplicates)} "
            f"in {where}; protocol names must be unique so results can be keyed by name"
        )


def _validate_preferences(preferences: Sequence[int], n: int) -> Tuple[int, ...]:
    """Like :func:`validate_preferences` but raising :class:`ConfigurationError`."""
    try:
        return validate_preferences(preferences, n)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from exc


def _normalize_scenarios(scenarios: Iterable[Scenario], n: Optional[int]
                         ) -> Tuple[int, Tuple[Scenario, ...]]:
    """Freeze a workload and infer/validate the system size ``n``."""
    frozen: list = []
    for index, (preferences, pattern) in enumerate(scenarios):
        if n is None:
            n = len(preferences)
        prefs = _validate_preferences(preferences, n)
        if pattern.n != n:
            raise ConfigurationError(
                f"scenario {index}: failure pattern is for {pattern.n} agents, expected {n}"
            )
        frozen.append((prefs, pattern))
    if n is None:
        raise ConfigurationError("cannot infer the system size from an empty workload; "
                                 "pass n explicitly")
    return n, tuple(frozen)


@dataclass(frozen=True)
class RunSpec:
    """A declarative description of one simulated run.

    The spec is pure data: constructing it validates the configuration but runs
    nothing.  Call :meth:`run` (optionally with an executor) to obtain the
    :class:`~repro.simulation.trace.RunTrace`.
    """

    protocol: ActionProtocol
    n: int
    preferences: PreferenceVector
    pattern: Optional[FailurePattern] = None
    horizon: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "preferences",
                           _validate_preferences(self.preferences, self.n))
        if self.pattern is not None and self.pattern.n != self.n:
            raise ConfigurationError(
                f"failure pattern is for {self.pattern.n} agents, expected {self.n}"
            )
        self.protocol.validate_for(self.n)

    @property
    def scenario(self) -> Scenario:
        """The run's initial global state as a workload item."""
        pattern = self.pattern if self.pattern is not None else FailurePattern.failure_free(self.n)
        return (self.preferences, pattern)

    def run(self, executor: Optional["Executor"] = None,
            store: "StoreLike" = None) -> RunTrace:
        """Execute the run and return its trace.

        ``store`` (an :class:`~repro.store.ArtifactStore`, a cache-directory
        path, or ``None`` = off) serves the trace from the content-addressed
        artifact store when an identical run was executed before, and persists
        it otherwise.
        """
        from ..store import CachingExecutor, resolve_store
        from .executors import execute_task, resolve_executor
        # Normalize pattern=None to the explicit failure-free pattern (as
        # .scenario and SweepSpec.tasks() do), so the same run shares one
        # cache key whether it was executed directly or inside a sweep.
        preferences, pattern = self.scenario
        task = (self.protocol, self.n, preferences, pattern, self.horizon)
        resolved_store = resolve_store(store)
        if resolved_store is not None:
            return CachingExecutor(resolved_store, executor).run_tasks([task])[0]
        if executor is None:
            return execute_task(task)
        return resolve_executor(executor).run_tasks([task])[0]

    def as_sweep(self) -> "SweepSpec":
        """Lift the single run into a one-protocol, one-scenario sweep."""
        return SweepSpec(protocols=(self.protocol,), n=self.n,
                         scenarios=(self.scenario,), horizon=self.horizon)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative description of a protocol sweep over a workload.

    Executing the spec produces one run per ``(protocol, scenario)`` pair —
    the runs of different protocols on the same scenario are *corresponding
    runs* in the paper's sense (same initial global state), which is what makes
    the resulting :class:`~repro.api.results.ResultSet` comparable protocol by
    protocol.

    Attributes
    ----------
    protocols:
        The action protocols to sweep (names must be unique).
    n:
        The number of agents.
    scenarios:
        The workload: ``(preferences, failure-pattern)`` pairs.
    horizon:
        Optional fixed number of rounds per run (``None`` = run until everyone
        has decided).
    seed:
        Optional provenance marker: the seed the workload was generated from
        (recorded by :meth:`Sweep.on_random`).  Purely informational.
    """

    protocols: Tuple[ActionProtocol, ...]
    n: int
    scenarios: Tuple[Scenario, ...]
    horizon: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        protocols = tuple(self.protocols)
        if not protocols:
            raise ConfigurationError("a sweep needs at least one protocol")
        object.__setattr__(self, "protocols", protocols)
        _check_unique_names(protocols, "SweepSpec")
        n, scenarios = _normalize_scenarios(self.scenarios, self.n)
        object.__setattr__(self, "scenarios", scenarios)
        for protocol in protocols:
            protocol.validate_for(n)

    # ------------------------------------------------------------------ structure

    @property
    def protocol_names(self) -> Tuple[str, ...]:
        return tuple(protocol.name for protocol in self.protocols)

    def __len__(self) -> int:
        """The number of runs the sweep describes."""
        return len(self.protocols) * len(self.scenarios)

    def tasks(self) -> Tuple[tuple, ...]:
        """The sweep's runs as executor tasks, in canonical (protocol-major) order.

        The order is deterministic and independent of the executor, which is
        what guarantees scenario→result ordering in the :class:`ResultSet`.
        """
        return tuple(
            (protocol, self.n, preferences, pattern, self.horizon)
            for protocol in self.protocols
            for preferences, pattern in self.scenarios
        )

    # ------------------------------------------------------------------ execution

    def missing_tasks(self, store: "StoreLike") -> Tuple[tuple, ...]:
        """The tasks whose traces are *not* yet in the store, in canonical order.

        This is the sweep's checkpoint state: :meth:`run` with a store caches
        every completed run individually, so after an interruption the next
        invocation recomputes exactly these tasks and serves the rest from the
        cache.  An empty tuple means a rerun is free.
        """
        from ..store import resolve_store, run_task_key
        resolved = resolve_store(store)
        if resolved is None:
            return self.tasks()
        return tuple(task for task in self.tasks()
                     if not resolved.contains(run_task_key(task)))

    def run(self, executor: Optional["Executor"] = None,
            store: "StoreLike" = None) -> "ResultSet":
        """Execute every run of the sweep and collect a :class:`ResultSet`.

        The result is identical (including ordering) for every executor; the
        backend only changes *where* the runs execute.

        With a ``store``, the whole result set is first looked up under the
        sweep's content key; on a miss, execution goes through a
        :class:`~repro.store.CachingExecutor`, so each completed run is
        checkpointed individually (an interrupted sweep resumes at the first
        missing key) and the assembled result set is persisted at the end.
        """
        from ..store import CachingExecutor, resolve_store, sweep_key
        from .executors import resolve_executor
        from .results import ResultSet
        resolved_store = resolve_store(store)
        spec_key = None
        if resolved_store is not None:
            spec_key = sweep_key(self)
            cached = resolved_store.get(spec_key)
            if cached is not None:
                return cached
            if _RESUME_NOTIFIER is not None or BUS.has_subscribers("sweep.resume"):
                remaining = len(self.missing_tasks(resolved_store))
                if 0 < remaining < len(self):
                    if _RESUME_NOTIFIER is not None:
                        _RESUME_NOTIFIER(self, remaining, len(self))
                    BUS.emit("sweep.resume", spec=self, remaining=remaining,
                             total=len(self))
            runner: "Executor" = CachingExecutor(resolved_store, executor)
        else:
            runner = resolve_executor(executor)
        sweep_span = _trace.NOOP
        if _trace.is_active():
            sweep_span = _trace.span("sweep.run", "build", {
                "protocols": list(self.protocol_names), "n": self.n,
                "horizon": self.horizon, "tasks": len(self.tasks())})
        with sweep_span:
            traces = runner.run_tasks(self.tasks())
        per_protocol = []
        count = len(self.scenarios)
        for index in range(len(self.protocols)):
            per_protocol.append(tuple(traces[index * count:(index + 1) * count]))
        results = ResultSet(
            protocol_names=self.protocol_names,
            scenarios=self.scenarios,
            traces=tuple(per_protocol),
            horizon=self.horizon,
            seed=self.seed,
        )
        if resolved_store is not None and spec_key is not None:
            resolved_store.put(spec_key, results, kind="resultset")
        return results


@dataclass(frozen=True)
class Sweep:
    """Fluent, immutable builder for :class:`SweepSpec`.

    Every method returns a *new* builder; the receiver is never mutated::

        base = Sweep.of(MinProtocol(1), BasicProtocol(1))
        fast = base.on(workload).with_horizon(3)
        slow = base.on(workload)            # unaffected by ``fast``
    """

    _protocols: Tuple[ActionProtocol, ...] = ()
    _scenarios: Optional[Tuple[Scenario, ...]] = None
    _n: Optional[int] = None
    _horizon: Optional[int] = None
    _seed: Optional[int] = None

    @classmethod
    def of(cls, *protocols: ActionProtocol) -> "Sweep":
        """Start a sweep over the given action protocols."""
        return cls(_protocols=tuple(protocols))

    def also(self, *protocols: ActionProtocol) -> "Sweep":
        """Add more protocols to the sweep."""
        return replace(self, _protocols=self._protocols + tuple(protocols))

    def on(self, scenarios: Iterable[Scenario], n: Optional[int] = None) -> "Sweep":
        """Set the workload.  ``n`` is inferred from the scenarios if omitted.

        Any seed recorded by an earlier :meth:`on_random` is cleared — it
        described the replaced workload.  Use :meth:`with_seed` *after*
        ``on()`` to attach provenance to an externally generated workload.
        """
        frozen = tuple(scenarios)
        return replace(self, _scenarios=frozen,
                       _n=n if n is not None else self._n, _seed=None)

    def on_random(self, n: int, t: int, count: int, seed: int = 0,
                  model: object = None, **kwargs) -> "Sweep":
        """Set the workload to a seeded random one, recording the seed.

        Without ``model`` this is :func:`repro.workloads.random_scenarios`
        (``SO(t)`` adversaries, the historical behaviour).  Pass ``model`` — a
        :class:`~repro.failures.models.FailureModel` or a registered name such
        as ``"general-omission"`` — to draw the adversaries from any other
        failure model via :func:`repro.workloads.random_model_scenarios`;
        extra ``kwargs`` go to the model's ``sample``.
        """
        if model is None:
            from ..workloads.scenarios import random_scenarios
            scenarios = tuple(random_scenarios(n, t, count=count, seed=seed, **kwargs))
        else:
            from ..workloads.scenarios import random_model_scenarios
            scenarios = tuple(random_model_scenarios(n, t, count=count, model=model,
                                                     seed=seed, **kwargs))
        return replace(self, _scenarios=scenarios, _n=n, _seed=seed)

    def with_n(self, n: int) -> "Sweep":
        """Set the system size explicitly (otherwise inferred from the workload)."""
        return replace(self, _n=n)

    def with_horizon(self, horizon: Optional[int]) -> "Sweep":
        """Simulate exactly ``horizon`` rounds per run (``None`` = until decided)."""
        return replace(self, _horizon=horizon)

    def with_seed(self, seed: Optional[int]) -> "Sweep":
        """Record the workload's generating seed on the spec (provenance only)."""
        return replace(self, _seed=seed)

    def build(self) -> SweepSpec:
        """Validate and freeze the builder into a :class:`SweepSpec`."""
        if self._scenarios is None:
            raise ConfigurationError("Sweep has no workload; call .on(...) or .on_random(...)")
        n = self._n
        if n is None:
            if not self._scenarios:
                raise ConfigurationError("cannot infer n from an empty workload; "
                                         "use .with_n(...) or .on(scenarios, n=...)")
            n = len(self._scenarios[0][0])
        return SweepSpec(protocols=self._protocols, n=n, scenarios=self._scenarios,
                         horizon=self._horizon, seed=self._seed)

    def run(self, executor: Optional["Executor"] = None,
            store: "StoreLike" = None) -> "ResultSet":
        """Build the spec and execute it in one step (see :meth:`SweepSpec.run`)."""
        return self.build().run(executor, store=store)
