"""Interpreted systems, points, and EBA context descriptors.

Index convention: a point ``(r, m)`` — run index ``r``, time ``m`` — maps to
the dense bit index ``r * (horizon + 1) + m``, run-major and time-minor, in
exactly the order of ``InterpretedSystem.points``.  Every point set the model
checker produces (:class:`PointSet`) is a bitmask over that range; see
``docs/performance.md`` for the full story.
"""

from .contexts import EBAContext, gamma_basic, gamma_fip, gamma_min
from .interpreted import (
    AgentPartition,
    InterpretedSystem,
    build_system,
    build_system_for_model,
)
from .points import Point, PointSet

__all__ = [
    "AgentPartition",
    "EBAContext",
    "InterpretedSystem",
    "Point",
    "PointSet",
    "build_system",
    "build_system_for_model",
    "gamma_basic",
    "gamma_fip",
    "gamma_min",
]
