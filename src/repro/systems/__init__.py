"""Interpreted systems, points, and EBA context descriptors."""

from .contexts import EBAContext, gamma_basic, gamma_fip, gamma_min
from .interpreted import InterpretedSystem, build_system, build_system_for_model
from .points import Point

__all__ = [
    "EBAContext",
    "InterpretedSystem",
    "Point",
    "build_system",
    "build_system_for_model",
    "gamma_basic",
    "gamma_fip",
    "gamma_min",
]
