"""Interpreted systems, points, and EBA context descriptors."""

from .contexts import EBAContext, gamma_basic, gamma_fip, gamma_min
from .interpreted import (
    AgentPartition,
    InterpretedSystem,
    build_system,
    build_system_for_model,
)
from .points import Point, PointSet

__all__ = [
    "AgentPartition",
    "EBAContext",
    "InterpretedSystem",
    "Point",
    "PointSet",
    "build_system",
    "build_system_for_model",
    "gamma_basic",
    "gamma_fip",
    "gamma_min",
]
