"""EBA context descriptors: ``γ_min``, ``γ_basic``, ``γ_fip`` (Sections 6 and 7).

An EBA context ``γ = (E, F, π)`` fixes the information exchange, the failure
model, and the interpretation of the primitive propositions.  In this library
the exchange is supplied by the action protocol (every protocol constructs its
matching exchange) and the interpretation is the standard one hard-wired into
the model checker, so a context descriptor carries the remaining data: the
number of agents, the failure bound, the failure model to enumerate, and the
horizon up to which systems are built.

Contexts exist to make the implementation-checking experiments read like the
paper: ``gamma_min(n, t).build_system(MinProtocol(t))`` is the system
``I_{γ_min,n,t, P_min}`` of Theorem 6.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, TYPE_CHECKING

from ..failures.models import FailureModel, PatternOrbit, SendingOmissionModel, resolve_model
from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from .interpreted import InterpretedSystem, build_system

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.executors import Executor
    from ..store import StoreLike


@dataclass(frozen=True)
class EBAContext:
    """A family member ``γ_{·,n,t}``: failure model plus system-building parameters.

    Attributes
    ----------
    name:
        ``"gamma_min"``, ``"gamma_basic"``, or ``"gamma_fip"`` (informational).
    n, t:
        Number of agents and the failure bound.
    horizon:
        How many rounds to simulate when building systems; defaults to the
        termination bound ``t + 2`` which is enough for every decision of the
        paper's protocols to be visible.
    failure_model:
        The failure model ``F`` whose patterns are enumerated.
    max_faulty_enumerated:
        Optionally cap the number of faulty agents enumerated (the knowledge
        tests are unchanged for the properties we check as long as at least one
        faulty agent is allowed; this keeps ``n = 4`` systems tractable).
    """

    name: str
    n: int
    t: int
    horizon: int
    failure_model: FailureModel
    max_faulty_enumerated: Optional[int] = None

    def patterns(self) -> Iterator[FailurePattern]:
        """Enumerate the failure patterns of the context (up to the horizon)."""
        if self.max_faulty_enumerated is None:
            return self.failure_model.enumerate(self.horizon)
        return self.failure_model.enumerate(self.horizon,
                                            max_faulty=self.max_faulty_enumerated)

    def orbits(self) -> Iterator["PatternOrbit"]:
        """Enumerate the context's patterns as agent-permutation orbits.

        One canonical representative per symmetry class, with its exact orbit
        size (see :meth:`repro.failures.models.FailureModel.enumerate_orbits`).
        """
        return self.failure_model.enumerate_orbits(
            self.horizon, max_faulty=self.max_faulty_enumerated)

    def build_system(self, protocol: ActionProtocol,
                     executor: Optional["Executor"] = None,
                     store: "StoreLike" = None,
                     engine: str = "batched") -> InterpretedSystem:
        """Build ``I_{γ, P}`` for the given action protocol.

        ``executor`` optionally fans the run simulations out over a
        :class:`~repro.api.executors.Executor` backend (run ordering is
        deterministic on every backend).  ``store`` serves the built system
        from the content-addressed artifact cache (see :mod:`repro.store`)
        when an identical ``(γ, P)`` build was done before.  ``engine``
        selects the construction engine — the batched round-major default or
        the per-run oracle (see
        :func:`repro.systems.interpreted.build_system`).
        """
        return build_system(protocol, self.n, self.horizon, self.patterns(),
                            executor=executor, store=store, engine=engine)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name}(n={self.n}, t={self.t}, horizon={self.horizon}, "
                f"model={self.failure_model.name})")


def _default_horizon(t: int, horizon: Optional[int]) -> int:
    return t + 2 if horizon is None else horizon


def _make_context(name: str, n: int, t: int, horizon: Optional[int],
                  max_faulty_enumerated: Optional[int],
                  failure_model: "FailureModel | str | None") -> EBAContext:
    if failure_model is None:
        model = SendingOmissionModel(n=n, t=t)
    else:
        model = resolve_model(failure_model, n, t)
    return EBAContext(
        name=name,
        n=n,
        t=t,
        horizon=_default_horizon(t, horizon),
        failure_model=model,
        max_faulty_enumerated=max_faulty_enumerated,
    )


def gamma_min(n: int, t: int, horizon: Optional[int] = None,
              max_faulty_enumerated: Optional[int] = None,
              failure_model: "FailureModel | str | None" = None) -> EBAContext:
    """The minimal context ``γ_{min,n,t}`` (pair it with :class:`~repro.protocols.MinProtocol`).

    ``failure_model`` swaps the failure regime: the paper's default is
    ``SO(t)``, but any registered model (an instance, or a name such as
    ``"general-omission"`` resolved via
    :func:`repro.failures.models.make_model`) can be enumerated instead.
    """
    return _make_context("gamma_min", n, t, horizon, max_faulty_enumerated, failure_model)


def gamma_basic(n: int, t: int, horizon: Optional[int] = None,
                max_faulty_enumerated: Optional[int] = None,
                failure_model: "FailureModel | str | None" = None) -> EBAContext:
    """The basic context ``γ_{basic,n,t}`` (pair it with :class:`~repro.protocols.BasicProtocol`).

    ``failure_model`` swaps the failure regime exactly as in :func:`gamma_min`.
    """
    return _make_context("gamma_basic", n, t, horizon, max_faulty_enumerated, failure_model)


def gamma_fip(n: int, t: int, horizon: Optional[int] = None,
              max_faulty_enumerated: Optional[int] = None,
              failure_model: "FailureModel | str | None" = None) -> EBAContext:
    """The full-information context ``γ_{fip,n,t}`` (pair it with ``OptimalFipProtocol``).

    ``failure_model`` swaps the failure regime exactly as in :func:`gamma_min`.
    """
    return _make_context("gamma_fip", n, t, horizon, max_faulty_enumerated, failure_model)
