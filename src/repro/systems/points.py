"""Points of an interpreted system.

A *point* is a pair ``(run, time)``.  Runs are identified by their index in the
system's run list, so a point is the hashable pair ``(run_index, time)``.
"""

from __future__ import annotations

from typing import NamedTuple


class Point(NamedTuple):
    """A point ``(r, m)`` of an interpreted system."""

    run_index: int
    time: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"(r{self.run_index}, {self.time})"
