"""Points of an interpreted system, and bitset-backed point sets.

A *point* is a pair ``(run, time)``.  Runs are identified by their index in the
system's run list, so a point is the hashable pair ``(run_index, time)``.

Point sets produced by the model checker are represented *densely*: point
``(r, m)`` maps to bit ``r * stride + m`` (where ``stride = horizon + 1``) of a
single Python ``int``, so the Boolean connectives are machine-word operations
instead of hash-set traversals.  :class:`PointSet` wraps such a bitmask in the
full immutable-set interface, so code written against the previous
``frozenset[Point]`` representation keeps working unchanged.
"""

from __future__ import annotations

from itertools import islice
from typing import AbstractSet, Iterator, NamedTuple, Tuple


class Point(NamedTuple):
    """A point ``(r, m)`` of an interpreted system."""

    run_index: int
    time: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"(r{self.run_index}, {self.time})"


def iter_mask_points(mask: int, stride: int) -> Iterator[Point]:
    """Yield the points of a bitmask in dense-index (system) order."""
    if mask <= 0:
        return
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    for byte_index, byte in enumerate(data):
        if not byte:
            continue
        base = byte_index << 3
        while byte:
            low = byte & -byte
            index = base + low.bit_length() - 1
            yield Point(index // stride, index % stride)
            byte ^= low


class PointSet(AbstractSet[Point]):
    """An immutable set of points backed by a dense bitmask.

    Behaves like a ``frozenset[Point]`` (membership, iteration, the set
    operators and comparisons, hashing) but stores one bit per point of the
    owning system.  Operations between two :class:`PointSet` instances of the
    same shape are single big-integer operations; mixing with ordinary sets
    falls back to ``frozenset`` semantics and returns a ``frozenset``.

    Iteration visits points in dense-index order — run-major, time-minor —
    which is exactly the order of ``InterpretedSystem.points``.
    """

    __slots__ = ("_mask", "_num_runs", "_stride")

    def __init__(self, mask: int, num_runs: int, stride: int) -> None:
        if mask < 0:
            raise ValueError("a PointSet mask must be non-negative")
        self._mask = mask
        self._num_runs = num_runs
        self._stride = stride

    # ------------------------------------------------------------------ accessors

    @property
    def mask(self) -> int:
        """The underlying bitmask (bit ``r * stride + m`` ⇔ point ``(r, m)``)."""
        return self._mask

    @property
    def stride(self) -> int:
        """Bits per run: ``horizon + 1``."""
        return self._stride

    def _same_shape(self, other: "PointSet") -> bool:
        return self._stride == other._stride and self._num_runs == other._num_runs

    # ------------------------------------------------------------------ container protocol

    def __contains__(self, point: object) -> bool:
        try:
            run_index, time = point  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        if not (isinstance(run_index, int) and isinstance(time, int)):
            return False
        if not (0 <= run_index < self._num_runs and 0 <= time < self._stride):
            return False
        return bool(self._mask >> (run_index * self._stride + time) & 1)

    def __iter__(self) -> Iterator[Point]:
        return iter_mask_points(self._mask, self._stride)

    def __len__(self) -> int:
        return self._mask.bit_count()

    def first(self, limit: int) -> Tuple[Point, ...]:
        """The first ``limit`` points in dense-index order."""
        return tuple(islice(self, limit))

    # ------------------------------------------------------------------ set operators

    def _wrap(self, mask: int) -> "PointSet":
        return PointSet(mask, self._num_runs, self._stride)

    def __and__(self, other):
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._wrap(self._mask & other._mask)
        if isinstance(other, AbstractSet):
            return frozenset(self) & frozenset(other)
        return NotImplemented

    __rand__ = __and__

    def __or__(self, other):
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._wrap(self._mask | other._mask)
        if isinstance(other, AbstractSet):
            return frozenset(self) | frozenset(other)
        return NotImplemented

    __ror__ = __or__

    def __xor__(self, other):
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._wrap(self._mask ^ other._mask)
        if isinstance(other, AbstractSet):
            return frozenset(self) ^ frozenset(other)
        return NotImplemented

    __rxor__ = __xor__

    def __sub__(self, other):
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._wrap(self._mask & ~other._mask)
        if isinstance(other, AbstractSet):
            return frozenset(self) - frozenset(other)
        return NotImplemented

    def __rsub__(self, other):
        if isinstance(other, AbstractSet):
            return frozenset(other) - frozenset(self)
        return NotImplemented

    def isdisjoint(self, other) -> bool:
        if isinstance(other, PointSet) and self._same_shape(other):
            return not self._mask & other._mask
        return super().isdisjoint(other)

    # ------------------------------------------------------------------ comparisons

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._mask == other._mask
        if isinstance(other, AbstractSet):
            return len(other) == len(self) and all(point in self for point in other)
        return NotImplemented

    def __le__(self, other) -> bool:
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._mask & ~other._mask == 0
        if isinstance(other, AbstractSet):
            return all(point in other for point in self)
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._mask != other._mask and self._mask & ~other._mask == 0
        if isinstance(other, AbstractSet):
            return len(self) < len(other) and self.__le__(other)
        return NotImplemented

    def __ge__(self, other) -> bool:
        if isinstance(other, PointSet) and self._same_shape(other):
            return other._mask & ~self._mask == 0
        if isinstance(other, AbstractSet):
            return all(point in self for point in other)
        return NotImplemented

    def __gt__(self, other) -> bool:
        if isinstance(other, PointSet) and self._same_shape(other):
            return self._mask != other._mask and other._mask & ~self._mask == 0
        if isinstance(other, AbstractSet):
            return len(self) > len(other) and self.__ge__(other)
        return NotImplemented

    def __hash__(self) -> int:
        # frozenset-compatible: equal sets hash equal across representations.
        return self._hash()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(repr(point) for point in self.first(6))
        suffix = ", ..." if len(self) > 6 else ""
        return f"PointSet({{{preview}{suffix}}}, size={len(self)})"
