"""Deterministic fault injection for the crash-safety layer.

Three families of faults, each matching one seam of the robustness design:

* **Store faults** — :class:`FaultyBackend` wraps any
  :class:`~repro.store.backends.StoreBackend` and makes chosen operations
  raise :class:`InjectedFault` (an :class:`OSError`, so the service's retry
  classifier treats it as transient), serve corrupted payloads, or stall —
  on a programmable :class:`FaultPlan` schedule keyed by call count.
* **Execution faults** — protocol wrappers that blow up *inside* the
  simulation: :class:`CrashOnceProtocol` kills its process outright (the
  ``BrokenProcessPool`` injector), :class:`FailOnceProtocol` raises a
  retryable error, :class:`SlowProtocol` sleeps per action (the job-timeout
  injector).  All coordinate through **sentinel files**, the only mutable
  state that survives pickling into a pool worker and is shared across
  processes — so "once" means once per sentinel path, not once per copy.
* **Process faults** — :class:`ServerHarness` runs a real ``repro-eba
  serve`` subprocess and can kill it (``SIGKILL`` by default: a crash, not
  a shutdown) and start a successor on the same journal, which is exactly
  the recovery scenario the journal exists for.

Faults fire on exact call counts and sentinel existence, never randomness:
a chaos test that fails once fails every time.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..core.types import Action
from ..exchange.base import LocalState
from ..protocols.pmin import MinProtocol
from ..store.backends import StoreBackend, StoreEntry

#: Exit code a :class:`CrashOnceProtocol` worker process dies with; chosen to
#: be visibly not-a-signal and not-a-Python-traceback in pool diagnostics.
CRASH_EXIT_CODE = 17


class InjectedFault(OSError):
    """The error a :class:`FaultyBackend` raises.

    Subclasses :class:`OSError` deliberately: that is the realistic failure
    class for storage IO, and it is what the service's
    :data:`~repro.service.workers.RETRYABLE_EXCEPTIONS` classifies as worth
    a retry — so injected store faults exercise the same paths real disk
    trouble would.
    """


# ------------------------------------------------------------------ store faults

_BACKEND_OPS = ("get", "put", "delete", "contains", "peek", "entries")


@dataclass
class FaultPlan:
    """A deterministic schedule of backend misbehaviour.

    Parameters
    ----------
    error_ops:
        Operation names (of ``get``/``put``/``delete``/``contains``/``peek``/
        ``entries``) that raise :class:`InjectedFault`.
    fail_after:
        How many calls to each affected operation succeed before failures
        start (0 = fail from the first call).
    fail_count:
        How many calls fail before the operation recovers; ``None`` = fail
        forever.  Counted per operation.
    corrupt_gets:
        How many ``get`` calls (after ``fail_after``) return a corrupted
        payload instead of the stored bytes.  Corruption and ``error_ops``
        containing ``"get"`` are mutually exclusive faults — pick one.
    latency:
        Seconds to sleep before every wrapped call (fault-free ones too);
        models a slow disk or network mount.
    """

    error_ops: Tuple[str, ...] = ()
    fail_after: int = 0
    fail_count: Optional[int] = None
    corrupt_gets: int = 0
    latency: float = 0.0

    def __post_init__(self) -> None:
        unknown = [op for op in self.error_ops if op not in _BACKEND_OPS]
        if unknown:
            raise ValueError(f"unknown backend operation(s) {unknown}; "
                             f"one of {_BACKEND_OPS}")
        if self.corrupt_gets and "get" in self.error_ops:
            raise ValueError("corrupt_gets and an erroring 'get' are exclusive")

    def should_fail(self, op: str, call_index: int) -> bool:
        """Whether the ``call_index``-th (0-based) call to ``op`` errors."""
        if op not in self.error_ops or call_index < self.fail_after:
            return False
        if self.fail_count is None:
            return True
        return call_index < self.fail_after + self.fail_count

    def should_corrupt(self, call_index: int) -> bool:
        if not self.corrupt_gets or call_index < self.fail_after:
            return False
        return call_index < self.fail_after + self.corrupt_gets


class FaultyBackend:
    """A :class:`StoreBackend` wrapper executing a :class:`FaultPlan`.

    Implements the full six-method backend protocol, delegating to ``inner``
    except where the plan says otherwise.  Thread-safe: call counting is
    locked, so concurrent service workers see one global schedule.  The
    per-operation tallies (:attr:`calls`, :attr:`faults`) let tests assert
    not just outcomes but *which* seams were exercised.
    """

    def __init__(self, inner: StoreBackend, plan: Optional[FaultPlan] = None) -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.calls: Dict[str, int] = {op: 0 for op in _BACKEND_OPS}
        self.faults: Dict[str, int] = {op: 0 for op in _BACKEND_OPS}
        self._lock = threading.Lock()

    def _enter(self, op: str) -> int:
        """Count the call; raise if the plan says this one fails."""
        if self.plan.latency:
            time.sleep(self.plan.latency)
        with self._lock:
            index = self.calls[op]
            self.calls[op] += 1
            if self.plan.should_fail(op, index):
                self.faults[op] += 1
                raise InjectedFault(f"injected {op} fault (call #{index})")
            return index

    # -- the backend protocol ---------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        index = self._enter("get")
        payload = self.inner.get(key)
        if payload is not None and self.plan.should_corrupt(index):
            with self._lock:
                self.faults["get"] += 1
            # Valid length, garbage content: the decoder must reject it.
            return b"\x00CORRUPT\x00" + payload[9:]
        return payload

    def put(self, key: str, payload: bytes) -> None:
        self._enter("put")
        self.inner.put(key, payload)

    def delete(self, key: str) -> bool:
        self._enter("delete")
        return self.inner.delete(key)

    def contains(self, key: str) -> bool:
        self._enter("contains")
        return self.inner.contains(key)

    def peek(self, key: str, size: int = 256) -> Optional[bytes]:
        self._enter("peek")
        return self.inner.peek(key, size)

    def entries(self) -> Iterator[StoreEntry]:
        self._enter("entries")
        return self.inner.entries()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyBackend({self.inner!r}, plan={self.plan!r})"


# ------------------------------------------------------------------ execution faults

class CrashOnceProtocol(MinProtocol):
    """A ``P_min`` whose first executing process dies hard, mid-simulation.

    The first :meth:`act` call to win the sentinel-file race calls
    :func:`os._exit` — no exception, no cleanup, the worker process is simply
    gone, which is what breaks a :class:`concurrent.futures.ProcessPoolExecutor`
    (``BrokenProcessPool``).  Every later process (including the rebuilt
    pool's workers, and the in-process serial path) behaves exactly like
    ``P_min``, so the retried computation's results are the honest ones.

    Picklable by construction: its state is ``t`` plus the sentinel *path*.
    ``O_CREAT | O_EXCL`` makes the race atomic across processes.
    """

    name = "P_min"  # deliberately: results must be byte-identical to P_min's

    def __init__(self, t: int, sentinel: "str | Path") -> None:
        super().__init__(t)
        self.sentinel = str(sentinel)

    def act(self, state: LocalState) -> Action:
        try:
            fd = os.open(self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(CRASH_EXIT_CODE)
        return super().act(state)


class FailOnceProtocol(MinProtocol):
    """A ``P_min`` whose first execution raises a retryable :class:`InjectedFault`.

    Same sentinel mechanics as :class:`CrashOnceProtocol`, but the fault is an
    ordinary exception: the job fails cleanly, the service's retry classifier
    sees an :class:`OSError`, and the retried attempt runs the real protocol.
    """

    name = "P_min"

    def __init__(self, t: int, sentinel: "str | Path") -> None:
        super().__init__(t)
        self.sentinel = str(sentinel)

    def act(self, state: LocalState) -> Action:
        try:
            fd = os.open(self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            raise InjectedFault(f"injected first-attempt failure ({self.sentinel})")
        return super().act(state)


class SlowProtocol(MinProtocol):
    """A ``P_min`` that sleeps before every action — the job-timeout injector.

    ``delay`` is per :meth:`act` call, so total wall time scales with the
    workload; pick a delay that comfortably exceeds the timeout under test
    divided by the expected number of action evaluations.
    """

    name = "P_min"

    def __init__(self, t: int, delay: float = 0.05) -> None:
        super().__init__(t)
        self.delay = delay

    def act(self, state: LocalState) -> Action:
        time.sleep(self.delay)
        return super().act(state)


# ------------------------------------------------------------------ process faults

class ServerHarness:
    """Drive real ``repro-eba serve`` subprocesses: start, kill, restart.

    The unit of the crash-recovery acceptance tests: a server started through
    the actual CLI (flags and all), killed with a real signal (``SIGKILL`` by
    default — a crash leaves no chance to flush anything not already
    journaled), and restarted on the same arguments so the journal replay
    path runs exactly as it would in production.

    Use as a context manager; :meth:`start` returns the base URL parsed from
    the server banner.  ``extra_args`` is where ``--journal``/``--cache-dir``/
    ``--max-queue`` etc. go.
    """

    def __init__(self, root: "str | Path", extra_args: Sequence[str] = (),
                 workers: int = 1) -> None:
        self.root = Path(root)
        self.extra_args = list(extra_args)
        self.workers = workers
        self.process: Optional[subprocess.Popen] = None
        self.url: Optional[str] = None

    def start(self, timeout: float = 30.0) -> str:
        """Start a server on a free port; return its base URL."""
        if self.process is not None and self.process.poll() is None:
            raise RuntimeError("server already running; kill() it first")
        env = dict(os.environ)
        src = str(self.root / "src")
        env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                                   if env.get("PYTHONPATH") else "")
        self.process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve", "--port", "0",
             "--workers", str(self.workers), *self.extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=self.root)
        banner = self._read_banner(timeout)
        # "repro-eba job server on http://127.0.0.1:<port> (1 worker(s))"
        try:
            self.url = banner.split(" on ", 1)[1].split()[0]
        except IndexError:
            self.kill()
            raise RuntimeError(f"could not parse server banner: {banner!r}")
        return self.url

    def _read_banner(self, timeout: float) -> str:
        """First stdout line, with a watchdog so a dead server cannot hang us."""
        assert self.process is not None and self.process.stdout is not None
        box: list = []
        reader = threading.Thread(target=lambda: box.append(
            self.process.stdout.readline()), daemon=True)
        reader.start()
        reader.join(timeout=timeout)
        if not box or not box[0]:
            self.kill()
            raise RuntimeError(f"server produced no banner within {timeout}s")
        return box[0].strip()

    def kill(self, sig: int = signal.SIGKILL, timeout: float = 10.0) -> Optional[int]:
        """Deliver ``sig`` (default: the unmaskable crash) and reap the process."""
        if self.process is None:
            return None
        if self.process.poll() is None:
            self.process.send_signal(sig)
        try:
            code = self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            self.process.kill()
            code = self.process.wait(timeout=timeout)
        if self.process.stdout is not None:
            self.process.stdout.close()
        self.process = None
        self.url = None
        return code

    def restart(self, timeout: float = 30.0) -> str:
        """Kill (if needed) and start a successor with identical arguments."""
        self.kill()
        return self.start(timeout=timeout)

    def __enter__(self) -> "ServerHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.kill()


__all__ = [
    "CRASH_EXIT_CODE",
    "CrashOnceProtocol",
    "FailOnceProtocol",
    "FaultPlan",
    "FaultyBackend",
    "InjectedFault",
    "ServerHarness",
    "SlowProtocol",
]
