"""``repro.testing`` — reusable fault-injection tooling.

A small, import-light package (nothing in the library imports it; tests and
the chaos harness do) providing the controlled failure modes the robustness
layer is tested against:

* :class:`~repro.testing.faults.FaultyBackend` — a
  :class:`~repro.store.backends.StoreBackend` wrapper with a programmable
  :class:`~repro.testing.faults.FaultPlan` of IO errors, payload corruption,
  and latency;
* crashing / flaky / hanging protocol wrappers
  (:class:`~repro.testing.faults.CrashOnceProtocol`,
  :class:`~repro.testing.faults.FailOnceProtocol`,
  :class:`~repro.testing.faults.SlowProtocol`) that are picklable, so they
  inject faults *inside* process-pool workers and service worker threads;
* :class:`~repro.testing.faults.ServerHarness` — a kill-and-restart driver
  for ``repro-eba serve`` subprocesses, used by the crash-recovery
  acceptance tests and the CI ``chaos-smoke`` job.

Everything here is deterministic on purpose: faults fire on exact call
counts or sentinel files, never on randomness, so a chaos test that fails
once fails every time.
"""

from .faults import (
    CrashOnceProtocol,
    FailOnceProtocol,
    FaultPlan,
    FaultyBackend,
    InjectedFault,
    ServerHarness,
    SlowProtocol,
)

__all__ = [
    "CrashOnceProtocol",
    "FailOnceProtocol",
    "FaultPlan",
    "FaultyBackend",
    "InjectedFault",
    "ServerHarness",
    "SlowProtocol",
]
