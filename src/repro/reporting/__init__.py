"""Plain-text reporting helpers."""

from .tables import format_comparison, format_histogram, format_table
from .trace_view import render_comm_graph, render_decision_timeline, render_run

__all__ = [
    "format_comparison",
    "format_histogram",
    "format_table",
    "render_comm_graph",
    "render_decision_timeline",
    "render_run",
]
