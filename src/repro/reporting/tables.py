"""Plain-text table rendering for experiment reports.

The experiment drivers print their results as simple aligned tables (the same
rows the paper's Section 8 states in prose).  No third-party dependency is
used; the renderer handles lists of dictionaries with scalar values.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render ``rows`` (a list of dicts) as an aligned plain-text table.

    Parameters
    ----------
    rows:
        The table body.  Missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row (in insertion order),
        extended by any keys appearing only in later rows.
    title:
        Optional title printed above the table.
    """
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)

    def render(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [render(row.get(column)) for column in columns]
        rendered_rows.append(rendered)
        for column, cell in zip(columns, rendered):
            widths[column] = max(widths[column], len(cell))

    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(cell.ljust(widths[column]) for column, cell in zip(columns, rendered))
        for rendered in rendered_rows
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(header)
    lines.append(separator)
    lines.extend(body)
    return "\n".join(lines)


def format_comparison(label: str, paper_value: object, measured_value: object,
                      matches: bool) -> str:
    """One line of a paper-vs-measured comparison report."""
    status = "OK" if matches else "MISMATCH"
    return f"[{status}] {label}: paper={paper_value}, measured={measured_value}"


def format_histogram(histogram: Dict[int, int], label: str = "round") -> str:
    """Render a small integer histogram as aligned ``key: count`` lines with bars."""
    if not histogram:
        return "(empty)"
    max_count = max(histogram.values())
    lines = []
    for key in sorted(histogram):
        count = histogram[key]
        bar = "#" * max(1, round(40 * count / max_count)) if max_count else ""
        lines.append(f"{label} {key:>3}: {count:>6} {bar}")
    return "\n".join(lines)
