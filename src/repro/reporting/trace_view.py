"""Human-readable rendering of runs and communication graphs.

These helpers turn a :class:`~repro.simulation.trace.RunTrace` (or a
:class:`~repro.exchange.commgraph.CommGraph`) into plain text for debugging,
teaching, and the CLI:

* :func:`render_run` — a round-by-round account of who decided what, who sent
  what, and which messages the adversary dropped;
* :func:`render_decision_timeline` — one line per agent with its decision round
  marked on a time axis;
* :func:`render_comm_graph` — the delivered/blocked/unknown matrix of a
  communication graph, round by round.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.types import AgentId
from ..exchange.commgraph import CommGraph
from ..exchange.messages import DecideNotification, GraphMessage, InitOneHeartbeat
from ..simulation.trace import RunTrace


def _message_symbol(message) -> str:
    """A compact symbol for a message in the round-by-round view."""
    if message is None:
        return "·"
    if isinstance(message, DecideNotification):
        return str(message.value)
    if isinstance(message, InitOneHeartbeat):
        return "h"
    if isinstance(message, GraphMessage):
        return "G"
    return "?"


def render_run(trace: RunTrace, max_rounds: Optional[int] = None) -> str:
    """Render a run as a round-by-round report.

    Each round shows the actions performed and, for every sender, the row of
    per-receiver message symbols after the failure pattern was applied
    (``·`` = nothing received, ``0``/``1`` = decide notification, ``h`` =
    ``(init, 1)`` heartbeat, ``G`` = communication graph, ``x`` = dropped by the
    adversary).
    """
    lines: List[str] = []
    lines.append(f"run of {trace.protocol_name} over {trace.exchange_name}, n={trace.n}")
    lines.append(f"preferences : {list(trace.preferences)}")
    lines.append(f"adversary   : {trace.pattern.describe()}")
    lines.append("")
    rounds = trace.rounds if max_rounds is None else trace.rounds[:max_rounds]
    for record in rounds:
        decisions = [
            f"agent {agent} decides {action.value}"
            for agent, action in enumerate(record.actions)
            if action.is_decision
        ]
        lines.append(f"round {record.round_number}:"
                     + (" " + "; ".join(decisions) if decisions else " (no decisions)"))
        for sender in range(trace.n):
            row = []
            for receiver in range(trace.n):
                sent = record.sent[sender][receiver]
                delivered = record.delivered[receiver][sender]
                if sent is not None and delivered is None:
                    row.append("x")
                else:
                    row.append(_message_symbol(delivered))
            lines.append(f"    {sender} -> [{' '.join(row)}]")
    lines.append("")
    lines.append(render_decision_timeline(trace))
    return "\n".join(lines)


def render_decision_timeline(trace: RunTrace) -> str:
    """One line per agent showing when (and what) it decided.

    Example::

        agent 0 |D0 .  .  .  | decided 0 in round 1
        agent 1 |.  D0 .  .  | decided 0 in round 2
    """
    lines: List[str] = []
    horizon = trace.horizon
    for agent in range(trace.n):
        round_number = trace.decision_round(agent)
        value = trace.decision_value(agent)
        cells = []
        for r in range(1, horizon + 1):
            if round_number == r:
                cells.append(f"D{value}")
            else:
                cells.append(". ")
        marker = "*" if agent in trace.pattern.faulty else " "
        if round_number is None:
            note = "never decides"
        else:
            note = f"decided {value} in round {round_number}"
        lines.append(f"agent {agent}{marker} |{' '.join(cells)}| {note}")
    if trace.pattern.faulty:
        lines.append("(* = faulty agent)")
    return "\n".join(lines)


def render_comm_graph(graph: CommGraph, owner: Optional[AgentId] = None) -> str:
    """Render a communication graph as per-round delivery matrices.

    Each round is a matrix with senders as rows and receivers as columns:
    ``1`` = known delivered, ``0`` = known not delivered, ``?`` = unknown.
    Initial preferences known to the graph's owner are listed first.
    """
    lines: List[str] = []
    title = f"communication graph at time {graph.time}"
    if owner is not None:
        title += f" (agent {owner})"
    lines.append(title)
    prefs = graph.known_preferences()
    rendered_prefs = ", ".join(
        f"{agent}:{prefs[agent]}" if agent in prefs else f"{agent}:?"
        for agent in range(graph.n)
    )
    lines.append(f"known initial preferences: {rendered_prefs}")
    for round_index in range(graph.time):
        lines.append(f"round {round_index + 1} deliveries (rows = senders):")
        header = "      " + " ".join(f"{receiver}" for receiver in range(graph.n))
        lines.append(header)
        for sender in range(graph.n):
            cells = []
            for receiver in range(graph.n):
                label = graph.label(round_index, sender, receiver)
                if label is True:
                    cells.append("1")
                elif label is False:
                    cells.append("0")
                else:
                    cells.append("?")
            lines.append(f"  {sender} | " + " ".join(cells))
    return "\n".join(lines)
