"""Knowledge-based programs ``P0`` and ``P1`` and implementation checking."""

from .implementation import (
    ImplementationReport,
    Mismatch,
    TableProtocol,
    check_implements,
    derive_implementation,
    programs_equivalent,
)
from .programs import GuardedClause, KnowledgeBasedProgram, LocalProgram, make_p0, make_p1

__all__ = [
    "GuardedClause",
    "ImplementationReport",
    "KnowledgeBasedProgram",
    "LocalProgram",
    "Mismatch",
    "TableProtocol",
    "check_implements",
    "derive_implementation",
    "make_p0",
    "make_p1",
    "programs_equivalent",
]
