"""Knowledge-based programs (Section 4) and the paper's programs ``P0`` and ``P1``.

A knowledge-based program for agent ``i`` is an ``if/elif/.../else`` cascade
whose guards are Boolean combinations of formulas of the form ``K_i ψ`` (plus
tests on ``i``'s own local state, which are trivially knowledge of the agent).
Its meaning is relative to an interpreted system: the action prescribed at a
local state is the first clause whose guard holds at (any point with) that
local state.

``P0`` (Section 6)::

    if decided_i != ⊥                                 then noop
    else if init_i = 0 ∨ K_i(⋁_j jdecided_j = 0)      then decide_i(0)
    else if K_i(⋀_j ¬(deciding_j = 0))                then decide_i(1)
    else noop

``P1`` (Section 7) adds the two common-knowledge clauses before the ``P0``
clauses::

    else if K_i(C_N(t-faulty ∧ no-decided_N(1) ∧ ∃0)) then decide_i(0)
    else if K_i(C_N(t-faulty ∧ no-decided_N(0) ∧ ∃1)) then decide_i(1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.types import Action, DECIDE_0, DECIDE_1, NOOP
from ..logic.formula import (
    And,
    Formula,
    InitEquals,
    Knows,
    Or,
    common_knowledge_t_faulty,
    decided,
    exists_value,
    no_nonfaulty_decided,
    nobody_deciding,
    someone_just_decided,
)
from ..logic.semantics import ModelChecker
from ..systems.interpreted import InterpretedSystem
from ..systems.points import Point


@dataclass(frozen=True)
class GuardedClause:
    """One ``if guard then action`` clause of a local knowledge-based program."""

    guard: Formula
    action: Action

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"if {self.guard!r} then {self.action!r}"


@dataclass(frozen=True)
class LocalProgram:
    """The local knowledge-based program of one agent: ordered clauses plus a default."""

    agent: int
    clauses: Tuple[GuardedClause, ...]
    default: Action = NOOP


class KnowledgeBasedProgram:
    """A joint knowledge-based program ``P = (P_1, ..., P_n)``."""

    def __init__(self, name: str, locals_: Sequence[LocalProgram]) -> None:
        self.name = name
        self._locals: Dict[int, LocalProgram] = {program.agent: program for program in locals_}

    @property
    def n(self) -> int:
        return len(self._locals)

    def local(self, agent: int) -> LocalProgram:
        """The local program of ``agent``."""
        return self._locals[agent]

    def prescribed_action(self, checker: ModelChecker, agent: int, point: Point) -> Action:
        """The action ``P^I_i`` prescribes at the given point of ``checker``'s system.

        Because every guard is a Boolean combination of ``K_i`` formulas and
        ``i``-local tests, the result depends only on ``i``'s local state at the
        point, so evaluating at any representative point is sound.
        """
        program = self.local(agent)
        for clause in program.clauses:
            if checker.holds(clause.guard, point):
                return clause.action
        return program.default

    def prescribed_actions(self, system: InterpretedSystem,
                           max_time: Optional[int] = None) -> Dict[Tuple[Point, int], Action]:
        """The prescribed action at every point (up to ``max_time``) for every agent."""
        checker = ModelChecker(system)
        limit = system.horizon if max_time is None else max_time
        result: Dict[Tuple[Point, int], Action] = {}
        for point in system.points:
            if point.time > limit:
                continue
            for agent in range(system.n):
                result[(point, agent)] = self.prescribed_action(checker, agent, point)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KnowledgeBasedProgram({self.name!r}, n={self.n})"


# --------------------------------------------------------------------------- the paper's programs


def make_p0(n: int) -> KnowledgeBasedProgram:
    """The knowledge-based program ``P0`` for ``n`` agents (Section 6)."""
    locals_: List[LocalProgram] = []
    for agent in range(n):
        clauses = (
            GuardedClause(decided(agent), NOOP),
            GuardedClause(
                Or((InitEquals(agent, 0), Knows(agent, someone_just_decided(n, 0)))),
                DECIDE_0,
            ),
            GuardedClause(Knows(agent, nobody_deciding(n, 0)), DECIDE_1),
        )
        locals_.append(LocalProgram(agent=agent, clauses=clauses, default=NOOP))
    return KnowledgeBasedProgram("P0", locals_)


def make_p1(n: int, t: int) -> KnowledgeBasedProgram:
    """The knowledge-based program ``P1`` for ``n`` agents and failure bound ``t`` (Section 7)."""
    ck_decide_0 = common_knowledge_t_faulty(
        n, t, And((no_nonfaulty_decided(n, 1), exists_value(n, 0))))
    ck_decide_1 = common_knowledge_t_faulty(
        n, t, And((no_nonfaulty_decided(n, 0), exists_value(n, 1))))
    locals_: List[LocalProgram] = []
    for agent in range(n):
        clauses = (
            GuardedClause(decided(agent), NOOP),
            GuardedClause(Knows(agent, ck_decide_0), DECIDE_0),
            GuardedClause(Knows(agent, ck_decide_1), DECIDE_1),
            GuardedClause(
                Or((InitEquals(agent, 0), Knows(agent, someone_just_decided(n, 0)))),
                DECIDE_0,
            ),
            GuardedClause(Knows(agent, nobody_deciding(n, 0)), DECIDE_1),
        )
        locals_.append(LocalProgram(agent=agent, clauses=clauses, default=NOOP))
    return KnowledgeBasedProgram("P1", locals_)
