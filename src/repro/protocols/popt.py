"""``P_opt``: the polynomial-time optimal full-information protocol (Section 7, Appendix A.2.7).

``P_opt`` implements the knowledge-based program ``P1``:

.. code-block:: text

    if decided_i != ⊥ then noop
    else if common0  then decide_i(0)     # K_i C_N(t-faulty ∧ no-decided_N(1) ∧ ∃0)
    else if common1  then decide_i(1)     # K_i C_N(t-faulty ∧ no-decided_N(0) ∧ ∃1)
    else if cond0    then decide_i(0)     # init_i = 0 ∨ K_i(∃j just decided 0)
    else if cond1    then decide_i(1)     # K_i(no agent is deciding 0)
    else noop

All four tests are computed from the agent's communication graph alone:

* ``common_v`` uses the characterization of Proposition A.2 / Lemma A.20 —
  ``C_N(t-faulty)`` holds at time ``m`` iff the agents that might still be
  nonfaulty had *distributed* knowledge of ``t`` faulty agents at time
  ``m - 1`` — together with the ``no-decided`` and ``∃v`` side conditions of
  Definition A.19.
* ``cond0`` checks for a directly received decide-0 notification, where "what
  agent ``j`` decided" is recomputed from ``j``'s reconstructed state (full
  information makes every heard-from agent's actions recomputable).
* ``cond1`` uses the counting characterization of Proposition A.7: the agent
  knows that nobody can be deciding 0 iff for some horizon ``m''`` there are
  not enough "stale" agents left to hide a 0-chain reaching time ``m''``.

Note on the paper's Definition A.19 of ``cond1``: the text says *"if for all
m'' ... there exist at least m'' − m' agents ... then cond1 = true"*, but that
is the condition of Proposition A.7 for ``¬K_i(no agent is deciding 0)``, and
Theorem A.21 uses ``cond1`` as the *positive* knowledge test, so the polarity
in Definition A.19 is a typo.  We implement the polarity that is consistent
with Proposition A.7 and Theorem A.21 (and with the knowledge-based program).

The decisions of other agents are reconstructed by a :class:`DecisionOracle`
that re-runs these very rules on restricted communication graphs; the oracle
memoizes per reconstructed point, which keeps the whole computation polynomial
in ``n`` and the number of rounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import ProtocolError
from ..core.types import Action, AgentId, DECIDE_0, DECIDE_1, NOOP, Value
from ..exchange.commgraph import CommGraph
from ..exchange.fip import FipLocalState, FullInformationExchange
from .base import ActionProtocol


class _Unknown:
    """Sentinel for "the graph does not determine this agent's action"."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNKNOWN"


#: Returned by decision lookups for points outside the relevant hears-from cone.
UNKNOWN = _Unknown()

#: A decision lookup: ``(agent, time) -> 0 | 1 | None | UNKNOWN`` where the value
#: is what the agent decides in round ``time + 1`` (``None`` = known not to decide).
DecisionLookup = Callable[[AgentId, int], object]


# --------------------------------------------------------------------------- rule tests


def common_condition(graph: CommGraph, agent: AgentId, time: int, t: int,
                     value: Value, decisions: DecisionLookup) -> bool:
    """The test ``common_value``: is ``C_N(t-faulty ∧ no-decided_N(1-value) ∧ ∃value)`` known?

    Parameters
    ----------
    graph:
        The agent's communication graph ``G_{agent, time}``.
    agent, time:
        The point at which the test is evaluated.
    t:
        The failure bound of the context.
    value:
        The value the condition would decide (0 for ``common0``, 1 for ``common1``).
    decisions:
        Lookup for reconstructed decisions of other agents.
    """
    if time < 1:
        return False
    known_faulty = graph.known_faulty(agent, time)
    if len(known_faulty) != t:
        return False
    candidates = frozenset(range(graph.n)) - known_faulty
    distributed = graph.distributed_faulty(candidates, time - 1)
    if len(distributed) != t:
        return False
    # no-decided_N(1 - value): no presumed-nonfaulty agent decided 1-value so far.
    for j in sorted(candidates):
        for m_prime in range(time):
            decision = decisions(j, m_prime)
            if decision is UNKNOWN or decision == 1 - value:
                return False
    # ∃ value: some agent outside the distributed-knowledge faulty set knew about
    # an initial preference of ``value`` at time - 1.
    witnesses = frozenset(range(graph.n)) - distributed
    for j in sorted(witnesses):
        if value in graph.known_values(j, time - 1):
            return True
    return False


def chain_condition(graph: CommGraph, agent: AgentId, time: int, init: Value,
                    decisions: DecisionLookup) -> bool:
    """The test ``cond0``: ``init_i = 0``, or a decide-0 notification arrived this round."""
    if time == 0:
        return init == 0
    for j in range(graph.n):
        if graph.label(time - 1, j, agent) is True and decisions(j, time - 1) == 0:
            return True
    return False


def no_hidden_chain_condition(graph: CommGraph, agent: AgentId, time: int,
                              decisions: DecisionLookup) -> bool:
    """The test ``cond1``: does the agent *know* that no agent can be deciding 0?

    Implements the characterization of Proposition A.7: the agent does **not**
    know this iff, for every horizon ``m''`` with ``latest0 < m'' <= time``,
    there are at least ``m'' - latest0`` agents whose most recent state known to
    the agent is older than ``m''`` and who were not known to have decided —
    enough stale agents to hide an extension of the longest known 0-chain up to
    time ``m''``.
    """
    if time == 0:
        return False
    frontier = graph.heard_frontier(agent, time)
    latest0 = -1
    stale_candidates: List[AgentId] = []
    for j in range(graph.n):
        undecided = True
        for m_prime in range(frontier[j] + 1):
            decision = decisions(j, m_prime)
            if decision == 0:
                latest0 = max(latest0, m_prime)
            if decision in (0, 1):
                undecided = False
        if undecided:
            stale_candidates.append(j)
    for horizon in range(latest0 + 1, time + 1):
        available = sum(1 for j in stale_candidates if frontier[j] < horizon)
        if available < horizon - latest0:
            return True
    return False


# --------------------------------------------------------------------------- decision oracle


class DecisionOracle:
    """Reconstructs the decisions of every agent in a communication graph's cone.

    Full information makes this possible: whenever ``(j, m')`` hears-into the
    anchor point, the anchor's graph contains ``j``'s entire local state at
    time ``m'``, so the anchor can re-run the protocol on it.  The oracle
    memoizes one decision per reconstructed point, so the overall cost per
    ``act`` call is polynomial in ``n`` and the time.
    """

    def __init__(self, graph: CommGraph, anchor: AgentId, anchor_time: int, t: int,
                 use_common_knowledge: bool = True) -> None:
        self.graph = graph
        self.anchor = anchor
        self.anchor_time = anchor_time
        self.t = t
        self.use_common_knowledge = use_common_knowledge
        self.frontier = graph.heard_frontier(anchor, anchor_time)
        self._decisions: Dict[Tuple[AgentId, int], Optional[Value]] = {}

    # -- public lookups ---------------------------------------------------------------

    def known_decision(self, agent: AgentId, time: int) -> object:
        """``d(agent, time, G)``: the decision taken in round ``time + 1``, if determined.

        Returns 0 or 1 for a known decision, ``None`` if the agent is known not
        to decide in that round, and :data:`UNKNOWN` if the point is outside the
        anchor's hears-from cone.
        """
        if time < 0:
            return None
        if agent == self.anchor and time >= self.anchor_time:
            return UNKNOWN
        if time > self.frontier[agent]:
            return UNKNOWN
        key = (agent, time)
        if key not in self._decisions:
            self._compute_trajectory(agent, time)
        return self._decisions[key]

    def anchor_action(self, init: Value, already_decided: bool) -> Action:
        """The action the anchor itself should take at its current point."""
        if already_decided:
            return NOOP
        return self._evaluate_rules(self.graph, self.anchor, self.anchor_time, init)

    # -- internals ----------------------------------------------------------------------

    def _compute_trajectory(self, agent: AgentId, upto: int) -> None:
        """Fill the memo with ``agent``'s decisions at all times ``0 .. upto``."""
        init = self.graph.preference(agent)
        decided: Optional[Value] = None
        for tau in range(upto + 1):
            key = (agent, tau)
            if key in self._decisions:
                if self._decisions[key] is not None:
                    decided = self._decisions[key]
                continue
            if decided is not None:
                self._decisions[key] = None
                continue
            if init is None:
                # We heard about (agent, tau) only indirectly without learning its
                # preference; this cannot happen under the full-information
                # exchange, but degrade gracefully rather than crash.
                self._decisions[key] = None
                continue
            restricted = self.graph.restrict(agent, tau)
            action = self._evaluate_rules(restricted, agent, tau, init)
            if action.is_decision:
                decided = action.value
                self._decisions[key] = action.value
            else:
                self._decisions[key] = None

    def _evaluate_rules(self, graph: CommGraph, agent: AgentId, time: int,
                        init: Value) -> Action:
        """Apply the ``P1`` rules at a point whose graph is ``graph``."""
        frontier = graph.heard_frontier(agent, time)

        def decisions(other: AgentId, m_prime: int) -> object:
            if m_prime < 0:
                return None
            if other == agent and m_prime >= time:
                return UNKNOWN
            if m_prime > frontier[other]:
                return UNKNOWN
            return self.known_decision(other, m_prime)

        if self.use_common_knowledge:
            if common_condition(graph, agent, time, self.t, 0, decisions):
                return DECIDE_0
            if common_condition(graph, agent, time, self.t, 1, decisions):
                return DECIDE_1
        if chain_condition(graph, agent, time, init, decisions):
            return DECIDE_0
        if no_hidden_chain_condition(graph, agent, time, decisions):
            return DECIDE_1
        return NOOP


# --------------------------------------------------------------------------- the protocol


class OptimalFipProtocol(ActionProtocol):
    """``P_opt(t)``: the optimal polynomial-time EBA protocol for full information.

    Setting ``use_common_knowledge=False`` disables the two common-knowledge
    rules, leaving the ``P0`` rules only; this ablation is correct but not
    optimal with full information (it is exactly what Example 7.1 penalizes).
    """

    name = "P_opt"
    state_type = FipLocalState

    def __init__(self, t: int, use_common_knowledge: bool = True) -> None:
        super().__init__(t)
        self.use_common_knowledge = use_common_knowledge
        if not use_common_knowledge:
            self.name = "P_fip_nock"

    def make_exchange(self, n: int) -> FullInformationExchange:
        return FullInformationExchange(n)

    def act(self, state: FipLocalState) -> Action:
        self.check_state(state)
        if state.graph.time != state.time:
            raise ProtocolError(
                f"inconsistent full-information state: time={state.time} but the "
                f"communication graph is at time {state.graph.time}"
            )
        oracle = DecisionOracle(state.graph, state.agent, state.time, self.t,
                                use_common_knowledge=self.use_common_knowledge)
        return oracle.anchor_action(state.init, already_decided=state.decided is not None)
