"""``P_basic``: the action protocol for the basic information exchange (Section 6).

The program (Theorem 6.6 shows it implements the knowledge-based program ``P0``
in the context ``γ_basic`` when ``t <= n - 2``):

.. code-block:: text

    if decided_i != ⊥ then noop
    else if init_i = 0 or jd_i = 0 then decide_i(0)
    else if #1_i > n - time_i or jd_i = 1 then decide_i(1)
    else noop

The ``#1_i > n - time_i`` test is the "no hidden 0-chain" argument: a 0-chain
that is still hidden at time ``m`` involves ``m`` distinct agents none of which
sent an ``(init, 1)`` heartbeat in the last round, so if more than ``n - m``
heartbeats arrived, no such chain can exist and it is safe to decide 1.
"""

from __future__ import annotations

from ..core.types import Action, DECIDE_0, DECIDE_1, NOOP
from ..exchange.basic import BasicExchange, BasicLocalState
from .base import ActionProtocol


class BasicProtocol(ActionProtocol):
    """The concrete protocol ``P_basic(t)`` over ``E_basic``."""

    name = "P_basic"
    state_type = BasicLocalState

    def make_exchange(self, n: int) -> BasicExchange:
        return BasicExchange(n)

    def act(self, state: BasicLocalState) -> Action:
        self.check_state(state)
        if state.decided is not None:
            return NOOP
        if state.init == 0 or state.jd == 0:
            return DECIDE_0
        if state.count_ones > state.n - state.time or state.jd == 1:
            return DECIDE_1
        return NOOP
