"""The action-protocol interface (the ``P`` of the paper).

An action protocol maps local states of an information-exchange protocol to
actions (``decide(v)`` or ``noop``).  Each concrete protocol also knows which
information-exchange protocol it is designed for, so that the simulation engine
and the :mod:`repro.api` specs can construct matching ``(E, P)`` pairs from a
protocol object alone.
"""

from __future__ import annotations

import abc
from typing import Type

from ..core.errors import ConfigurationError, ProtocolError
from ..core.types import Action
from ..exchange.base import InformationExchange, LocalState


class ActionProtocol(abc.ABC):
    """Abstract base class for EBA action protocols.

    Parameters
    ----------
    t:
        The bound on the number of faulty agents the protocol is designed for.
        (Every protocol in the paper is parameterised by ``t``.)
    """

    #: Short name used in reports ("P_min", "P_basic", "P_opt", ...).
    name: str = "P"

    #: The class of local states the protocol expects (used for validation).
    state_type: Type[LocalState] = LocalState

    def __init__(self, t: int) -> None:
        if t < 0:
            raise ConfigurationError(f"the failure bound t must be non-negative, got {t}")
        self.t = t

    # ------------------------------------------------------------------ interface

    @abc.abstractmethod
    def make_exchange(self, n: int) -> InformationExchange:
        """Construct the information-exchange protocol this action protocol pairs with."""

    @abc.abstractmethod
    def act(self, state: LocalState) -> Action:
        """The local action protocol ``P_i``: the action to perform in ``state``."""

    # ------------------------------------------------------------------ helpers

    def check_state(self, state: LocalState) -> LocalState:
        """Validate that ``state`` has the type this protocol expects."""
        if not isinstance(state, self.state_type):
            raise ProtocolError(
                f"{self.name} expects {self.state_type.__name__} local states, "
                f"got {type(state).__name__}"
            )
        return state

    def validate_for(self, n: int) -> None:
        """Check the protocol's parameters against a system of ``n`` agents.

        The paper's optimality results require ``n - t >= 2``; correctness only
        needs ``t < n``.  Callers that care about optimality should use
        :meth:`supports_optimality`.
        """
        if self.t >= n:
            raise ConfigurationError(
                f"{self.name} requires t < n, got t={self.t}, n={n}"
            )

    def supports_optimality(self, n: int) -> bool:
        """Whether the paper's optimality guarantees apply (``n - t >= 2``)."""
        return n - self.t >= 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(t={self.t})"
