"""Baseline action protocols used for comparison and for negative results.

* :class:`NaiveZeroBiasedProtocol` — the protocol ruled out by the paper's
  introduction: decide 0 as soon as you *hear about* an initial preference of
  0 (not necessarily via a 0-chain).  Under crash failures this is a correct,
  optimal 0-biased rule; under sending-omission failures it violates Agreement
  (a faulty agent can reveal its 0 to a single agent at the last moment).
* :class:`DelayedMinProtocol` — a correct but strictly dominated variant of
  ``P_min`` that waits ``delay`` extra rounds before deciding 1.  It is the
  sanity baseline for the dominance study: ``P_min`` strictly dominates it, and
  nothing we implement strictly dominates ``P_min``.
* :class:`EagerOneProtocol` — an *incorrect* protocol that decides 1 as soon as
  it has seen only 1s; it violates Agreement whenever a 0-chain is still hidden
  (used by negative tests for the specification checkers).
"""

from __future__ import annotations

from ..core.types import Action, DECIDE_0, DECIDE_1, NOOP
from ..exchange.base import LocalState
from ..exchange.basic import BasicExchange, BasicLocalState
from ..exchange.fip import FipLocalState, FullInformationExchange
from ..exchange.minimal import MinimalExchange
from .base import ActionProtocol


class NaiveZeroBiasedProtocol(ActionProtocol):
    """Decide 0 upon *learning* of a 0 (correct for crashes, broken for omissions).

    Runs over the full-information exchange so that "hearing about a 0" has its
    most permissive meaning: any initial preference of 0 visible anywhere in the
    communication graph triggers a 0 decision.  If no 0 is heard about within
    ``t + 1`` rounds the agent decides 1.
    """

    name = "P_naive0"
    state_type = FipLocalState

    def make_exchange(self, n: int) -> FullInformationExchange:
        return FullInformationExchange(n)

    def act(self, state: FipLocalState) -> Action:
        self.check_state(state)
        if state.decided is not None:
            return NOOP
        if 0 in state.graph.known_preferences().values():
            return DECIDE_0
        if state.time >= self.t + 1:
            return DECIDE_1
        return NOOP


class DelayedMinProtocol(ActionProtocol):
    """``P_min`` with the decide-1 deadline postponed by ``delay`` rounds.

    Still a correct EBA protocol (waiting longer before deciding 1 never breaks
    agreement with the 0-chain rule), but strictly dominated by ``P_min``: in
    the all-ones failure-free run it decides at round ``t + 2 + delay`` instead
    of ``t + 2``.
    """

    name = "P_min_delayed"
    state_type = LocalState

    def __init__(self, t: int, delay: int = 1) -> None:
        super().__init__(t)
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self.name = f"P_min_delayed({delay})"

    def make_exchange(self, n: int) -> MinimalExchange:
        return MinimalExchange(n)

    def act(self, state: LocalState) -> Action:
        self.check_state(state)
        if state.decided is not None:
            return NOOP
        if state.init == 0 or state.jd == 0:
            return DECIDE_0
        if state.time >= self.t + 1 + self.delay:
            return DECIDE_1
        return NOOP


class EagerOneProtocol(ActionProtocol):
    """An intentionally broken protocol: decide 1 after a fixed small number of rounds.

    With ``patience`` rounds of silence an agent concludes (unsoundly) that
    everyone prefers 1.  A hidden 0-chain longer than ``patience`` breaks
    Agreement; the specification checkers must catch this.
    """

    name = "P_eager1"
    state_type = BasicLocalState

    def __init__(self, t: int, patience: int = 1) -> None:
        super().__init__(t)
        if patience < 1:
            raise ValueError(f"patience must be positive, got {patience}")
        self.patience = patience

    def make_exchange(self, n: int) -> BasicExchange:
        return BasicExchange(n)

    def act(self, state: BasicLocalState) -> Action:
        self.check_state(state)
        if state.decided is not None:
            return NOOP
        if state.init == 0 or state.jd == 0:
            return DECIDE_0
        if state.time >= self.patience:
            return DECIDE_1
        return NOOP
