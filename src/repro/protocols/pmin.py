"""``P_min``: the action protocol for the minimal information exchange (Section 6).

The program (Theorem 6.5 shows it implements the knowledge-based program ``P0``
in the context ``γ_min`` when ``t <= n - 2``):

.. code-block:: text

    if decided_i != ⊥ then noop
    else if init_i = 0 or jd_i = 0 then decide_i(0)
    else if time_i = t + 1 then decide_i(1)
    else noop

Intuitively: decide 0 if you started with 0 or just heard a decide-0
notification (a 0-chain reached you); if no 0-chain reached you within ``t + 1``
rounds, none can be pending, so decide 1.
"""

from __future__ import annotations

from ..core.types import Action, DECIDE_0, DECIDE_1, NOOP
from ..exchange.base import LocalState
from ..exchange.minimal import MinimalExchange
from .base import ActionProtocol


class MinProtocol(ActionProtocol):
    """The concrete protocol ``P_min(t)`` over ``E_min``."""

    name = "P_min"
    state_type = LocalState

    def make_exchange(self, n: int) -> MinimalExchange:
        return MinimalExchange(n)

    def act(self, state: LocalState) -> Action:
        self.check_state(state)
        if state.decided is not None:
            return NOOP
        if state.init == 0 or state.jd == 0:
            return DECIDE_0
        if state.time == self.t + 1:
            return DECIDE_1
        return NOOP
