"""Action protocols: ``P_min``, ``P_basic``, ``P_opt``, and baselines."""

from .base import ActionProtocol
from .baselines import DelayedMinProtocol, EagerOneProtocol, NaiveZeroBiasedProtocol
from .pbasic import BasicProtocol
from .pmin import MinProtocol
from .popt import (
    DecisionOracle,
    OptimalFipProtocol,
    UNKNOWN,
    chain_condition,
    common_condition,
    no_hidden_chain_condition,
)

__all__ = [
    "ActionProtocol",
    "BasicProtocol",
    "DecisionOracle",
    "DelayedMinProtocol",
    "EagerOneProtocol",
    "MinProtocol",
    "NaiveZeroBiasedProtocol",
    "OptimalFipProtocol",
    "UNKNOWN",
    "chain_condition",
    "common_condition",
    "no_hidden_chain_condition",
]
