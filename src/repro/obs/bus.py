"""The observer event bus and throttled progress reporting.

The generalization of what ``api.set_resume_notifier`` used to be: a
process-wide publish/subscribe :data:`BUS` any layer can emit structured
events into, and any front end (the CLI, the job server's workers, a test)
can subscribe to — without the emitting layer knowing who is listening.

Event kinds currently emitted by the library:

=====================  ====================================================
kind                   payload (beyond ``kind`` and ``thread``)
=====================  ====================================================
``progress``           ``phase``, ``done``, ``total`` (may be ``None``),
                       ``unit``, ``elapsed``, ``eta`` (may be ``None``)
``sweep.resume``       ``spec``, ``remaining``, ``total`` — a cached sweep
                       resuming part-way (the old resume-notifier hook)
``pool.rebuild``       ``pending`` — a broken process pool being rebuilt
=====================  ====================================================

Every payload carries ``thread`` (the emitting thread's ident), which is how
the service's workers attribute concurrent jobs' progress streams to the
right job.  Subscriber callbacks must not raise; one that does is counted
(``repro_obs_callback_errors_total``) and skipped, never propagated into the
emitting computation.

:class:`ProgressReporter` is the emitting half for long loops: throttled to
``min_interval`` seconds, computes elapsed/ETA, and — when nobody subscribed
— costs one dict lookup per ``advance``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from . import metrics as _metrics

__all__ = ["EventBus", "BUS", "ProgressReporter"]

_CALLBACK_ERRORS = _metrics.counter(
    "repro_obs_callback_errors_total",
    "Event-bus subscriber callbacks that raised (caught and skipped)")


class EventBus:
    """A minimal, thread-safe publish/subscribe hub keyed by event kind."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: Dict[str, List[Callable[[dict], None]]] = {}

    def subscribe(self, kind: str,
                  callback: Callable[[dict], None]) -> Callable[[dict], None]:
        """Register ``callback`` for ``kind``; returns it (for unsubscribe)."""
        with self._lock:
            self._subscribers.setdefault(kind, []).append(callback)
        return callback

    def unsubscribe(self, kind: str, callback: Callable[[dict], None]) -> None:
        """Remove a subscription (missing ones are ignored)."""
        with self._lock:
            callbacks = self._subscribers.get(kind)
            if callbacks is None:
                return
            try:
                callbacks.remove(callback)
            except ValueError:
                return
            if not callbacks:
                del self._subscribers[kind]

    def has_subscribers(self, kind: str) -> bool:
        """Whether anyone is listening — the emitters' cheap pre-check.

        Deliberately lock-free: dict membership is atomic under the GIL, a
        stale answer only delays/skips one throttled progress event, and the
        whole point of this method is to cost one dict lookup on the hot
        path.  :meth:`emit` re-reads under the lock before delivering.
        """
        # repro-lint: disable=LOCK001 -- benign racy pre-check; see docstring
        return kind in self._subscribers

    def emit(self, kind: str, **payload: Any) -> int:
        """Deliver an event to every subscriber of ``kind``; returns how many
        callbacks ran.  Callback exceptions are counted and swallowed."""
        with self._lock:
            callbacks = list(self._subscribers.get(kind, ()))
        if not callbacks:
            return 0
        event = dict(payload)
        event["kind"] = kind
        event.setdefault("thread", threading.get_ident())
        for callback in callbacks:
            try:
                callback(event)
            except Exception:
                _CALLBACK_ERRORS.inc()
        return len(callbacks)


#: The process-wide bus every library emitter and front-end observer shares.
BUS = EventBus()


class ProgressReporter:
    """Throttled ``progress`` events for one phase of a long computation.

    Call :meth:`advance` (or :meth:`update`) from the loop; at most one event
    per ``min_interval`` seconds goes out — plus a final event when ``done``
    reaches ``total`` or :meth:`finish` is called — carrying elapsed time and
    an ETA extrapolated from the completion rate so far.
    """

    def __init__(self, phase: str, total: Optional[int] = None,
                 unit: str = "items", min_interval: float = 0.2,
                 bus: Optional[EventBus] = None) -> None:
        self.phase = phase
        self.total = total
        self.unit = unit
        self.min_interval = min_interval
        self.bus = bus if bus is not None else BUS
        self.done = 0
        self._started = time.monotonic()
        self._last_emit = 0.0

    def advance(self, count: int = 1) -> None:
        """Add ``count`` completed items and maybe emit."""
        self.done += count
        self._maybe_emit(final=self.total is not None and self.done >= self.total)

    def update(self, done: int) -> None:
        """Set the absolute completion count and maybe emit."""
        self.done = done
        self._maybe_emit(final=self.total is not None and self.done >= self.total)

    def finish(self) -> None:
        """Emit one final event regardless of throttling."""
        self._maybe_emit(final=True)

    def _maybe_emit(self, final: bool = False) -> None:
        if not self.bus.has_subscribers("progress"):
            return
        now = time.monotonic()
        if not final and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        elapsed = now - self._started
        eta: Optional[float] = None
        if self.total and self.done and self.done < self.total and elapsed > 0:
            eta = elapsed * (self.total - self.done) / self.done
        self.bus.emit(
            "progress",
            phase=self.phase,
            done=self.done,
            total=self.total,
            unit=self.unit,
            elapsed=round(elapsed, 3),
            eta=None if eta is None else round(eta, 3),
        )
