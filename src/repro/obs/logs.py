"""The ``repro.*`` logging hierarchy.

The library logs through standard :mod:`logging` under one namespace rooted
at ``repro`` — ``repro.service.journal``, ``repro.store``, ... — replacing
the earlier scattering of ``warnings.warn`` / ``print(file=sys.stderr)``
one-shots in the service and store layers.

* **Libraries emit, applications configure.**  Modules call
  :func:`get_logger` and log; nothing attaches handlers at import time, so
  embedding the library stays silent-by-default (Python's last-resort
  handler still surfaces WARNING+ on stderr when nobody configured
  anything).  The CLI's ``serve --log-level`` calls
  :func:`configure_logging`.
* **One-shot warnings become logger-level dedup.**  The old pattern —
  ``warn once per journal, count the rest silently`` — is kept by
  :func:`warn_once`, which drops repeat messages for the same ``(logger,
  key)`` pair; the per-instance counters (``write_errors``, ``io_errors``)
  still record every occurrence.
"""

from __future__ import annotations

import logging
import sys
import threading
from typing import Hashable, Optional, Set, Tuple

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure_logging",
           "warn_once", "reset_once_cache"]

#: The root of the library's logger namespace.
ROOT_LOGGER_NAME = "repro"

#: Format used by :func:`configure_logging`'s stream handler.
LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"

_once_lock = threading.Lock()
_once_seen: Set[Tuple[str, Hashable]] = set()


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("service.journal")`` and ``get_logger("repro.service.journal")``
    both resolve to ``repro.service.journal``; the empty string gives the root
    ``repro`` logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: "str | int" = "warning",
                      stream=None) -> logging.Logger:
    """Attach one stderr stream handler to the ``repro`` logger at ``level``.

    Idempotent: re-configuring adjusts the existing handler's level instead
    of stacking handlers (so tests and repeated CLI invocations in one
    process do not multiply output lines).
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_obs_handler", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        handler._repro_obs_handler = True
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return logger


def warn_once(logger: logging.Logger, key: Hashable, message: str,
              *args: object) -> bool:
    """Log a WARNING once per ``(logger, key)``; returns whether it logged.

    The logging replacement for the old one-shot ``warnings.warn`` pattern:
    the first occurrence for a given key (a journal path, a store instance)
    is logged, repeats are dropped here — callers keep exact counts in their
    own counters/metrics.
    """
    token = (logger.name, key)
    with _once_lock:
        if token in _once_seen:
            return False
        _once_seen.add(token)
    logger.warning(message, *args)
    return True


def reset_once_cache(key_prefix: Optional[str] = None) -> None:
    """Forget :func:`warn_once` history (test isolation)."""
    with _once_lock:
        if key_prefix is None:
            _once_seen.clear()
        else:
            stale = [token for token in _once_seen if token[0].startswith(key_prefix)]
            for token in stale:
                _once_seen.discard(token)
