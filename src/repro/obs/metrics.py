"""A process-wide metrics registry: counters, gauges, histograms.

One :data:`REGISTRY` aggregates what used to live as scattered instance
counters — :meth:`JobQueue.stats` tallies, :class:`~repro.store.StoreStats`,
the journal's ``write_errors``/``torn_lines`` — into a single source of truth
with three export surfaces:

* ``GET /metrics`` on the job server — Prometheus text exposition (or JSON
  with ``?format=json``);
* an embedded ``metrics`` block in ``GET /stats``;
* the ``repro-eba obs`` CLI — a summary table, or ``--json``.

The pinned per-instance schemas (``StoreStats.as_dict()``, the queue's
``stats()`` dict) keep working unchanged: instances mirror their increments
into the registry, so the registry holds the *process-level* totals across
every store/queue/journal that ever lived in the process.

Everything is stdlib, lock-per-metric, and cheap enough to increment from hot
paths (one lock acquire + integer add).  Metric names follow the Prometheus
conventions: ``repro_<noun>_total`` for counters, base units for histograms.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "counter", "gauge", "histogram", "render_table",
]

#: Prometheus text exposition content type (version pinned by the format spec).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets (seconds): tuned for simulation/check latencies
#: that span sub-millisecond store hits to minute-scale n=5 scans.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


def _valid_name(name: str) -> bool:
    if not name:
        return False
    head, tail = name[0], name[1:]
    if not (head.isalpha() or head in "_:"):
        return False
    return all(ch.isalnum() or ch in "_:" for ch in tail)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _render(self) -> List[str]:
        return [f"{self.name} {self.value}"]

    def _snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A value that can go up and down — or track a live callback.

    ``set_function`` installs a callable sampled at scrape time (e.g. the
    queue's current depth); a sampling error reads as the last set value
    rather than breaking the scrape.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value: float = 0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._function = None

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, function: Optional[Callable[[], float]]) -> None:
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            fallback = self._value
        if function is not None:
            try:
                return function()
            except Exception:
                return fallback
        return fallback

    def _reset(self) -> None:
        with self._lock:
            self._value = 0
            self._function = None

    def _render(self) -> List[str]:
        return [f"{self.name} {_format_value(self.value)}"]

    def _snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """A cumulative-bucket histogram of observations (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1 = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def _state(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    @property
    def count(self) -> int:
        return self._state()[2]

    @property
    def sum(self) -> float:
        return self._state()[1]

    def _render(self) -> List[str]:
        counts, total, count = self._state()
        lines = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            lines.append(f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}')
        cumulative += counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_format_value(total)}")
        lines.append(f"{self.name}_count {count}")
        return lines

    def _snapshot(self) -> dict:
        counts, total, count = self._state()
        buckets = {}
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            buckets[_format_value(bound)] = cumulative
        cumulative += counts[-1]
        buckets["+Inf"] = cumulative
        return {"type": self.kind, "help": self.help, "sum": total,
                "count": count, "buckets": buckets}


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Name → metric table with get-or-create registration.

    Re-registering an existing name returns the existing metric (of the same
    kind — a kind clash raises), so modules can declare their handles at
    import time without import-order coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, Counter | Gauge | Histogram]" = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if not _valid_name(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {metric.kind}")
                return metric
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def _sorted(self) -> List["Counter | Gauge | Histogram"]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe view of every metric (``/metrics?format=json``,
        ``/stats``'s ``metrics`` block, ``repro-eba obs --json``)."""
        return {metric.name: metric._snapshot() for metric in self._sorted()}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, sorted by metric name."""
        lines: List[str] = []
        for metric in self._sorted():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n"

    def reset_for_tests(self) -> None:
        """Zero every metric **in place** (handles cached by other modules
        stay registered and live).  Test isolation only."""
        for metric in self._sorted():
            metric._reset()


#: The process-wide registry every instrumented module registers into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create a counter on the process-wide :data:`REGISTRY`."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Get-or-create a gauge on the process-wide :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help)


def histogram(name: str, help: str = "",
              buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    """Get-or-create a histogram on the process-wide :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help, buckets=buckets)


def render_table(snapshot: Dict[str, dict]) -> str:
    """Align a :meth:`MetricsRegistry.snapshot` as a fixed-width summary table
    (the ``repro-eba obs`` default output)."""
    rows: List[Tuple[str, str, str]] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "?")
        if kind == "histogram":
            count = entry.get("count", 0)
            total = entry.get("sum", 0.0)
            mean = (total / count) if count else 0.0
            value = f"count={count} mean={mean:.4g}s"
        else:
            value = _format_value(entry.get("value", 0))
        rows.append((name, kind, value))
    if not rows:
        return "(no metrics recorded)"
    name_width = max(len(row[0]) for row in rows)
    kind_width = max(len(row[1]) for row in rows)
    lines = [f"{name:<{name_width}}  {kind:<{kind_width}}  {value}"
             for name, kind, value in rows]
    return "\n".join(lines)


def uptime_clock() -> float:
    """Monotonic stamp helper shared by uptime reporters."""
    return time.monotonic()
