"""``repro.obs`` — observability: tracing, metrics, events, logging.

The operational substrate of the reproduction pipeline, in four pieces:

* :mod:`repro.obs.trace` — span-based tracing into a JSONL file
  (``--trace FILE`` on the CLI; rendered by ``tools/trace_report.py``).
  Free when disabled; merges spans across fork workers into one trace.
* :mod:`repro.obs.metrics` — the process-wide registry of counters, gauges,
  and histograms behind ``GET /metrics``, the ``/stats`` ``metrics`` block,
  and ``repro-eba obs``.
* :mod:`repro.obs.bus` — the observer event bus (``progress``,
  ``sweep.resume``, ``pool.rebuild`` events) that generalizes the old
  ``api.set_resume_notifier`` hook, plus throttled
  :class:`~repro.obs.bus.ProgressReporter`.
* :mod:`repro.obs.logs` — the ``repro.*`` :mod:`logging` hierarchy and the
  logger-level one-shot warning dedup.

See ``docs/observability.md`` for the span taxonomy, the metric name table,
and the trace-file schema.
"""

from . import bus, logs, metrics, trace
from .bus import BUS, EventBus, ProgressReporter
from .logs import configure_logging, get_logger, warn_once
from .metrics import MetricsRegistry, REGISTRY, render_table
from .trace import Tracer

__all__ = [
    "BUS", "EventBus", "MetricsRegistry", "ProgressReporter", "REGISTRY",
    "Tracer", "bus", "configure_logging", "get_logger", "logs", "metrics",
    "render_table", "trace", "warn_once",
]
