"""Span-based tracing with a JSONL sink (``--trace FILE``).

A *span* is one timed region of work — a system build, one model-checker
constructor evaluation, a job's queue wait — with a name, a category, a
monotonic start/duration, and free-form JSON-safe attributes.  Spans nest via
a thread-local stack (entering a span makes it the parent of spans opened on
the same thread until it exits), and every completed span is appended to the
trace file as one JSON line, so a crash mid-run loses at most the spans still
open.

Design constraints, in order:

* **Disabled must be free.**  Tracing is off by default; the enabled check is
  one module-global comparison, and :func:`span` returns a shared no-op
  singleton — no object allocation, no clock read, no branch in ``__exit__``
  beyond returning.  Hot loops that would otherwise build an attribute dict
  per iteration guard on :func:`is_active` first.
* **Fork-merges into one trace.**  ``ParallelExecutor`` and ``scan_runs``
  fan work out over forked children, which inherit the enabled tracer.  The
  sink is opened in append mode and every record is written as one
  ``write()`` of a complete line followed by a flush, so concurrent writers
  interleave at line granularity (POSIX ``O_APPEND`` semantics) and the
  parent's file ends up holding every process's spans.  A tracer that
  notices ``os.getpid()`` changed reopens its handle, so a child never
  double-flushes buffered parent bytes.  Span ids are unique per ``(pid,
  id)``; timestamps are ``time.monotonic()``, which on Linux is
  ``CLOCK_MONOTONIC`` — shared across fork children, so child spans land on
  the parent's timeline.
* **The schema is pinned.**  One record per line, sorted keys, schema version
  :data:`SCHEMA_VERSION`; see :func:`validate_record`.  ``tools/
  trace_report.py`` and the golden file in ``tests/data/`` both consume it.

Record shapes::

    {"type": "meta", "version": 1, "pid": ..., "tid": ...,
     "unix_ts": ..., "monotonic_ts": ...}          # one per process
    {"type": "span" | "event", "name": ..., "cat": ..., "ts": ...,
     "dur": ..., "pid": ..., "tid": ..., "id": ..., "parent": ...,
     "attrs": {...}}

``meta`` anchors the monotonic clock to wall time once per writing process;
``event`` is an instant (``dur == 0.0``).  ``parent`` is the enclosing span's
``id`` in the same process (or ``null`` at top level).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "SCHEMA_VERSION", "Tracer", "enable", "disable", "is_active", "span",
    "event", "complete", "traced", "validate_record", "validate_trace",
    "read_trace", "NOOP",
]

#: Bumped whenever a record key is added, removed, or renamed.
SCHEMA_VERSION = 1

#: Exactly the keys of a span/event record, in canonical order.
SPAN_KEYS = ("type", "name", "cat", "ts", "dur", "pid", "tid", "id",
             "parent", "attrs")

#: Exactly the keys of a per-process meta record.
META_KEYS = ("type", "version", "pid", "tid", "unix_ts", "monotonic_ts")


class Tracer:
    """One JSONL trace sink; usually managed through :func:`enable`.

    Thread-safe (one lock around the handle) and fork-aware: the first emit
    after a ``fork`` reopens the file in append mode under the child's pid
    and writes a fresh ``meta`` anchor line.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path).expanduser()
        self._lock = threading.Lock()
        self._handle = None
        self._pid: Optional[int] = None
        self._next_id = 0

    # ------------------------------------------------------------------ ids

    def next_id(self) -> int:
        """A process-locally unique span id (global uniqueness is ``(pid, id)``:
        a forked child inherits the counter value and continues from it)."""
        with self._lock:
            self._next_id += 1
            return self._next_id

    # ------------------------------------------------------------------ sink

    def _ensure_handle_locked(self) -> None:
        pid = os.getpid()
        if self._handle is not None and self._pid == pid:
            return
        if self._handle is not None:
            # Forked child: drop the inherited handle (its buffer is empty —
            # every write is flushed — so closing cannot replay parent bytes).
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._pid = pid
        meta = {
            "type": "meta",
            "version": SCHEMA_VERSION,
            "pid": pid,
            "tid": threading.get_ident(),
            "unix_ts": time.time(),
            "monotonic_ts": time.monotonic(),
        }
        self._handle.write(json.dumps(meta, sort_keys=True) + "\n")
        self._handle.flush()

    def emit(self, rtype: str, name: str, cat: str, ts: float, dur: float,
             span_id: int, parent: Optional[int],
             attrs: Optional[Dict[str, Any]]) -> None:
        """Append one record; write failures are swallowed (tracing must never
        break the traced computation)."""
        record = {
            "type": rtype,
            "name": name,
            "cat": cat,
            "ts": round(ts, 7),
            "dur": round(dur, 7),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "id": span_id,
            "parent": parent,
            "attrs": attrs if attrs is not None else {},
        }
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            try:
                self._ensure_handle_locked()
                self._handle.write(line)
                self._handle.flush()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
                self._pid = None


# ---------------------------------------------------------------------- state

_TRACER: Optional[Tracer] = None
_LOCAL = threading.local()


def _stack() -> List[int]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def enable(path: "str | os.PathLike[str]") -> Tracer:
    """Start tracing into ``path`` (appending); returns the active tracer."""
    global _TRACER
    disable()
    _TRACER = Tracer(path)
    return _TRACER


def disable() -> None:
    """Stop tracing and close the sink (idempotent)."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is not None:
        tracer.close()


def is_active() -> bool:
    """Whether a tracer is installed.  Hot loops guard attribute-dict
    construction on this, keeping the disabled path allocation-free."""
    return _TRACER is not None


# ---------------------------------------------------------------------- spans

class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


#: The singleton no-op span: ``span(...)`` returns *this exact object* while
#: tracing is disabled, so the disabled path allocates nothing.
NOOP = _NoopSpan()


class _Span:
    """A live span: context manager recording one line on exit."""

    __slots__ = ("_tracer", "name", "cat", "attrs", "_start", "_id", "_parent")

    def __init__(self, tracer: Tracer, name: str, cat: str,
                 attrs: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute discovered mid-span (e.g. a result cardinality)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "_Span":
        stack = _stack()
        self._parent = stack[-1] if stack else None
        self._id = self._tracer.next_id()
        stack.append(self._id)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.monotonic()
        stack = _stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        if exc_type is not None:
            self.set("error", exc_type.__name__)
        self._tracer.emit("span", self.name, self.cat, self._start,
                          end - self._start, self._id, self._parent, self.attrs)
        return False


def span(name: str, cat: str = "", attrs: Optional[Dict[str, Any]] = None):
    """A context-manager span; the :data:`NOOP` singleton when disabled.

    Callers on hot paths should check :func:`is_active` *before* building
    ``attrs``, so the disabled path stays allocation-free.
    """
    tracer = _TRACER
    if tracer is None:
        return NOOP
    return _Span(tracer, name, cat, attrs)


def event(name: str, cat: str = "",
          attrs: Optional[Dict[str, Any]] = None) -> None:
    """Record an instant event (``dur == 0``) under the current span."""
    tracer = _TRACER
    if tracer is None:
        return
    stack = _stack()
    parent = stack[-1] if stack else None
    tracer.emit("event", name, cat, time.monotonic(), 0.0, tracer.next_id(),
                parent, attrs)


def complete(name: str, start: float, end: float, cat: str = "",
             attrs: Optional[Dict[str, Any]] = None) -> None:
    """Record a span retroactively from monotonic ``start``/``end`` stamps.

    For regions whose endpoints live in different call frames — e.g. a job's
    queue wait, stamped at submit and closed at worker pickup.
    """
    tracer = _TRACER
    if tracer is None:
        return
    stack = _stack()
    parent = stack[-1] if stack else None
    tracer.emit("span", name, cat, start, max(0.0, end - start),
                tracer.next_id(), parent, attrs)


def traced(name: Optional[str] = None, cat: str = "") -> Callable:
    """Decorator form: trace every call of the wrapped function as one span."""
    def decorate(function: Callable) -> Callable:
        span_name = name if name is not None else function.__qualname__

        def wrapper(*args, **kwargs):
            if _TRACER is None:
                return function(*args, **kwargs)
            with span(span_name, cat):
                return function(*args, **kwargs)

        wrapper.__name__ = function.__name__
        wrapper.__qualname__ = function.__qualname__
        wrapper.__doc__ = function.__doc__
        wrapper.__wrapped__ = function
        return wrapper
    return decorate


# ----------------------------------------------------------------- validation

def validate_record(record: object) -> None:
    """Raise :class:`ValueError` unless ``record`` matches the pinned schema."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be an object, got {type(record).__name__}")
    rtype = record.get("type")
    if rtype == "meta":
        _require_keys(record, META_KEYS)
        if record["version"] != SCHEMA_VERSION:
            raise ValueError(f"unsupported trace schema version {record['version']!r}")
        _require_int(record, "pid")
        _require_int(record, "tid")
        _require_number(record, "unix_ts")
        _require_number(record, "monotonic_ts")
        return
    if rtype in ("span", "event"):
        _require_keys(record, SPAN_KEYS)
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError("span name must be a non-empty string")
        if not isinstance(record["cat"], str):
            raise ValueError("span cat must be a string")
        _require_number(record, "ts")
        _require_number(record, "dur")
        if record["dur"] < 0:
            raise ValueError(f"span dur must be >= 0, got {record['dur']}")
        _require_int(record, "pid")
        _require_int(record, "tid")
        _require_int(record, "id")
        if record["id"] < 1:
            raise ValueError(f"span id must be >= 1, got {record['id']}")
        parent = record["parent"]
        if parent is not None and (not isinstance(parent, int)
                                   or isinstance(parent, bool) or parent < 1):
            raise ValueError(f"span parent must be null or an id, got {parent!r}")
        if not isinstance(record["attrs"], dict):
            raise ValueError("span attrs must be an object")
        for key in record["attrs"]:
            if not isinstance(key, str):
                raise ValueError(f"attr keys must be strings, got {key!r}")
        return
    raise ValueError(f"unknown trace record type {rtype!r}")


def _require_keys(record: dict, keys) -> None:
    expected = set(keys)
    actual = set(record)
    if actual != expected:
        missing = sorted(expected - actual)
        extra = sorted(actual - expected)
        raise ValueError(
            f"trace record keys mismatch: missing {missing}, unexpected {extra}")


def _require_int(record: dict, key: str) -> None:
    value = record[key]
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"trace record field {key!r} must be an integer, got {value!r}")


def _require_number(record: dict, key: str) -> None:
    value = record[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"trace record field {key!r} must be a number, got {value!r}")


def _iter_records(path: "str | os.PathLike[str]") -> Iterator[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from exc
            try:
                validate_record(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: {exc}") from exc
            yield record


def validate_trace(path: "str | os.PathLike[str]") -> int:
    """Validate every line of a trace file; returns the record count."""
    count = 0
    for _record in _iter_records(path):
        count += 1
    return count


def read_trace(path: "str | os.PathLike[str]") -> List[dict]:
    """Parse and validate a trace file into a list of records."""
    return list(_iter_records(path))
