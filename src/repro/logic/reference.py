"""The naive set-based model checker, retained as a differential-testing oracle.

This is the original ``frozenset[Point]`` evaluator that
:class:`repro.logic.semantics.ModelChecker` replaced with dense bitmasks.  It
is deliberately straightforward — every operator materialises explicit sets of
:class:`~repro.systems.points.Point` objects — so that the property tests can
assert, constructor by constructor, that the optimised bitset evaluation
computes *exactly* the same satisfying sets on randomised small systems (see
``tests/test_logic_bitset_reference.py``).

It is not used on any production path; prefer
:class:`repro.logic.semantics.ModelChecker`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..core.errors import ModelCheckingError
from ..systems.interpreted import InterpretedSystem
from ..systems.points import Point
from .formula import (
    Always,
    AlwaysFuture,
    And,
    CommonKnowledge,
    DecidedEquals,
    Eventually,
    EveryoneKnows,
    Formula,
    Group,
    InitEquals,
    IsNonfaulty,
    Knows,
    NONFAULTY,
    Next,
    Not,
    Or,
    Previous,
    TimeEquals,
    TrueFormula,
)

FrozenPointSet = FrozenSet[Point]


class ReferenceModelChecker:
    """Evaluates formulas with explicit frozensets of points (slow, obviously correct)."""

    def __init__(self, system: InterpretedSystem) -> None:
        self.system = system
        self._cache: Dict[Formula, FrozenPointSet] = {}
        self._all_points: FrozenPointSet = frozenset(system.points)

    # ------------------------------------------------------------------ public API

    def satisfying_points(self, formula: Formula) -> FrozenPointSet:
        """The set of points at which ``formula`` holds."""
        if formula not in self._cache:
            self._cache[formula] = self._evaluate(formula)
        return self._cache[formula]

    def holds(self, formula: Formula, point: Point) -> bool:
        """Whether ``formula`` holds at ``point``."""
        return point in self.satisfying_points(formula)

    def valid(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at every point of the system."""
        return self.satisfying_points(formula) == self._all_points

    def counterexamples(self, formula: Formula, limit: int = 5) -> list[Point]:
        """Up to ``limit`` points at which ``formula`` fails, in system order."""
        failures: list[Point] = []
        if limit <= 0:
            return failures
        satisfying = self.satisfying_points(formula)
        for point in self.system.points:
            if point not in satisfying:
                failures.append(point)
                if len(failures) >= limit:
                    break
        return failures

    # ------------------------------------------------------------------ group resolution

    def group_members(self, group: Group, point: Point) -> FrozenSet[int]:
        """Resolve a (possibly indexical) group at a point."""
        if group == NONFAULTY:
            return self.system.nonfaulty(point)
        if isinstance(group, frozenset):
            return group
        if isinstance(group, (set, tuple, list)):
            return frozenset(group)
        raise ModelCheckingError(f"unsupported group specification: {group!r}")

    # ------------------------------------------------------------------ evaluation

    def _evaluate(self, formula: Formula) -> FrozenPointSet:
        if isinstance(formula, TrueFormula):
            return self._all_points
        if isinstance(formula, InitEquals):
            return frozenset(
                point for point in self.system.points
                if self.system.run(point).preferences[formula.agent] == formula.value
            )
        if isinstance(formula, DecidedEquals):
            return frozenset(
                point for point in self.system.points
                if self.system.local_state(point, formula.agent).decided == formula.value
            )
        if isinstance(formula, TimeEquals):
            return frozenset(point for point in self.system.points if point.time == formula.time)
        if isinstance(formula, IsNonfaulty):
            return frozenset(
                point for point in self.system.points
                if formula.agent in self.system.nonfaulty(point)
            )
        if isinstance(formula, Not):
            return self._all_points - self.satisfying_points(formula.operand)
        if isinstance(formula, And):
            result = self._all_points
            for operand in formula.operands:
                result = result & self.satisfying_points(operand)
            return result
        if isinstance(formula, Or):
            result: Set[Point] = set()
            for operand in formula.operands:
                result |= self.satisfying_points(operand)
            return frozenset(result)
        if isinstance(formula, Knows):
            return self._evaluate_knows(formula.agent, self.satisfying_points(formula.operand))
        if isinstance(formula, EveryoneKnows):
            return self._evaluate_everyone_knows(formula.group,
                                                 self.satisfying_points(formula.operand))
        if isinstance(formula, CommonKnowledge):
            return self._evaluate_common_knowledge(formula.group,
                                                   self.satisfying_points(formula.operand))
        if isinstance(formula, Next):
            inner = self.satisfying_points(formula.operand)
            return frozenset(
                point for point in self.system.points
                if point.time + 1 <= self.system.horizon
                and Point(point.run_index, point.time + 1) in inner
            )
        if isinstance(formula, Previous):
            inner = self.satisfying_points(formula.operand)
            return frozenset(
                point for point in self.system.points
                if point.time > 0 and Point(point.run_index, point.time - 1) in inner
            )
        if isinstance(formula, AlwaysFuture):
            inner = self.satisfying_points(formula.operand)
            return frozenset(
                point for point in self.system.points
                if all(Point(point.run_index, later) in inner
                       for later in range(point.time, self.system.horizon + 1))
            )
        if isinstance(formula, Always):
            inner = self.satisfying_points(formula.operand)
            return frozenset(
                point for point in self.system.points
                if all(Point(point.run_index, time) in inner
                       for time in range(self.system.horizon + 1))
            )
        if isinstance(formula, Eventually):
            inner = self.satisfying_points(formula.operand)
            return frozenset(
                point for point in self.system.points
                if any(Point(point.run_index, later) in inner
                       for later in range(point.time, self.system.horizon + 1))
            )
        raise ModelCheckingError(f"unsupported formula type: {type(formula).__name__}")

    def _evaluate_knows(self, agent: int, inner: FrozenPointSet) -> FrozenPointSet:
        result: Set[Point] = set()
        for _, points in self.system.equivalence_classes(agent).items():
            if all(point in inner for point in points):
                result.update(points)
        return frozenset(result)

    def _evaluate_everyone_knows(self, group: Group, inner: FrozenPointSet) -> FrozenPointSet:
        knows_by_agent: Dict[int, FrozenPointSet] = {
            agent: self._evaluate_knows(agent, inner) for agent in range(self.system.n)
        }
        result: Set[Point] = set()
        for point in self.system.points:
            members = self.group_members(group, point)
            if all(point in knows_by_agent[agent] for agent in members):
                result.add(point)
        return frozenset(result)

    def _evaluate_common_knowledge(self, group: Group, inner: FrozenPointSet) -> FrozenPointSet:
        """Greatest fixpoint of ``X = E_S(φ ∧ X)`` (standard characterization of ``C_S φ``)."""
        current: FrozenPointSet = self._all_points
        while True:
            target = inner & current
            knows_by_agent: Dict[int, FrozenPointSet] = {
                agent: self._evaluate_knows(agent, target) for agent in range(self.system.n)
            }
            updated: Set[Point] = set()
            for point in current:
                members = self.group_members(group, point)
                if all(point in knows_by_agent[agent] for agent in members):
                    updated.add(point)
            updated_frozen = frozenset(updated)
            if updated_frozen == current:
                return updated_frozen
            current = updated_frozen
