"""uint64 word-array kernels behind the vectorized model-checking hot paths.

The bitset :class:`~repro.logic.semantics.ModelChecker` stores each formula's
satisfying set as one dense Python ``int`` (bit ``run * stride + time``).  The
propositional connectives on that representation are single big-integer
operations, but everything that has to look *inside* the mask — the per-class
``K_i`` sweeps, the Definition 6.2 safety scan, counterexample extraction —
historically fell back to per-point (or per-bit) Python loops.

This module re-lays the same bitmasks as numpy ``uint64`` word arrays (little
endian, point ``p`` lives in bit ``p % 64`` of word ``p // 64``) and provides
the primitives the vectorized paths are built from:

* lossless conversions between ``int`` masks, word arrays, and per-point bit
  vectors (with careful handling of the garbage tail bits of the last word
  when the point count is not a multiple of 64 — pinned by the property tests
  in ``tests/test_properties.py``);
* word-level shift pipelines for the temporal operators (cross-word carries,
  same run-boundary masking discipline as the ``int`` path);
* per-equivalence-class reductions (``class_all`` / ``class_any``) over a
  point-indexed class-id vector, which turn the per-class membership sweeps of
  ``K_i`` and the safety condition into ``np.bincount`` calls;
* ``np.nonzero``-style point-index recovery for counterexample extraction.

numpy is an *optional* dependency: every import is gated behind
:data:`HAVE_NUMPY`, and callers (the model checker, the safety scan) fall back
to the pure-``int`` implementations when it is absent.  The ``int`` path is
retained everywhere as a differential oracle — see
``tests/test_logic_bitset_reference.py`` for the three-way reference /
int-bitmask / word-array suite.
"""

from __future__ import annotations

from typing import Any, List, TYPE_CHECKING, Tuple

try:  # pragma: no cover - exercised implicitly by every word-kernel test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container bakes numpy in
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy.typing as npt

__all__ = [
    "HAVE_NUMPY",
    "WORD_BITS",
    "word_count",
    "full_words",
    "zero_words",
    "mask_to_words",
    "words_to_mask",
    "unpack_words",
    "pack_bits",
    "indices_of_words",
    "indices_of_mask",
    "shift_down_words",
    "shift_up_words",
    "class_all",
    "class_any",
]

#: Bits per word of the packed representation.
WORD_BITS = 64

#: Explicit little-endian uint64: the byte layout of a word array is defined
#: identically on every platform, so ``tobytes``/``frombuffer`` round-trips
#: agree with ``int.to_bytes(..., "little")``.
if HAVE_NUMPY:
    WORD_DTYPE = np.dtype("<u8")
    _ONE = np.uint64(1)
    _SIXTY_THREE = np.uint64(63)


def _require_numpy() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - the container bakes numpy in
        raise RuntimeError(
            "the word-array kernel requires numpy; use the int-bitmask path "
            "(ModelChecker(system, backend='int'), check_safety(scan='per-point'))")


def word_count(num_points: int) -> int:
    """Words needed to hold ``num_points`` bits."""
    return (num_points + WORD_BITS - 1) // WORD_BITS


def full_words(num_points: int) -> "npt.NDArray[Any]":
    """The word array with every one of the ``num_points`` bits set.

    The tail bits of the last word (when ``num_points % 64 != 0``) are zero —
    this is the canonical form every kernel maintains, so word-wise equality
    is set equality.
    """
    _require_numpy()
    words = np.full(word_count(num_points), np.uint64(0xFFFFFFFFFFFFFFFF),
                    dtype=WORD_DTYPE)
    tail = num_points % WORD_BITS
    if tail and len(words):
        words[-1] = np.uint64((1 << tail) - 1)
    return words


def zero_words(num_points: int) -> "npt.NDArray[Any]":
    """The empty set as a word array over ``num_points`` points."""
    _require_numpy()
    return np.zeros(word_count(num_points), dtype=WORD_DTYPE)


def mask_to_words(mask: int, num_points: int) -> "npt.NDArray[Any]":
    """Convert an ``int`` bitmask over ``num_points`` points to a word array."""
    _require_numpy()
    if mask < 0:
        raise ValueError("a point-set mask must be non-negative")
    if mask.bit_length() > num_points:
        raise ValueError(
            f"mask has bit {mask.bit_length() - 1} set but the system only has "
            f"{num_points} points")
    data = mask.to_bytes(word_count(num_points) * 8, "little")
    return np.frombuffer(data, dtype=WORD_DTYPE).copy()


def words_to_mask(words: "npt.NDArray[Any]") -> int:
    """Convert a (canonical, tail-clean) word array back to an ``int`` bitmask."""
    return int.from_bytes(np.ascontiguousarray(words, dtype=WORD_DTYPE).tobytes(),
                          "little")


def unpack_words(words: "npt.NDArray[Any]", num_points: int) -> "npt.NDArray[Any]":
    """Per-point 0/1 ``uint8`` vector of a word array (tail bits dropped)."""
    as_bytes = np.ascontiguousarray(words, dtype=WORD_DTYPE).view(np.uint8)
    return np.unpackbits(as_bytes, bitorder="little")[:num_points]


def pack_bits(bits: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
    """Pack a per-point 0/1 (or bool) vector into a canonical word array.

    The inverse of :func:`unpack_words`: the tail bits of the last word are
    zero, so the result compares word-wise with every other canonical array.
    """
    packed = np.packbits(bits, bitorder="little")
    nbytes = word_count(len(bits)) * 8
    if packed.nbytes != nbytes:
        padded = np.zeros(nbytes, dtype=np.uint8)
        padded[:packed.nbytes] = packed
        packed = padded
    return packed.view(WORD_DTYPE)


def indices_of_words(words: "npt.NDArray[Any]", num_points: int) -> "npt.NDArray[Any]":
    """The sorted dense point indices of the set bits (vectorized recovery).

    This is the ``np.nonzero``-style replacement for iterating a Python int
    bit by bit: counterexample extraction and the safety scan's violation
    reporting recover their points through it, which also pins the dense-index
    (run-major, time-minor) ordering guarantee.
    """
    return np.nonzero(unpack_words(words, num_points))[0]


def indices_of_mask(mask: int) -> "npt.NDArray[Any]":
    """The sorted dense point indices of an ``int`` bitmask's set bits.

    Only the bytes up to the mask's highest set bit are materialised, so
    converting the (sparse, variable-length) interned class masks of a big
    system costs memory proportional to the ints themselves.
    """
    _require_numpy()
    if mask < 0:
        raise ValueError("a point-set mask must be non-negative")
    if mask == 0:
        return np.empty(0, dtype=np.int64)
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")
    return np.nonzero(bits)[0]


def shift_down_words(words: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
    """``mask >> 1`` over the packed array: bit ``p`` receives bit ``p + 1``.

    Pure shift with cross-word carries; callers apply the same final-time
    masking as the ``int`` path to stop run segments leaking into each other.
    """
    out = words >> _ONE
    if len(words) > 1:
        out[:-1] |= words[1:] << _SIXTY_THREE
    return out


def shift_up_words(words: "npt.NDArray[Any]", full: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
    """``(mask << 1) & full`` over the packed array: bit ``p`` receives bit ``p - 1``.

    ``full`` (from :func:`full_words`) clips the bit shifted past the last
    point, keeping the array canonical.
    """
    out = words << _ONE
    if len(words) > 1:
        out[1:] |= words[:-1] >> _SIXTY_THREE
    out &= full
    return out


def class_all(class_ids: "npt.NDArray[Any]", num_classes: int,
              member_bits: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
    """Per-point bool: does *every* point of this point's class satisfy ``member_bits``?

    ``class_ids`` maps each point to its equivalence-class id; the reduction
    is one ``np.bincount`` over the failing points.  This is exactly the
    ``K_i`` sweep: a class whose every point satisfies the operand contributes
    wholesale, any other class not at all.
    """
    failing = np.bincount(class_ids[member_bits == 0], minlength=num_classes)
    return (failing == 0)[class_ids]


def class_any(class_ids: "npt.NDArray[Any]", num_classes: int,
              member_bits: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
    """Per-point bool: does *some* point of this point's class satisfy ``member_bits``?

    The existential dual of :func:`class_all` — the "some indistinguishable
    point with property X" witnesses of the Definition 6.2 safety clauses.
    """
    hits = np.bincount(class_ids[member_bits != 0], minlength=num_classes)
    return (hits > 0)[class_ids]


def masks_to_matrix(masks: Tuple[int, ...], num_points: int) -> "npt.NDArray[Any]":
    """Stack ``int`` class masks into a dense ``(num_classes, num_words)`` array.

    The word-array view of an agent's interned class masks: row ``c`` is class
    ``c``'s membership mask.  Dense is only sensible while the class count is
    small (the ``K_i`` sweep caps it at :data:`DENSE_CLASS_LIMIT` and falls
    back to the :func:`class_all` reduction beyond that).
    """
    _require_numpy()
    nwords = word_count(num_points)
    matrix = np.zeros((len(masks), nwords), dtype=WORD_DTYPE)
    for row, mask in enumerate(masks):
        if mask:
            data = mask.to_bytes((mask.bit_length() + 63) // 64 * 8, "little")
            chunk = np.frombuffer(data, dtype=WORD_DTYPE)
            matrix[row, :len(chunk)] = chunk
    return matrix


#: Class-count ceiling for the dense ``(num_classes, num_words)`` ``K_i``
#: sweep; above it the memory of the stacked matrix stops paying for itself
#: and :class:`~repro.logic.semantics.ModelChecker` switches to the
#: class-id / ``bincount`` reduction.  Module-level so tests can force either
#: path.
DENSE_CLASS_LIMIT = 64


def class_ids_from_masks(masks: Tuple[int, ...], num_points: int) -> "npt.NDArray[Any]":
    """Build the point-indexed class-id vector from interned ``int`` class masks.

    The masks partition the point space, so every point gets exactly one id;
    ids follow the masks' order (first appearance in system point order, per
    :class:`~repro.systems.interpreted.AgentPartition`).
    """
    _require_numpy()
    ids = np.zeros(num_points, dtype=np.int32)
    covered = 0
    for cid, mask in enumerate(masks):
        indices = indices_of_mask(mask)
        ids[indices] = cid
        covered += len(indices)
    if covered != num_points:
        raise ValueError(
            f"class masks cover {covered} of {num_points} points; they must "
            "partition the point space")
    return ids


def blocks(num_items: int, num_blocks: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_items)`` into at most ``num_blocks`` contiguous ranges.

    The run-space sharding unit for the scan fan-out (each shard is a
    contiguous run range, so shard results concatenate back in system order).
    """
    if num_items <= 0:
        return []
    count = max(1, min(num_blocks, num_items))
    size = -(-num_items // count)
    return [(start, min(start + size, num_items))
            for start in range(0, num_items, size)]
