"""Formula AST for the epistemic temporal language of Section 2.

The language is built from primitive propositions about the EBA system
(``init_i = v``, ``decided_i = v``, ``time_i = k``, ``i ∈ N``), closed under
the propositional connectives, the epistemic operators ``K_i`` and ``C_S``
(common knowledge among an indexical set ``S``), and the temporal operators
``next`` (⃝), ``previous`` (⊖), ``always in the future`` (□) and ``always``
(⊡).  The paper's derived notions are provided as constructors:

* ``jdecided_i = v``  ≡  ``decided_i = v ∧ ⊖(decided_i = ⊥)``
* ``deciding_i = v``  ≡  ``decided_i = ⊥ ∧ ⃝(decided_i = v)``
* ``∃v``              ≡  ``⋁_i init_i = v``
* ``t-faulty ∧ φ``    ≡  ``⋁_{A ⊆ Agt, |A| = t} C_N(⋀_{i ∈ A} i ∉ N ∧ φ)``
  (the abbreviation used for the common-knowledge tests of ``P1``).

Formulas are immutable value objects; evaluation lives in
:mod:`repro.logic.semantics`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple, Union

from ..core.types import AgentId, Value

#: The indexical group "the nonfaulty agents" used by ``E_S`` / ``C_S``.
NONFAULTY = "N"

#: A group is either a concrete set of agents or the indexical nonfaulty set.
Group = Union[FrozenSet[AgentId], str]


class Formula:
    """Base class for formulas.  Provides operator sugar (``&``, ``|``, ``~``)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        """Material implication ``self ⇒ other``."""
        return Or((Not(self), other))


# --------------------------------------------------------------------------- atoms


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant ``true``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊤"


@dataclass(frozen=True)
class InitEquals(Formula):
    """``init_agent = value``."""

    agent: AgentId
    value: Value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"init_{self.agent}={self.value}"


@dataclass(frozen=True)
class DecidedEquals(Formula):
    """``decided_agent = value`` where ``value`` may be ``None`` for ``⊥``."""

    agent: AgentId
    value: Optional[Value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = "⊥" if self.value is None else self.value
        return f"decided_{self.agent}={rendered}"


@dataclass(frozen=True)
class TimeEquals(Formula):
    """``time = k`` (the systems we build are synchronous, so time is global)."""

    time: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"time={self.time}"


@dataclass(frozen=True)
class IsNonfaulty(Formula):
    """``agent ∈ N``."""

    agent: AgentId

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.agent}∈N"


# --------------------------------------------------------------------------- connectives


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"¬({self.operand!r})"


@dataclass(frozen=True)
class And(Formula):
    """Finite conjunction (empty conjunction is ``true``)."""

    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " ∧ ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Finite disjunction (empty disjunction is ``false``)."""

    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " ∨ ".join(repr(op) for op in self.operands) + ")"


# --------------------------------------------------------------------------- epistemic operators


@dataclass(frozen=True)
class Knows(Formula):
    """``K_agent φ``: the formula holds at every point the agent cannot distinguish."""

    agent: AgentId
    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"K_{self.agent}({self.operand!r})"


@dataclass(frozen=True)
class EveryoneKnows(Formula):
    """``E_S φ`` for a (possibly indexical) group ``S``."""

    group: Group
    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"E_{self.group}({self.operand!r})"


@dataclass(frozen=True)
class CommonKnowledge(Formula):
    """``C_S φ`` for a (possibly indexical) group ``S``."""

    group: Group
    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"C_{self.group}({self.operand!r})"


# --------------------------------------------------------------------------- temporal operators


@dataclass(frozen=True)
class Next(Formula):
    """``⃝ φ``: φ holds at the next time."""

    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⃝({self.operand!r})"


@dataclass(frozen=True)
class Previous(Formula):
    """``⊖ φ``: the time is positive and φ held at the previous time."""

    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⊖({self.operand!r})"


@dataclass(frozen=True)
class AlwaysFuture(Formula):
    """``□ φ``: φ holds now and at all future times (within the system horizon)."""

    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"□({self.operand!r})"


@dataclass(frozen=True)
class Always(Formula):
    """``⊡ φ``: φ holds at all times of the run (within the system horizon)."""

    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⊡({self.operand!r})"


@dataclass(frozen=True)
class Eventually(Formula):
    """``◇ φ``: φ holds now or at some future time (within the system horizon)."""

    operand: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"◇({self.operand!r})"


# --------------------------------------------------------------------------- derived constructors

#: Convenient constant instances.
TRUE = TrueFormula()
FALSE = Not(TRUE)


def decided(agent: AgentId) -> Formula:
    """``decided_agent``: the agent has decided some value."""
    return Or((DecidedEquals(agent, 0), DecidedEquals(agent, 1)))


def undecided(agent: AgentId) -> Formula:
    """``decided_agent = ⊥``."""
    return DecidedEquals(agent, None)


def just_decided(agent: AgentId, value: Value) -> Formula:
    """``jdecided_agent = value``: the agent decided ``value`` in the round that just ended."""
    return And((DecidedEquals(agent, value), Previous(DecidedEquals(agent, None))))


def deciding(agent: AgentId, value: Value) -> Formula:
    """``deciding_agent = value``: the agent decides ``value`` in the current round."""
    return And((DecidedEquals(agent, None), Next(DecidedEquals(agent, value))))


def exists_value(n: int, value: Value) -> Formula:
    """``∃value``: some agent has initial preference ``value``."""
    return Or(tuple(InitEquals(agent, value) for agent in range(n)))


def someone_just_decided(n: int, value: Value) -> Formula:
    """``⋁_j jdecided_j = value``."""
    return Or(tuple(just_decided(agent, value) for agent in range(n)))


def nobody_deciding(n: int, value: Value) -> Formula:
    """``⋀_j ¬(deciding_j = value)``."""
    return And(tuple(Not(deciding(agent, value)) for agent in range(n)))


def no_nonfaulty_decided(n: int, value: Value) -> Formula:
    """``no-decided_N(value)``: no nonfaulty agent has decided ``value``.

    Encoded as ``⋀_j (j ∈ N ⇒ ¬(decided_j = value))`` so that the indexical
    quantification over ``N`` is expressed with explicit agent indices.
    """
    return And(tuple(
        IsNonfaulty(agent).implies(Not(DecidedEquals(agent, value)))
        for agent in range(n)
    ))


def common_knowledge_t_faulty(n: int, t: int, side_condition: Formula) -> Formula:
    """``C_N(t-faulty ∧ side_condition)`` in the abbreviation of Section 7.

    That is ``⋁_{A ⊆ Agt, |A| = t} C_N(⋀_{i ∈ A}(i ∉ N) ∧ side_condition)``.
    The disjunction has ``C(n, t)`` members, which is fine for the small
    systems the model checker handles.
    """
    disjuncts = []
    for subset in itertools.combinations(range(n), t):
        faulty_conjunct = And(tuple(Not(IsNonfaulty(agent)) for agent in subset))
        disjuncts.append(CommonKnowledge(NONFAULTY, And((faulty_conjunct, side_condition))))
    return Or(tuple(disjuncts))
