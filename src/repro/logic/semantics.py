"""Bitset-based model checking of epistemic temporal formulas over finite systems.

The evaluator computes, for each sub-formula, the set of points of the
interpreted system at which it holds (memoised per formula object).  Two
backends share the same semantics:

* ``backend="words"`` (the default whenever numpy is importable) stores each
  satisfying set as a numpy ``uint64`` word array (point ``p`` = bit
  ``p % 64`` of word ``p // 64``; see :mod:`repro.logic.words`).  The
  propositional connectives are vectorized word operations, the temporal
  operators are cross-word shift pipelines, the ``K_i``/``E_S``/``C_S``
  sweeps run word-level AND/OR over the system's stacked class-mask matrix
  (or an ``np.bincount`` class reduction when an agent has many classes), and
  :meth:`ModelChecker.counterexamples` recovers failing points with
  ``np.nonzero`` instead of Python bit iteration.

* ``backend="int"`` is the original dense Python ``int`` representation — one
  big integer per formula, big-integer connectives, shift-and-mask temporal
  pipelines, and a per-class Python sweep for the knowledge operators.  It is
  retained both as the numpy-free fallback and as a second differential
  oracle: the three-way suite in ``tests/test_logic_bitset_reference.py``
  checks reference vs int-bitmask vs word-array on every formula constructor.

The public API is backend-independent and still speaks sets of points:
:meth:`ModelChecker.satisfying_points` returns a
:class:`~repro.systems.points.PointSet`, a drop-in stand-in for the previous
``frozenset[Point]`` representation.  The straightforward set-based evaluator
is retained in :mod:`repro.logic.reference` as the ground-truth oracle.

Temporal operators are given the natural *bounded-horizon* semantics: ``⃝ φ``
is false at the final time of the system (there is no next point), and ``□``,
``⊡``, ``◇`` quantify over the times that exist in the system.  The library
only evaluates knowledge-based-program tests at times strictly below the
horizon, where the bounded and unbounded semantics agree for the formulas the
paper uses (their temporal depth is one).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, TYPE_CHECKING

from ..core.errors import ModelCheckingError
from ..obs import trace as _trace
from ..systems.interpreted import InterpretedSystem
from ..systems.points import Point, PointSet
from . import words as _words
from .formula import (
    Always,
    AlwaysFuture,
    And,
    CommonKnowledge,
    DecidedEquals,
    Eventually,
    EveryoneKnows,
    Formula,
    Group,
    InitEquals,
    IsNonfaulty,
    Knows,
    NONFAULTY,
    Next,
    Not,
    Or,
    Previous,
    TimeEquals,
    TrueFormula,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy.typing as npt

__all__ = ["BACKENDS", "ModelChecker", "PointSet", "holds", "satisfying_points", "valid"]

#: The evaluation backends :class:`ModelChecker` dispatches between.
BACKENDS = ("words", "int")


def default_backend() -> str:
    """The backend a bare ``ModelChecker(system)`` uses on this interpreter."""
    return "words" if _words.HAVE_NUMPY else "int"


class ModelChecker:
    """Evaluates formulas over one interpreted system, caching per-formula results.

    ``backend`` selects the satisfying-set representation: ``"words"`` (numpy
    ``uint64`` word arrays, the default when numpy is available) or ``"int"``
    (dense Python ints, the numpy-free fallback and differential oracle).
    Results are identical bit for bit; only the evaluation machinery differs.
    """

    def __init__(self, system: InterpretedSystem, backend: Optional[str] = None) -> None:
        if backend is None:
            backend = default_backend()
        if backend not in BACKENDS:
            raise ModelCheckingError(
                f"unknown model-checker backend {backend!r}; use one of {BACKENDS}")
        if backend == "words" and not _words.HAVE_NUMPY:
            raise ModelCheckingError(
                "the word-array backend requires numpy; install it or use "
                "ModelChecker(system, backend='int')")
        self.system = system
        self.backend = backend
        self._cache: Dict[Formula, int] = {}
        self._full: int = system.full_mask
        self._all_points: PointSet = system.point_set(self._full)
        if backend == "words":
            self._wcache: Dict[Formula, "npt.NDArray[Any]"] = {}
            self._full_words: "npt.NDArray[Any]" = system.full_words()
            self._final_words: "npt.NDArray[Any]" = system.time_words(system.horizon)
            self._initial_words: "npt.NDArray[Any]" = system.time_words(0)

    # ------------------------------------------------------------------ public API

    def satisfying_points(self, formula: Formula) -> PointSet:
        """The set of points at which ``formula`` holds."""
        return self.system.point_set(self.satisfying_mask(formula))

    def satisfying_mask(self, formula: Formula) -> int:
        """The satisfying set as a raw bitmask over the dense point index."""
        mask = self._cache.get(formula)
        if mask is None:
            if self.backend == "words":
                mask = _words.words_to_mask(self.satisfying_words(formula))
            elif _trace.is_active():
                # Guarded: the disabled path must not allocate the attrs
                # dict per cache miss (this is the checker's hot loop).
                with _trace.span("mc.eval", "check", {
                        "constructor": type(formula).__name__,
                        "backend": self.backend}) as span:
                    mask = self._evaluate(formula)
                    span.set("cardinality", mask.bit_count())
            else:
                mask = self._evaluate(formula)
            self._cache[formula] = mask
        return mask

    def satisfying_words(self, formula: Formula) -> "npt.NDArray[Any]":
        """The satisfying set as a canonical ``uint64`` word array (words backend only)."""
        if self.backend != "words":
            raise ModelCheckingError(
                "satisfying_words is only available on the words backend; "
                "use satisfying_mask")
        result = self._wcache.get(formula)
        if result is None:
            if _trace.is_active():
                with _trace.span("mc.eval", "check", {
                        "constructor": type(formula).__name__,
                        "backend": self.backend}) as span:
                    result = self._evaluate_words(formula)
                    span.set("cardinality", int(
                        _words.unpack_words(result, self.system.num_points).sum()))
            else:
                result = self._evaluate_words(formula)
            self._wcache[formula] = result
        return result

    def holds(self, formula: Formula, point: Point) -> bool:
        """Whether ``formula`` holds at ``point``."""
        if self.backend == "words":
            index = self.system.point_index(point)
            word = self.satisfying_words(formula)[index >> 6]
            return bool((int(word) >> (index & 63)) & 1)
        return point in self.satisfying_points(formula)

    def valid(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at every point of the system."""
        if self.backend == "words":
            import numpy as np
            return bool(np.array_equal(self.satisfying_words(formula), self._full_words))
        return self.satisfying_mask(formula) == self._full

    def counterexamples(self, formula: Formula, limit: int = 5) -> list[Point]:
        """Up to ``limit`` points at which ``formula`` fails (for diagnostics).

        Counterexamples are listed in the system's deterministic point order
        (run-major, time-minor), independent of the set representation — on
        the words backend the failing points are recovered with an
        ``np.nonzero``-style vectorized scan instead of Python bit iteration
        (the ordering/limit contract is pinned by regression tests against
        all three checker implementations).
        """
        if self.backend == "words":
            failing = self._full_words & ~self.satisfying_words(formula)
            indices = _words.indices_of_words(failing, self.system.num_points)
            return [self.system.point_at(int(index)) for index in indices[:limit]]
        failing = self._full & ~self.satisfying_mask(formula)
        return list(self.system.point_set(failing).first(limit))

    # ------------------------------------------------------------------ group resolution

    def group_members(self, group: Group, point: Point) -> FrozenSet[int]:
        """Resolve a (possibly indexical) group at a point."""
        if group == NONFAULTY:
            return self.system.nonfaulty(point)
        if isinstance(group, frozenset):
            return group
        if isinstance(group, (set, tuple, list)):
            return frozenset(group)
        raise ModelCheckingError(f"unsupported group specification: {group!r}")

    # ------------------------------------------------------------------ evaluation

    def _evaluate(self, formula: Formula) -> int:
        if isinstance(formula, TrueFormula):
            return self._full
        if isinstance(formula, InitEquals):
            return self.system.init_mask(formula.agent, formula.value)
        if isinstance(formula, DecidedEquals):
            return self.system.decided_mask(formula.agent, formula.value)
        if isinstance(formula, TimeEquals):
            return self.system.time_mask(formula.time)
        if isinstance(formula, IsNonfaulty):
            return self.system.nonfaulty_mask(formula.agent)
        if isinstance(formula, Not):
            return self._full & ~self.satisfying_mask(formula.operand)
        if isinstance(formula, And):
            result = self._full
            for operand in formula.operands:
                result &= self.satisfying_mask(operand)
            return result
        if isinstance(formula, Or):
            result = 0
            for operand in formula.operands:
                result |= self.satisfying_mask(operand)
            return result
        if isinstance(formula, Knows):
            return self._evaluate_knows(formula.agent, self.satisfying_mask(formula.operand))
        if isinstance(formula, EveryoneKnows):
            return self._evaluate_everyone_knows(formula.group,
                                                 self.satisfying_mask(formula.operand))
        if isinstance(formula, CommonKnowledge):
            return self._evaluate_common_knowledge(formula.group,
                                                   self.satisfying_mask(formula.operand))
        if isinstance(formula, Next):
            return self._shift_earlier(self.satisfying_mask(formula.operand))
        if isinstance(formula, Previous):
            return self._shift_later(self.satisfying_mask(formula.operand))
        if isinstance(formula, AlwaysFuture):
            return self._always_future(self.satisfying_mask(formula.operand))
        if isinstance(formula, Always):
            return self._always(self.satisfying_mask(formula.operand))
        if isinstance(formula, Eventually):
            return self._eventually(self.satisfying_mask(formula.operand))
        raise ModelCheckingError(f"unsupported formula type: {type(formula).__name__}")

    # ------------------------------------------------------------------ temporal operators
    #
    # All five operators stay within each run's ``horizon + 1``-bit segment:
    # ``mask >> 1`` moves the value at ``(r, m + 1)`` onto ``(r, m)``, and the
    # final-time mask keeps the low bit of run ``r + 1`` from leaking into the
    # last time of run ``r`` (symmetrically for ``<< 1`` and time 0).

    def _shift_earlier(self, inner: int) -> int:
        """``⃝ φ``: the value at the next time, false at the final time."""
        return (inner >> 1) & ~self.system.time_mask(self.system.horizon)

    def _shift_later(self, inner: int) -> int:
        """``⊖ φ``: the value at the previous time, false at time 0."""
        return (inner << 1) & ~self.system.time_mask(0) & self._full

    def _always_future(self, inner: int) -> int:
        """``□ φ``: φ at every time from now to the horizon (suffix AND per run)."""
        final = self.system.time_mask(self.system.horizon)
        result = inner
        for _ in range(self.system.horizon):
            result &= ((result >> 1) & ~final) | final
        return result

    def _eventually(self, inner: int) -> int:
        """``◇ φ``: φ at some time from now to the horizon (suffix OR per run)."""
        final = self.system.time_mask(self.system.horizon)
        result = inner
        for _ in range(self.system.horizon):
            result |= (result >> 1) & ~final
        return result

    def _always(self, inner: int) -> int:
        """``⊡ φ``: φ at every time of the run — all-or-nothing per run segment."""
        initial = self.system.time_mask(0)
        whole_runs = self._always_future(inner) & initial
        result = whole_runs
        for _ in range(self.system.horizon):
            result |= (result << 1) & ~initial
        return result & self._full

    # ------------------------------------------------------------------ epistemic operators

    def _evaluate_knows(self, agent: int, inner: int) -> int:
        """``K_agent``: a class mask contained in ``inner`` contributes wholesale."""
        result = 0
        for class_mask in self.system.partition(agent).class_masks:
            if class_mask & ~inner == 0:
                result |= class_mask
        return result

    def _everyone_knows_mask(self, group: Group, inner: int) -> int:
        """The ``E_S`` mask given the operand's mask (no per-formula caching)."""
        if isinstance(group, str):
            if group != NONFAULTY:
                raise ModelCheckingError(f"unsupported group specification: {group!r}")
            # i must know φ wherever i is nonfaulty: (i ∈ N) ⇒ K_i φ, for all i.
            result = self._full
            for agent in range(self.system.n):
                knows = self._evaluate_knows(agent, inner)
                result &= knows | (self._full & ~self.system.nonfaulty_mask(agent))
            return result
        # Any other group kind is an explicit, point-independent collection of
        # agents; an indexical kind would need its own membership-mask case
        # like NONFAULTY above.
        if isinstance(group, (frozenset, set, tuple, list)):
            result = self._full
            for agent in group:
                result &= self._evaluate_knows(agent, inner)
            return result
        raise ModelCheckingError(f"unsupported group specification: {group!r}")

    def _evaluate_everyone_knows(self, group: Group, inner: int) -> int:
        return self._everyone_knows_mask(group, inner)

    def _evaluate_common_knowledge(self, group: Group, inner: int) -> int:
        """Greatest fixpoint of ``X = E_S(φ ∧ X)`` (standard characterization of ``C_S φ``)."""
        current = self._full
        while True:
            updated = current & self._everyone_knows_mask(group, inner & current)
            if updated == current:
                return updated
            current = updated

    # ------------------------------------------------------------------ word-array evaluation
    #
    # Mirrors ``_evaluate`` constructor by constructor on numpy uint64 word
    # arrays.  Every helper keeps its result canonical (tail bits of the last
    # word zero), so word-wise equality is set equality throughout.

    def _evaluate_words(self, formula: Formula) -> "npt.NDArray[Any]":
        system = self.system
        if isinstance(formula, TrueFormula):
            return self._full_words.copy()
        if isinstance(formula, InitEquals):
            return _words.mask_to_words(
                system.init_mask(formula.agent, formula.value), system.num_points)
        if isinstance(formula, DecidedEquals):
            return _words.mask_to_words(
                system.decided_mask(formula.agent, formula.value), system.num_points)
        if isinstance(formula, TimeEquals):
            return system.time_words(formula.time).copy()
        if isinstance(formula, IsNonfaulty):
            return system.nonfaulty_words(formula.agent).copy()
        if isinstance(formula, Not):
            return self._full_words & ~self.satisfying_words(formula.operand)
        if isinstance(formula, And):
            result = self._full_words.copy()
            for operand in formula.operands:
                result &= self.satisfying_words(operand)
            return result
        if isinstance(formula, Or):
            result = _words.zero_words(system.num_points)
            for operand in formula.operands:
                result |= self.satisfying_words(operand)
            return result
        if isinstance(formula, Knows):
            return self._knows_words(formula.agent, self.satisfying_words(formula.operand))
        if isinstance(formula, EveryoneKnows):
            return self._everyone_knows_words(formula.group,
                                              self.satisfying_words(formula.operand))
        if isinstance(formula, CommonKnowledge):
            return self._common_knowledge_words(formula.group,
                                                self.satisfying_words(formula.operand))
        if isinstance(formula, Next):
            return _words.shift_down_words(self.satisfying_words(formula.operand)) \
                & ~self._final_words
        if isinstance(formula, Previous):
            return _words.shift_up_words(self.satisfying_words(formula.operand),
                                         self._full_words) & ~self._initial_words
        if isinstance(formula, AlwaysFuture):
            return self._always_future_words(self.satisfying_words(formula.operand))
        if isinstance(formula, Always):
            return self._always_words(self.satisfying_words(formula.operand))
        if isinstance(formula, Eventually):
            return self._eventually_words(self.satisfying_words(formula.operand))
        raise ModelCheckingError(f"unsupported formula type: {type(formula).__name__}")

    def _always_future_words(self, inner: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
        """``□ φ`` on word arrays: the same suffix-AND pipeline as ``_always_future``."""
        final = self._final_words
        result = inner.copy()
        for _ in range(self.system.horizon):
            result &= (_words.shift_down_words(result) & ~final) | final
        return result

    def _eventually_words(self, inner: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
        """``◇ φ`` on word arrays: suffix OR per run."""
        final = self._final_words
        result = inner.copy()
        for _ in range(self.system.horizon):
            result |= _words.shift_down_words(result) & ~final
        return result

    def _always_words(self, inner: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
        """``⊡ φ`` on word arrays: all-or-nothing per run segment."""
        initial = self._initial_words
        result = self._always_future_words(inner) & initial
        for _ in range(self.system.horizon):
            result |= _words.shift_up_words(result, self._full_words) & ~initial
        return result

    def _knows_words(self, agent: int, inner: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
        """``K_agent`` on word arrays.

        Two vectorized strategies, selected by the agent's class count:

        * **dense** (few classes): AND each row of the stacked
          ``(num_classes, num_words)`` class-mask matrix against ``~inner``
          and OR the fully-contained rows back together — pure word-level
          AND/OR, no per-point data;
        * **bincount** (many classes): unpack ``inner`` to per-point bits and
          reduce per class id with :func:`repro.logic.words.class_all`, which
          stays linear in points regardless of how many classes there are.
        """
        import numpy as np
        partition = self.system.partition(agent)
        num_classes = len(partition.class_masks)
        if num_classes <= _words.DENSE_CLASS_LIMIT:
            matrix = self.system.partition_words(agent)
            if not len(matrix):
                return _words.zero_words(self.system.num_points)
            escapes = np.bitwise_and(matrix, ~inner[np.newaxis, :])
            contained = ~escapes.any(axis=1)
            if not contained.any():
                return _words.zero_words(self.system.num_points)
            return np.bitwise_or.reduce(matrix[contained], axis=0)
        class_ids = self.system.class_id_array(agent)
        bits = _words.unpack_words(inner, self.system.num_points)
        return _words.pack_bits(_words.class_all(class_ids, num_classes, bits))

    def _everyone_knows_words(self, group: Group,
                              inner: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
        """``E_S`` on word arrays (same NONFAULTY indexical handling as the int path)."""
        if isinstance(group, str):
            if group != NONFAULTY:
                raise ModelCheckingError(f"unsupported group specification: {group!r}")
            result = self._full_words.copy()
            for agent in range(self.system.n):
                knows = self._knows_words(agent, inner)
                result &= knows | (self._full_words & ~self.system.nonfaulty_words(agent))
            return result
        if isinstance(group, (frozenset, set, tuple, list)):
            result = self._full_words.copy()
            for agent in group:
                result &= self._knows_words(agent, inner)
            return result
        raise ModelCheckingError(f"unsupported group specification: {group!r}")

    def _common_knowledge_words(self, group: Group,
                                inner: "npt.NDArray[Any]") -> "npt.NDArray[Any]":
        """Greatest fixpoint of ``X = E_S(φ ∧ X)`` on word arrays."""
        import numpy as np
        current = self._full_words.copy()
        while True:
            updated = current & self._everyone_knows_words(group, inner & current)
            if np.array_equal(updated, current):
                return updated
            current = updated


def satisfying_points(system: InterpretedSystem, formula: Formula) -> PointSet:
    """One-shot evaluation of ``formula`` on ``system`` (no checker reuse)."""
    return ModelChecker(system).satisfying_points(formula)


def holds(system: InterpretedSystem, formula: Formula, point: Point) -> bool:
    """One-shot check of ``formula`` at a single point."""
    return ModelChecker(system).holds(formula, point)


def valid(system: InterpretedSystem, formula: Formula) -> bool:
    """One-shot validity check of ``formula`` on ``system``."""
    return ModelChecker(system).valid(formula)
