"""Bitset-based model checking of epistemic temporal formulas over finite systems.

The evaluator computes, for each sub-formula, the set of points of the
interpreted system at which it holds (memoised per formula object).  Point sets
are dense bitmasks over the index ``run_index * (horizon + 1) + time`` (one
Python ``int`` per formula), so the propositional connectives are single
big-integer operations, the temporal operators are shift-and-mask pipelines
over per-run segments, and the knowledge operators are sweeps over the
system's interned per-agent equivalence-class masks.  The public API still
speaks sets of points: :meth:`ModelChecker.satisfying_points` returns a
:class:`~repro.systems.points.PointSet`, a drop-in stand-in for the previous
``frozenset[Point]`` representation.  A straightforward set-based evaluator is
retained in :mod:`repro.logic.reference` as a differential-testing oracle.

Temporal operators are given the natural *bounded-horizon* semantics: ``⃝ φ``
is false at the final time of the system (there is no next point), and ``□``,
``⊡``, ``◇`` quantify over the times that exist in the system.  The library
only evaluates knowledge-based-program tests at times strictly below the
horizon, where the bounded and unbounded semantics agree for the formulas the
paper uses (their temporal depth is one).
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..core.errors import ModelCheckingError
from ..systems.interpreted import InterpretedSystem
from ..systems.points import Point, PointSet
from .formula import (
    Always,
    AlwaysFuture,
    And,
    CommonKnowledge,
    DecidedEquals,
    Eventually,
    EveryoneKnows,
    Formula,
    Group,
    InitEquals,
    IsNonfaulty,
    Knows,
    Next,
    NONFAULTY,
    Not,
    Or,
    Previous,
    TimeEquals,
    TrueFormula,
)

__all__ = ["ModelChecker", "PointSet", "holds", "satisfying_points", "valid"]


class ModelChecker:
    """Evaluates formulas over one interpreted system, caching per-formula results."""

    def __init__(self, system: InterpretedSystem) -> None:
        self.system = system
        self._cache: Dict[Formula, int] = {}
        self._full: int = system.full_mask
        self._all_points: PointSet = system.point_set(self._full)

    # ------------------------------------------------------------------ public API

    def satisfying_points(self, formula: Formula) -> PointSet:
        """The set of points at which ``formula`` holds."""
        return self.system.point_set(self.satisfying_mask(formula))

    def satisfying_mask(self, formula: Formula) -> int:
        """The satisfying set as a raw bitmask over the dense point index."""
        mask = self._cache.get(formula)
        if mask is None:
            mask = self._evaluate(formula)
            self._cache[formula] = mask
        return mask

    def holds(self, formula: Formula, point: Point) -> bool:
        """Whether ``formula`` holds at ``point``."""
        return point in self.satisfying_points(formula)

    def valid(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at every point of the system."""
        return self.satisfying_mask(formula) == self._full

    def counterexamples(self, formula: Formula, limit: int = 5) -> list[Point]:
        """Up to ``limit`` points at which ``formula`` fails (for diagnostics).

        Counterexamples are listed in the system's deterministic point order
        (run-major, time-minor), independent of the set representation.
        """
        failing = self._full & ~self.satisfying_mask(formula)
        return list(self.system.point_set(failing).first(limit))

    # ------------------------------------------------------------------ group resolution

    def group_members(self, group: Group, point: Point) -> FrozenSet[int]:
        """Resolve a (possibly indexical) group at a point."""
        if group == NONFAULTY:
            return self.system.nonfaulty(point)
        if isinstance(group, frozenset):
            return group
        if isinstance(group, (set, tuple, list)):
            return frozenset(group)
        raise ModelCheckingError(f"unsupported group specification: {group!r}")

    # ------------------------------------------------------------------ evaluation

    def _evaluate(self, formula: Formula) -> int:
        if isinstance(formula, TrueFormula):
            return self._full
        if isinstance(formula, InitEquals):
            return self.system.init_mask(formula.agent, formula.value)
        if isinstance(formula, DecidedEquals):
            return self.system.decided_mask(formula.agent, formula.value)
        if isinstance(formula, TimeEquals):
            return self.system.time_mask(formula.time)
        if isinstance(formula, IsNonfaulty):
            return self.system.nonfaulty_mask(formula.agent)
        if isinstance(formula, Not):
            return self._full & ~self.satisfying_mask(formula.operand)
        if isinstance(formula, And):
            result = self._full
            for operand in formula.operands:
                result &= self.satisfying_mask(operand)
            return result
        if isinstance(formula, Or):
            result = 0
            for operand in formula.operands:
                result |= self.satisfying_mask(operand)
            return result
        if isinstance(formula, Knows):
            return self._evaluate_knows(formula.agent, self.satisfying_mask(formula.operand))
        if isinstance(formula, EveryoneKnows):
            return self._evaluate_everyone_knows(formula.group,
                                                 self.satisfying_mask(formula.operand))
        if isinstance(formula, CommonKnowledge):
            return self._evaluate_common_knowledge(formula.group,
                                                   self.satisfying_mask(formula.operand))
        if isinstance(formula, Next):
            return self._shift_earlier(self.satisfying_mask(formula.operand))
        if isinstance(formula, Previous):
            return self._shift_later(self.satisfying_mask(formula.operand))
        if isinstance(formula, AlwaysFuture):
            return self._always_future(self.satisfying_mask(formula.operand))
        if isinstance(formula, Always):
            return self._always(self.satisfying_mask(formula.operand))
        if isinstance(formula, Eventually):
            return self._eventually(self.satisfying_mask(formula.operand))
        raise ModelCheckingError(f"unsupported formula type: {type(formula).__name__}")

    # ------------------------------------------------------------------ temporal operators
    #
    # All five operators stay within each run's ``horizon + 1``-bit segment:
    # ``mask >> 1`` moves the value at ``(r, m + 1)`` onto ``(r, m)``, and the
    # final-time mask keeps the low bit of run ``r + 1`` from leaking into the
    # last time of run ``r`` (symmetrically for ``<< 1`` and time 0).

    def _shift_earlier(self, inner: int) -> int:
        """``⃝ φ``: the value at the next time, false at the final time."""
        return (inner >> 1) & ~self.system.time_mask(self.system.horizon)

    def _shift_later(self, inner: int) -> int:
        """``⊖ φ``: the value at the previous time, false at time 0."""
        return (inner << 1) & ~self.system.time_mask(0) & self._full

    def _always_future(self, inner: int) -> int:
        """``□ φ``: φ at every time from now to the horizon (suffix AND per run)."""
        final = self.system.time_mask(self.system.horizon)
        result = inner
        for _ in range(self.system.horizon):
            result &= ((result >> 1) & ~final) | final
        return result

    def _eventually(self, inner: int) -> int:
        """``◇ φ``: φ at some time from now to the horizon (suffix OR per run)."""
        final = self.system.time_mask(self.system.horizon)
        result = inner
        for _ in range(self.system.horizon):
            result |= (result >> 1) & ~final
        return result

    def _always(self, inner: int) -> int:
        """``⊡ φ``: φ at every time of the run — all-or-nothing per run segment."""
        initial = self.system.time_mask(0)
        whole_runs = self._always_future(inner) & initial
        result = whole_runs
        for _ in range(self.system.horizon):
            result |= (result << 1) & ~initial
        return result & self._full

    # ------------------------------------------------------------------ epistemic operators

    def _evaluate_knows(self, agent: int, inner: int) -> int:
        """``K_agent``: a class mask contained in ``inner`` contributes wholesale."""
        result = 0
        for class_mask in self.system.partition(agent).class_masks:
            if class_mask & ~inner == 0:
                result |= class_mask
        return result

    def _everyone_knows_mask(self, group: Group, inner: int) -> int:
        """The ``E_S`` mask given the operand's mask (no per-formula caching)."""
        if isinstance(group, str):
            if group != NONFAULTY:
                raise ModelCheckingError(f"unsupported group specification: {group!r}")
            # i must know φ wherever i is nonfaulty: (i ∈ N) ⇒ K_i φ, for all i.
            result = self._full
            for agent in range(self.system.n):
                knows = self._evaluate_knows(agent, inner)
                result &= knows | (self._full & ~self.system.nonfaulty_mask(agent))
            return result
        # Any other group kind is an explicit, point-independent collection of
        # agents; an indexical kind would need its own membership-mask case
        # like NONFAULTY above.
        if isinstance(group, (frozenset, set, tuple, list)):
            result = self._full
            for agent in group:
                result &= self._evaluate_knows(agent, inner)
            return result
        raise ModelCheckingError(f"unsupported group specification: {group!r}")

    def _evaluate_everyone_knows(self, group: Group, inner: int) -> int:
        return self._everyone_knows_mask(group, inner)

    def _evaluate_common_knowledge(self, group: Group, inner: int) -> int:
        """Greatest fixpoint of ``X = E_S(φ ∧ X)`` (standard characterization of ``C_S φ``)."""
        current = self._full
        while True:
            updated = current & self._everyone_knows_mask(group, inner & current)
            if updated == current:
                return updated
            current = updated


def satisfying_points(system: InterpretedSystem, formula: Formula) -> PointSet:
    """One-shot evaluation of ``formula`` on ``system`` (no checker reuse)."""
    return ModelChecker(system).satisfying_points(formula)


def holds(system: InterpretedSystem, formula: Formula, point: Point) -> bool:
    """One-shot check of ``formula`` at a single point."""
    return ModelChecker(system).holds(formula, point)


def valid(system: InterpretedSystem, formula: Formula) -> bool:
    """One-shot validity check of ``formula`` on ``system``."""
    return ModelChecker(system).valid(formula)
