"""Fundamental value, action, and message types shared across the library.

The paper models binary Eventual Byzantine Agreement (EBA): each agent starts
with a preference in ``{0, 1}`` and may eventually perform one of the actions
``decide(0)``, ``decide(1)``, or ``noop``.  This module provides small, hashable
representations for those concepts so they can be used inside frozen local
states, dictionary keys, and trace records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

#: Type alias for an agent identifier.  Agents are numbered ``0 .. n-1``.
AgentId = int

#: Type alias for a binary preference / decision value.
Value = int

#: The two legal binary values.
VALUES: tuple[Value, Value] = (0, 1)

#: Sentinel used throughout the paper for "no decision yet" / "no message".
#: We keep it as ``None`` so that states remain simple and hashable.
UNDECIDED: Optional[Value] = None


class ActionKind(enum.Enum):
    """The kind of action an agent can perform in a round."""

    NOOP = "noop"
    DECIDE = "decide"


@dataclass(frozen=True)
class Action:
    """An action performed by an agent in a round.

    Attributes
    ----------
    kind:
        Whether the action is a decision or a no-op.
    value:
        The decided value (0 or 1) when ``kind`` is :attr:`ActionKind.DECIDE`,
        otherwise ``None``.
    """

    kind: ActionKind
    value: Optional[Value] = None

    def __post_init__(self) -> None:
        if self.kind is ActionKind.DECIDE:
            if self.value not in VALUES:
                raise ValueError(f"decide action requires a value in {VALUES}, got {self.value!r}")
        else:
            if self.value is not None:
                raise ValueError("noop action must not carry a value")

    @property
    def is_decision(self) -> bool:
        """Whether this action decides a value."""
        return self.kind is ActionKind.DECIDE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_decision:
            return f"decide({self.value})"
        return "noop"


#: The unique no-op action (actions are value objects, so one instance suffices).
NOOP: Action = Action(ActionKind.NOOP)


def decide(value: Value) -> Action:
    """Return the action ``decide(value)``.

    Parameters
    ----------
    value:
        Either 0 or 1.
    """
    return Action(ActionKind.DECIDE, value)


#: The action deciding 0.
DECIDE_0: Action = decide(0)

#: The action deciding 1.
DECIDE_1: Action = decide(1)


def other_value(value: Value) -> Value:
    """Return ``1 - value`` after validating that ``value`` is binary."""
    if value not in VALUES:
        raise ValueError(f"expected a binary value, got {value!r}")
    return 1 - value


def validate_value(value: Value) -> Value:
    """Validate that ``value`` is 0 or 1 and return it."""
    if value not in VALUES:
        raise ValueError(f"expected a binary value, got {value!r}")
    return value


#: A preference vector assigns an initial preference to every agent, by index.
PreferenceVector = tuple[Value, ...]


def validate_preferences(preferences: Union[PreferenceVector, list[Value]], n: int) -> PreferenceVector:
    """Validate and normalize an initial-preference vector.

    Parameters
    ----------
    preferences:
        A sequence of length ``n`` whose entries are all 0 or 1.
    n:
        The expected number of agents.

    Returns
    -------
    tuple
        The preferences as an immutable tuple.
    """
    prefs = tuple(preferences)
    if len(prefs) != n:
        raise ValueError(f"expected {n} preferences, got {len(prefs)}")
    for agent, value in enumerate(prefs):
        if value not in VALUES:
            raise ValueError(f"agent {agent} has non-binary preference {value!r}")
    return prefs
