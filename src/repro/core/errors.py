"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch library failures without masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a protocol, context, or failure model is mis-configured.

    Examples include requesting more faulty agents than agents, or pairing an
    action protocol with an information-exchange protocol it does not support.
    """


class FailureModelError(ReproError):
    """Raised when a failure pattern violates the failure model it claims to obey.

    The sending-omissions model ``SO(t)`` requires that only faulty agents omit
    messages and that at most ``t`` agents are faulty; crash failures further
    require omissions to be "suffix closed" per receiver set.
    """


class ProtocolError(ReproError):
    """Raised when an action protocol produces an illegal action.

    For example, deciding twice, deciding a non-binary value, or emitting a
    message not in the information-exchange protocol's alphabet.
    """


class SpecificationViolation(ReproError):
    """Raised (optionally) when a trace violates the EBA specification.

    The checkers in :mod:`repro.spec.eba` normally return a report object; this
    exception is used by the ``require_*`` convenience wrappers.
    """


class ModelCheckingError(ReproError):
    """Raised when an epistemic formula cannot be evaluated on a system.

    Typical causes: referring to an agent outside the system, or evaluating a
    temporal operator past the system horizon.
    """


class StoreError(ReproError):
    """Raised when the artifact store cannot key, read, or write an artifact.

    Note that a *corrupted* cache entry does not raise: the store treats it as
    a miss (deleting the entry) so cached pipelines degrade to recomputation
    rather than crashing.  This error covers genuine misuse, e.g. asking for a
    content key of an object the canonical hasher has no rule for.
    """


class ServiceError(ReproError):
    """Raised by the job-server subsystem (:mod:`repro.service`).

    Covers malformed wire-format requests (unknown protocol key, bad pattern
    encoding), protocol-level client failures (submitting to a job id that does
    not exist), and a submitted job that finished in the ``failed`` state —
    the *server* survives worker exceptions; the error surfaces on the client
    that asked for the result.
    """


class ServiceTimeout(ServiceError):
    """Raised when a client-side wait (``submit_and_wait``) exceeds its deadline.

    The job keeps running on the server; re-submitting the same request later
    coalesces onto it (or hits the finished artifact) rather than recomputing.
    """


class ServiceUnavailable(ServiceError):
    """Raised when the job queue rejects a submission under backpressure.

    The server maps this to HTTP 503 with a ``Retry-After`` header;
    :attr:`retry_after` is the suggested delay in seconds.  The request was
    *not* enqueued — re-submitting later is safe (content addressing makes the
    retry coalesce or hit the store if someone else got through meanwhile).
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after
