"""Helpers for working with sets of agents.

Agents are identified by integers ``0 .. n-1``.  The paper frequently reasons
about the set of nonfaulty agents ``N`` and its complement; this module keeps
those small utilities in one place.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence

from .errors import ConfigurationError
from .types import AgentId


def all_agents(n: int) -> tuple[AgentId, ...]:
    """Return the tuple of agent identifiers ``(0, 1, ..., n-1)``."""
    if n <= 0:
        raise ConfigurationError(f"number of agents must be positive, got {n}")
    return tuple(range(n))


def validate_agent(agent: AgentId, n: int) -> AgentId:
    """Validate that ``agent`` is a legal agent id for an ``n``-agent system."""
    if not isinstance(agent, int) or isinstance(agent, bool):
        raise ConfigurationError(f"agent ids must be integers, got {agent!r}")
    if not 0 <= agent < n:
        raise ConfigurationError(f"agent id {agent} out of range for n={n}")
    return agent


def validate_agent_set(agents: Iterable[AgentId], n: int) -> FrozenSet[AgentId]:
    """Validate a collection of agent ids and return it as a frozenset."""
    result = frozenset(agents)
    for agent in result:
        validate_agent(agent, n)
    return result


def complement(agents: Iterable[AgentId], n: int) -> FrozenSet[AgentId]:
    """Return the agents in ``0..n-1`` that are *not* in ``agents``."""
    present = validate_agent_set(agents, n)
    return frozenset(range(n)) - present


def format_agent_set(agents: Sequence[AgentId] | FrozenSet[AgentId]) -> str:
    """Render an agent set compactly for reports (e.g. ``{0, 2, 5}``)."""
    return "{" + ", ".join(str(a) for a in sorted(agents)) + "}"
