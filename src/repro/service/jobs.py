"""Jobs and the thread-safe, coalescing job queue.

A :class:`Job` is one computation the service has been asked for, identified
by its **content key** (see :func:`repro.service.wire.request_key`).  The
:class:`JobQueue` is the rendezvous that makes the service scale under
identical load:

* **In-flight coalescing** — submitting a request whose key is already queued
  or running returns the *existing* job; the second client polls the same job
  id and fetches the same payload.  N concurrent identical submissions cost
  one computation.
* **Warm-store hits** — for ``run`` and ``theorem`` requests the job key *is*
  the artifact-store key of the finished artifact, and for every kind the
  executing worker goes through the store anyway; a submission whose artifact
  is already cached completes at submit time without ever entering the queue.
* **Failure isolation** — a worker exception marks the job ``failed`` (with
  the traceback) and the server keeps serving; clients see the error when
  they poll.  Re-submitting a failed key starts a fresh attempt.

Since the crash-safety work the queue also carries the *supervision* state:

* **Bounded retry with exponential backoff** — a worker reporting a
  *retryable* failure (transient IO, a broken process pool, a wall-clock
  timeout) re-enqueues the job with delay ``retry_backoff * 2**(attempt-1)``
  until ``max_retries`` attempts are exhausted, then the job fails for good.
* **Backpressure** — with ``max_queue`` set, a submission that would push the
  pending depth past the bound raises
  :class:`~repro.core.errors.ServiceUnavailable` (the server maps it to HTTP
  503 + ``Retry-After``) instead of letting the queue grow without bound.
* **Cooperative cancellation of running jobs** — cancelling a running job
  sets :attr:`Job.cancel_requested`; the executing worker checks the flag
  between sweep chunks and confirms the cancellation (see
  :mod:`repro.service.workers`).
* **Journaling** — with a :class:`~repro.service.journal.JobJournal`
  attached, every transition is appended (and flushed) under the queue lock,
  so a killed server recovers its job table on restart.

States move ``queued → running → done | failed`` (with ``running → queued``
on a retryable failure); ``cancelled`` is reachable from ``queued``
immediately and from ``running`` cooperatively.  All transitions happen under
one lock, and ``next_job`` blocks on the matching condition, so the queue is
safe for any number of HTTP handler threads and worker threads.
"""

from __future__ import annotations

import heapq
import threading
import time
import weakref
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.errors import ServiceError, ServiceUnavailable
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .wire import JobRequest

# Process-wide mirrors of the queue's per-instance counters (the pinned
# ``stats()`` schema keeps its per-queue meaning; the registry aggregates
# across every queue the process ever creates — see repro.obs.metrics).
_M_SUBMITTED = _metrics.counter("repro_jobs_submitted_total",
                                "Job submissions, coalesced or not")
_M_COALESCED = _metrics.counter("repro_jobs_coalesced_total",
                                "Submissions absorbed by a live job")
_M_STORE_HITS = _metrics.counter("repro_jobs_store_hits_total",
                                 "Submissions answered from the warm artifact store")
_M_EXECUTED = _metrics.counter("repro_jobs_executed_total",
                               "Jobs a worker computed to completion")
_M_FAILED = _metrics.counter("repro_jobs_failed_total", "Jobs that failed for good")
_M_CANCELLED = _metrics.counter("repro_jobs_cancelled_total", "Jobs cancelled")
_M_RETRIES = _metrics.counter("repro_jobs_retries_total",
                              "Retryable failures that re-enqueued a job")
_M_TIMEOUTS = _metrics.counter("repro_jobs_timeouts_total",
                               "Per-job wall-clock timeouts")
_M_REJECTED = _metrics.counter("repro_jobs_rejected_total",
                               "Submissions refused under backpressure")
_M_WALL = _metrics.histogram("repro_job_wall_seconds",
                             "Execution wall time of completed jobs")
_G_QUEUE_DEPTH = _metrics.gauge("repro_queue_depth",
                                "Jobs currently queued (latest live queue)")
_G_IN_FLIGHT = _metrics.gauge("repro_jobs_in_flight",
                              "Jobs currently running (latest live queue)")

#: The job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which a job will not make further progress.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class Job:
    """One submitted computation and its lifecycle bookkeeping.

    Mutable by design — the queue mutates state under its lock; everything a
    handler reads (:meth:`describe`) is copied out under the same lock.
    """

    def __init__(self, request: JobRequest) -> None:
        self.request = request
        self.state = QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        #: How many submissions this job absorbed (1 = never coalesced).
        self.submissions = 1
        #: How many times a worker has picked this job up.
        self.attempts = 0
        #: Cooperative-cancel flag: set by :meth:`JobQueue.cancel` on a
        #: running job; the worker's chunk-boundary checks confirm it.
        self.cancel_requested = False
        #: Whether this job was rebuilt from the journal at startup.
        self.recovered = False
        #: Live progress view (phase/done/total/eta), written by the executing
        #: worker's progress capture and surfaced by ``GET /jobs/<id>``.
        #: A benign single-writer race: the worker replaces the whole dict.
        self.progress: Optional[dict] = None
        #: Monotonic stamp of the last enqueue (submit or retry), closing the
        #: ``job.queue_wait`` trace span at worker pickup.
        self.queued_mono: Optional[float] = None

    @property
    def key(self) -> str:
        return self.request.key

    @property
    def wall_time(self) -> Optional[float]:
        """Execution wall time in seconds (``None`` until the job finishes)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def mark_recovered(self, state: str, result: Optional[dict] = None,
                       error: Optional[str] = None) -> None:
        """Put a journal-replayed job directly into its terminal state."""
        assert state in TERMINAL_STATES
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = self.submitted_at
        self.recovered = True

    def describe(self) -> dict:
        """The JSON-safe status view (``GET /jobs/<id>``)."""
        info = {
            "job": self.key,
            "kind": self.request.kind,
            "state": self.state,
            "submissions": self.submissions,
        }
        if self.wall_time is not None:
            info["wall_time"] = round(self.wall_time, 6)
        if self.error is not None:
            info["error"] = self.error
        if self.attempts > 1:
            info["attempts"] = self.attempts
        if self.cancel_requested and self.state not in TERMINAL_STATES:
            info["cancel_requested"] = True
        if self.recovered:
            info["recovered"] = True
        if self.progress is not None and self.state == RUNNING:
            info["progress"] = dict(self.progress)
        return info


class JobQueue:
    """Thread-safe FIFO job queue with content-key coalescing and counters.

    The queue owns every job the server has seen (``_jobs`` maps key → job,
    including finished ones, so late polls still resolve); ``_pending`` holds
    the keys awaiting a worker and ``_delayed`` the backoff-scheduled retries.
    One lock guards everything — operations are dictionary-sized, so a single
    lock is simpler and plenty fast next to simulations that run for
    milliseconds to minutes.

    Parameters
    ----------
    max_queue:
        Backpressure bound on the pending depth (queued + delayed retries);
        ``None`` = unbounded.  Exceeding it raises
        :class:`~repro.core.errors.ServiceUnavailable` at submit time.
    max_retries:
        How many times a retryable failure re-enqueues a job before it fails
        for good (0 = fail on the first error, the pre-journal behaviour).
    retry_backoff:
        First retry delay in seconds; doubles per attempt.
    retry_after:
        The ``Retry-After`` hint (seconds) carried by backpressure rejections.
    """

    def __init__(self, max_queue: Optional[int] = None, max_retries: int = 0,
                 retry_backoff: float = 0.5, retry_after: float = 1.0) -> None:
        if max_queue is not None and max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        if max_retries < 0:
            raise ServiceError(f"max_retries must be non-negative, got {max_retries}")
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._pending: Deque[str] = deque()
        self._delayed: List[Tuple[float, int, str]] = []  # (ready_at, seq, key)
        self._delay_seq = 0
        #: Jobs currently in state QUEUED.  This — not ``len(_pending)`` —
        #: is the backpressure depth: cancelling a queued job leaves its key
        #: in the deque/heap (skipped at pickup), and stale keys must not
        #: occupy ``max_queue`` slots against fresh submissions.
        self._queued = 0
        self._stopped = False
        self.max_queue = max_queue
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_after = retry_after
        #: Optional :class:`~repro.service.journal.JobJournal`; transitions are
        #: appended under the queue lock once attached.
        self.journal = None
        #: Journal-recovery counts (set by ``JobJournal.recover_into``).
        self.recovered: Dict[str, int] = {"done": 0, "failed": 0,
                                          "cancelled": 0, "requeued": 0,
                                          "dropped": 0}
        # -- counters (reported by /stats) ----------------------------------
        self.submitted = 0    # every submission, coalesced or not
        self.coalesced = 0    # submissions absorbed by a live (queued/running) job
        self.store_hits = 0   # submissions answered from the warm artifact store
        self.executed = 0     # jobs a worker actually computed to completion
        self.failed = 0
        self.cancelled = 0
        self.retries = 0      # retryable failures that re-enqueued a job
        self.timeouts = 0     # wall-clock timeouts (a subset of retries/failed)
        self.rejected = 0     # submissions refused under backpressure
        # Live-depth gauges track the most recently created queue: the gauge
        # callbacks hold only a weakref, so a dead queue reads as 0 rather
        # than keeping itself alive through the process-wide registry.
        ref = weakref.ref(self)
        _G_QUEUE_DEPTH.set_function(
            lambda: queue._queued if (queue := ref()) is not None else 0)
        _G_IN_FLIGHT.set_function(
            lambda: queue._in_flight_count() if (queue := ref()) is not None else 0)

    def _in_flight_count(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == RUNNING)

    # ------------------------------------------------------------------ journal

    def _record(self, event: str, job: Job, **fields: object) -> None:
        """Append a journal event (no-op without a journal).  Caller holds
        the lock, so journal order always matches transition order."""
        if self.journal is not None:
            self.journal.record(event, job.key, **fields)

    # ------------------------------------------------------------------ submit

    def submit(self, request: JobRequest,
               warm_result: Optional[dict] = None) -> tuple:
        """Register a submission; returns ``(job, coalesced)``.

        ``warm_result`` is the pre-rendered payload when the submitter found
        the artifact already in the store: the job is created *born finished*
        (state ``done``), counted as a store hit, and never queued.

        Coalescing: a live job (queued/running) with the same key absorbs the
        submission.  A finished job also absorbs it — ``done`` re-serves the
        retained payload (counted as a hit: the result already exists), while
        ``failed``/``cancelled`` re-enqueue a fresh attempt under the same key.

        Raises :class:`~repro.core.errors.ServiceUnavailable` (without
        enqueueing) when ``max_queue`` is set and the pending depth is at the
        bound.
        """
        with self._lock:
            self.submitted += 1
            job = self._jobs.get(request.key)
            if job is not None:
                if job.state in (QUEUED, RUNNING):
                    job.submissions += 1
                    self.coalesced += 1
                    _M_SUBMITTED.inc()
                    _M_COALESCED.inc()
                    return job, True
                if job.state == DONE:
                    job.submissions += 1
                    self.store_hits += 1
                    _M_SUBMITTED.inc()
                    _M_STORE_HITS.inc()
                    return job, False
                # failed / cancelled: fall through to a fresh attempt.
            if warm_result is None and self.max_queue is not None:
                if self._queued >= self.max_queue:
                    self.submitted -= 1  # never admitted
                    self.rejected += 1
                    _M_REJECTED.inc()
                    raise ServiceUnavailable(
                        f"job queue is full ({self._queued} pending >= "
                        f"max_queue={self.max_queue}); retry in "
                        f"{self.retry_after:g}s",
                        retry_after=self.retry_after)
            job = Job(request)
            self._jobs[request.key] = job
            if warm_result is not None:
                job.state = DONE
                job.started_at = job.finished_at = time.time()
                job.result = warm_result
                self.store_hits += 1
                _M_SUBMITTED.inc()
                _M_STORE_HITS.inc()
                self._record("submit", job, kind=request.kind, body=request.body)
                self._record("done", job, result=warm_result)
                return job, False
            self._pending.append(request.key)
            self._queued += 1
            job.queued_mono = time.monotonic()
            _M_SUBMITTED.inc()
            self._record("submit", job, kind=request.kind, body=request.body)
            self._ready.notify()
            return job, False

    def adopt(self, job: Job) -> None:
        """Install a journal-recovered terminal job into the table verbatim."""
        with self._lock:
            self._jobs[job.key] = job

    # ------------------------------------------------------------------ lookup

    def get(self, key: str) -> Job:
        """The job with this id; raises :class:`ServiceError` if unknown."""
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            raise ServiceError(f"unknown job {key!r}")
        return job

    def cancel(self, key: str) -> Job:
        """Cancel a job: queued jobs immediately, running jobs cooperatively.

        A queued job moves straight to ``cancelled``.  A running job gets
        :attr:`Job.cancel_requested` set — the worker observes the flag at its
        next chunk boundary and confirms via :meth:`mark_cancelled`; until
        then the state stays ``running`` (with ``cancel_requested`` visible in
        the status view).  Finished jobs are left alone.
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                raise ServiceError(f"unknown job {key!r}")
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished_at = time.time()
                self._queued -= 1
                self.cancelled += 1
                self._record("cancelled", job)
            elif job.state == RUNNING:
                job.cancel_requested = True
                # Journaled so a crash before the worker's next chunk-boundary
                # check recovers the job as cancelled, not as a fresh re-run.
                self._record("cancel_requested", job)
            return job

    # ------------------------------------------------------------------ worker side

    def _promote_due_locked(self) -> None:
        """Move backoff-expired retries from the delay heap to the FIFO."""
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, key = heapq.heappop(self._delayed)
            self._pending.append(key)

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a job is available (skipping cancelled ones) or the
        queue stops; returns the job already moved to ``running``, or ``None``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                self._promote_due_locked()
                while self._pending:
                    key = self._pending.popleft()
                    job = self._jobs[key]
                    if job.state != QUEUED:  # cancelled while waiting
                        continue
                    self._queued -= 1
                    job.state = RUNNING
                    job.attempts += 1
                    job.started_at = time.time()
                    if job.queued_mono is not None and _trace.is_active():
                        _trace.complete(
                            "job.queue_wait", job.queued_mono, time.monotonic(),
                            "service",
                            {"job": key[:16], "attempt": job.attempts})
                    job.queued_mono = None
                    self._record("running", job)
                    return job
                if self._stopped:
                    return None
                wait = None
                if self._delayed:
                    wait = max(0.0, self._delayed[0][0] - time.monotonic())
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._ready.wait(timeout=wait)

    def _is_current(self, job: Job, attempt: Optional[int]) -> bool:
        """Whether a worker outcome still applies: the job is running and the
        report comes from its latest attempt.  An abandoned (timed-out)
        execution thread finishing late fails both tests and is ignored."""
        if job.state != RUNNING:
            return False
        return attempt is None or attempt == job.attempts

    def finish(self, job: Job, result: dict,
               attempt: Optional[int] = None) -> None:
        """Mark a running job done with its rendered payload.

        ``attempt`` is the attempt token the worker captured at pickup;
        a stale token (the job timed out and was retried meanwhile) makes the
        call a no-op.
        """
        with self._lock:
            if not self._is_current(job, attempt):
                return
            job.result = result
            job.error = None
            job.state = DONE
            job.finished_at = time.time()
            self.executed += 1
            _M_EXECUTED.inc()
            if job.started_at is not None:
                _M_WALL.observe(job.finished_at - job.started_at)
            self._record("done", job, result=result)

    def fail(self, job: Job, error: str, attempt: Optional[int] = None) -> None:
        """Mark a running job failed; the queue (and server) keep going."""
        with self._lock:
            self._fail_locked(job, error, attempt)

    def _fail_locked(self, job: Job, error: str, attempt: Optional[int]) -> None:
        if not self._is_current(job, attempt):
            return
        job.error = error
        job.state = FAILED
        job.finished_at = time.time()
        self.failed += 1
        _M_FAILED.inc()
        self._record("failed", job, error=error)

    def retry_or_fail(self, job: Job, error: str, retryable: bool,
                      attempt: Optional[int] = None,
                      timed_out: bool = False) -> str:
        """Handle a worker-reported failure: re-enqueue with backoff or fail.

        A retryable error re-enqueues the job (state back to ``queued``) after
        ``retry_backoff * 2**(attempt-1)`` seconds while attempts remain;
        anything else — or an exhausted retry budget — fails the job for good.
        Returns the resulting state.
        """
        with self._lock:
            if not self._is_current(job, attempt):
                return job.state
            if timed_out:
                self.timeouts += 1
                _M_TIMEOUTS.inc()
            if job.cancel_requested:
                # The client asked to cancel; a failure on the way out is a
                # cancellation, not something worth retrying.
                self._mark_cancelled_locked(job)
                return job.state
            if retryable and job.attempts <= self.max_retries:
                job.state = QUEUED
                job.started_at = None
                job.error = error
                self._queued += 1
                delay = self.retry_backoff * (2 ** (job.attempts - 1))
                self.retries += 1
                _M_RETRIES.inc()
                job.queued_mono = time.monotonic() + delay
                if _trace.is_active():
                    _trace.event("job.retry", "service", {
                        "job": job.key[:16], "attempt": job.attempts,
                        "delay": delay})
                self._delay_seq += 1
                heapq.heappush(self._delayed,
                               (time.monotonic() + delay, self._delay_seq,
                                job.key))
                self._record("retry", job, error=error)
                self._ready.notify()  # recompute wait deadlines
            else:
                self._fail_locked(job, error, attempt)
            return job.state

    def mark_cancelled(self, job: Job, attempt: Optional[int] = None) -> None:
        """Confirm a cooperative cancellation observed by the worker."""
        with self._lock:
            if not self._is_current(job, attempt):
                return
            self._mark_cancelled_locked(job)

    def _mark_cancelled_locked(self, job: Job) -> None:
        job.state = CANCELLED
        job.finished_at = time.time()
        self.cancelled += 1
        _M_CANCELLED.inc()
        self._record("cancelled", job)

    # ------------------------------------------------------------------ lifecycle

    def stop(self) -> None:
        """Wake every waiting worker with "no more jobs"."""
        with self._lock:
            self._stopped = True
            self._ready.notify_all()

    # ------------------------------------------------------------------ stats

    def jobs_snapshot(self) -> List[Job]:
        """The job table, copied under the lock (journal compaction input)."""
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> dict:
        """The queue's JSON-safe counters and per-job wall times (``/stats``)."""
        with self._lock:
            jobs: List[dict] = []
            queue_depth = 0  # QUEUED jobs, whether in the FIFO or delay heap
            in_flight = 0
            for job in self._jobs.values():
                if job.state == QUEUED:
                    queue_depth += 1
                elif job.state == RUNNING:
                    in_flight += 1
                entry = {"job": job.key, "kind": job.request.kind,
                         "state": job.state, "submissions": job.submissions}
                if job.wall_time is not None:
                    entry["wall_time"] = round(job.wall_time, 6)
                if job.attempts > 1:
                    entry["attempts"] = job.attempts
                jobs.append(entry)
            return {
                "queue_depth": queue_depth,
                "in_flight": in_flight,
                "submitted": self.submitted,
                "coalesced": self.coalesced,
                "store_hits": self.store_hits,
                "executed": self.executed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "rejected": self.rejected,
                "recovered": dict(self.recovered),
                "jobs": jobs,
            }


__all__ = ["CANCELLED", "DONE", "FAILED", "Job", "JobQueue", "QUEUED",
           "RUNNING", "TERMINAL_STATES"]
