"""Jobs and the thread-safe, coalescing job queue.

A :class:`Job` is one computation the service has been asked for, identified
by its **content key** (see :func:`repro.service.wire.request_key`).  The
:class:`JobQueue` is the rendezvous that makes the service scale under
identical load:

* **In-flight coalescing** — submitting a request whose key is already queued
  or running returns the *existing* job; the second client polls the same job
  id and fetches the same payload.  N concurrent identical submissions cost
  one computation.
* **Warm-store hits** — for ``run`` and ``theorem`` requests the job key *is*
  the artifact-store key of the finished artifact, and for every kind the
  executing worker goes through the store anyway; a submission whose artifact
  is already cached completes at submit time without ever entering the queue.
* **Failure isolation** — a worker exception marks the job ``failed`` (with
  the traceback) and the server keeps serving; clients see the error when
  they poll.  Re-submitting a failed key starts a fresh attempt.

States move ``queued → running → done | failed``; ``cancelled`` is reachable
only from ``queued`` (a running computation is not interrupted — its result
would land in the store anyway).  All transitions happen under one lock, and
``next_job`` blocks on the matching condition, so the queue is safe for any
number of HTTP handler threads and worker threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from ..core.errors import ServiceError
from .wire import JobRequest

#: The job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which a job will not make further progress.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class Job:
    """One submitted computation and its lifecycle bookkeeping.

    Mutable by design — the queue mutates state under its lock; everything a
    handler reads (:meth:`describe`) is copied out under the same lock.
    """

    def __init__(self, request: JobRequest) -> None:
        self.request = request
        self.state = QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        #: How many submissions this job absorbed (1 = never coalesced).
        self.submissions = 1

    @property
    def key(self) -> str:
        return self.request.key

    @property
    def wall_time(self) -> Optional[float]:
        """Execution wall time in seconds (``None`` until the job finishes)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def describe(self) -> dict:
        """The JSON-safe status view (``GET /jobs/<id>``)."""
        info = {
            "job": self.key,
            "kind": self.request.kind,
            "state": self.state,
            "submissions": self.submissions,
        }
        if self.wall_time is not None:
            info["wall_time"] = round(self.wall_time, 6)
        if self.error is not None:
            info["error"] = self.error
        return info


class JobQueue:
    """Thread-safe FIFO job queue with content-key coalescing and counters.

    The queue owns every job the server has seen (``_jobs`` maps key → job,
    including finished ones, so late polls still resolve); ``_pending`` holds
    the keys awaiting a worker.  One lock guards everything — operations are
    dictionary-sized, so a single lock is simpler and plenty fast next to
    simulations that run for milliseconds to minutes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._pending: Deque[str] = deque()
        self._stopped = False
        # -- counters (reported by /stats) ----------------------------------
        self.submitted = 0    # every submission, coalesced or not
        self.coalesced = 0    # submissions absorbed by a live (queued/running) job
        self.store_hits = 0   # submissions answered from the warm artifact store
        self.executed = 0     # jobs a worker actually computed to completion
        self.failed = 0
        self.cancelled = 0

    # ------------------------------------------------------------------ submit

    def submit(self, request: JobRequest,
               warm_result: Optional[dict] = None) -> tuple:
        """Register a submission; returns ``(job, coalesced)``.

        ``warm_result`` is the pre-rendered payload when the submitter found
        the artifact already in the store: the job is created *born finished*
        (state ``done``), counted as a store hit, and never queued.

        Coalescing: a live job (queued/running) with the same key absorbs the
        submission.  A finished job also absorbs it — ``done`` re-serves the
        retained payload (counted as a hit: the result already exists), while
        ``failed``/``cancelled`` re-enqueue a fresh attempt under the same key.
        """
        with self._lock:
            self.submitted += 1
            job = self._jobs.get(request.key)
            if job is not None:
                if job.state in (QUEUED, RUNNING):
                    job.submissions += 1
                    self.coalesced += 1
                    return job, True
                if job.state == DONE:
                    job.submissions += 1
                    self.store_hits += 1
                    return job, False
                # failed / cancelled: fall through to a fresh attempt.
            job = Job(request)
            self._jobs[request.key] = job
            if warm_result is not None:
                job.state = DONE
                job.started_at = job.finished_at = time.time()
                job.result = warm_result
                self.store_hits += 1
                return job, False
            self._pending.append(request.key)
            self._ready.notify()
            return job, False

    # ------------------------------------------------------------------ lookup

    def get(self, key: str) -> Job:
        """The job with this id; raises :class:`ServiceError` if unknown."""
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            raise ServiceError(f"unknown job {key!r}")
        return job

    def cancel(self, key: str) -> Job:
        """Cancel a queued job (running and finished jobs are left alone)."""
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                raise ServiceError(f"unknown job {key!r}")
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished_at = time.time()
                self.cancelled += 1
            return job

    # ------------------------------------------------------------------ worker side

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a job is available (skipping cancelled ones) or the
        queue stops; returns the job already moved to ``running``, or ``None``."""
        with self._lock:
            while True:
                while self._pending:
                    key = self._pending.popleft()
                    job = self._jobs[key]
                    if job.state != QUEUED:  # cancelled while waiting
                        continue
                    job.state = RUNNING
                    job.started_at = time.time()
                    return job
                if self._stopped:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None

    def finish(self, job: Job, result: dict) -> None:
        """Mark a running job done with its rendered payload."""
        with self._lock:
            job.result = result
            job.state = DONE
            job.finished_at = time.time()
            self.executed += 1

    def fail(self, job: Job, error: str) -> None:
        """Mark a running job failed; the queue (and server) keep going."""
        with self._lock:
            job.error = error
            job.state = FAILED
            job.finished_at = time.time()
            self.failed += 1

    # ------------------------------------------------------------------ lifecycle

    def stop(self) -> None:
        """Wake every waiting worker with "no more jobs"."""
        with self._lock:
            self._stopped = True
            self._ready.notify_all()

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        """The queue's JSON-safe counters and per-job wall times (``/stats``)."""
        with self._lock:
            jobs: List[dict] = []
            queue_depth = 0
            in_flight = 0
            for job in self._jobs.values():
                if job.state == QUEUED:
                    queue_depth += 1
                elif job.state == RUNNING:
                    in_flight += 1
                entry = {"job": job.key, "kind": job.request.kind,
                         "state": job.state, "submissions": job.submissions}
                if job.wall_time is not None:
                    entry["wall_time"] = round(job.wall_time, 6)
                jobs.append(entry)
            return {
                "queue_depth": queue_depth,
                "in_flight": in_flight,
                "submitted": self.submitted,
                "coalesced": self.coalesced,
                "store_hits": self.store_hits,
                "executed": self.executed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "jobs": jobs,
            }


__all__ = ["CANCELLED", "DONE", "FAILED", "Job", "JobQueue", "QUEUED",
           "RUNNING", "TERMINAL_STATES"]
