"""The service wire format: JSON encodings of specs, requests, and results.

Everything that crosses the job API is JSON, and this module is the single
translation layer between that JSON and the library's objects.  Three request
kinds exist, mirroring the three expensive artifact families of the repo:

``run``
    One :class:`~repro.api.specs.RunSpec` — a protocol, ``n``, a preference
    vector, an optional failure pattern, an optional horizon.
``sweep``
    One :class:`~repro.api.specs.SweepSpec` — several protocols over a
    workload, given either explicitly (``scenarios``) or as a seeded random
    workload description (``workload``, mirroring
    :meth:`repro.api.specs.Sweep.on_random` so request bodies stay small).
``theorem``
    One of the paper's implementation checks (Theorem 6.5 / 6.6 / A.21) at a
    given ``(n, t)``.

Protocols cross the wire by *registry key* plus parameters (``{"protocol":
"min", "t": 1}``), never by pickle: the wire format is language-neutral and a
malicious request body cannot smuggle code.  Failure patterns are encoded
extensionally (faulty set plus sorted omission triples), matching their
canonical pickled form.

Decoded requests become a :class:`JobRequest` — ``(kind, spec)`` plus the
job's **content key**, computed with the same :mod:`repro.store` key
functions the artifact cache uses.  That shared key is the heart of the
service: two requests with the same key *are* the same computation, so the
job queue coalesces them and a warm store answers them without executing
anything (see :mod:`repro.service.jobs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

#: A decoded JSON object (request and result bodies are always objects).
JSONObject = Dict[str, Any]

from ..api.specs import RunSpec, SweepSpec
from ..core.errors import ServiceError
from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from ..protocols.baselines import DelayedMinProtocol, NaiveZeroBiasedProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol

#: Wire key -> constructor taking the failure bound t.  This is the protocol
#: *namespace* of the wire format (and of the CLI, which imports it): requests
#: name protocols by these keys, never by class path.
PROTOCOL_FACTORIES: Dict[str, Callable[[int], ActionProtocol]] = {
    "min": MinProtocol,
    "basic": BasicProtocol,
    "opt": OptimalFipProtocol,
    "naive0": NaiveZeroBiasedProtocol,
    "delayed": lambda t: DelayedMinProtocol(t, delay=1),
}

#: The theorem checks a ``theorem`` request may name (see
#: :mod:`repro.experiments.implementation_check`).
THEOREMS = ("6.5", "6.6", "a21")

#: The request kinds the service understands.
REQUEST_KINDS = ("run", "sweep", "theorem")


def _require(data: JSONObject, field: str, kind: str) -> Any:
    if field not in data:
        raise ServiceError(f"{kind} request is missing the {field!r} field")
    return data[field]


# ------------------------------------------------------------------ protocols

def decode_protocol(data: JSONObject, where: str = "request") -> ActionProtocol:
    """Build the protocol named by ``{"protocol": key, "t": t}``."""
    if not isinstance(data, dict):
        raise ServiceError(f"{where}: protocol must be an object "
                           f'like {{"protocol": "min", "t": 1}}, got {data!r}')
    key = _require(data, "protocol", where)
    if key not in PROTOCOL_FACTORIES:
        raise ServiceError(
            f"{where}: unknown protocol key {key!r}; "
            f"one of {', '.join(sorted(PROTOCOL_FACTORIES))}")
    t = _require(data, "t", where)
    if not isinstance(t, int) or isinstance(t, bool) or t < 0:
        raise ServiceError(f"{where}: t must be a non-negative integer, got {t!r}")
    return PROTOCOL_FACTORIES[key](t)


def encode_protocol(protocol: ActionProtocol) -> JSONObject:
    """The wire encoding of a registered protocol (inverse of :func:`decode_protocol`).

    Raises :class:`~repro.core.errors.ServiceError` for a protocol object no
    registry key reconstructs — such a protocol cannot cross the wire.
    """
    for key, factory in PROTOCOL_FACTORIES.items():
        candidate = factory(protocol.t)
        if type(candidate) is type(protocol) and candidate.__dict__ == protocol.__dict__:
            return {"protocol": key, "t": protocol.t}
    raise ServiceError(
        f"protocol {protocol!r} matches no wire registry key; "
        "register a factory in repro.service.wire.PROTOCOL_FACTORIES")


# ------------------------------------------------------------------ patterns

def encode_pattern(pattern: FailurePattern) -> JSONObject:
    """The extensional JSON encoding of a failure pattern (sorted, canonical)."""
    return {
        "n": pattern.n,
        "faulty": sorted(pattern.faulty),
        "omissions": [list(triple) for triple in sorted(pattern.omissions)],
        "receive_omissions": [list(triple)
                              for triple in sorted(pattern.receive_omissions)],
    }


def decode_pattern(data: Optional[JSONObject],
                   where: str = "request") -> Optional[FailurePattern]:
    """Rebuild a failure pattern from its wire encoding (``None`` passes through)."""
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ServiceError(f"{where}: pattern must be an object or null, got {data!r}")
    try:
        return FailurePattern(
            n=_require(data, "n", where),
            faulty=frozenset(data.get("faulty", ())),
            omissions=frozenset(tuple(triple) for triple in data.get("omissions", ())),
            receive_omissions=frozenset(
                tuple(triple) for triple in data.get("receive_omissions", ())),
        )
    except ServiceError:
        raise
    except Exception as exc:
        raise ServiceError(f"{where}: invalid failure pattern: {exc}") from exc


def _decode_scenario(entry: Any, index: int,
                     where: str) -> Tuple[Tuple[Any, ...], Optional[FailurePattern]]:
    try:
        preferences, pattern = entry
    except Exception:
        raise ServiceError(
            f"{where}: scenario {index} must be a [preferences, pattern] pair")
    return tuple(preferences), decode_pattern(pattern, f"{where} scenario {index}")


# ------------------------------------------------------------------ requests

@dataclass(frozen=True)
class TheoremCheck:
    """A ``theorem`` request: which implementation theorem, at which size."""

    theorem: str
    n: int
    t: int


@dataclass(frozen=True)
class JobRequest:
    """A decoded submission: its kind, the spec object, and the content key.

    ``key`` is the request's identity everywhere in the service — the job id,
    the coalescing rendezvous, and (for ``run``/``theorem`` requests) the
    artifact-store key a warm store answers from.  ``body`` retains the raw
    JSON request object so the job journal can persist (and a restarted
    server re-decode) the submission; recovered terminal jobs carry
    ``spec=None`` — they are re-served, never re-executed.
    """

    kind: str
    spec: Any
    key: str
    body: Optional[JSONObject] = None


def _theorem_parts(check: TheoremCheck) -> Tuple[Any, Any, Any]:
    """The (protocol, program, context) triple of a theorem check.

    Must mirror :mod:`repro.experiments.implementation_check` exactly: the
    service's job key has to equal the report key those checks cache under,
    so a store warmed by ``repro-eba cache warm`` (or any direct CLI run)
    answers theorem submissions without recomputation.
    """
    from ..kbp.programs import make_p0, make_p1
    from ..systems.contexts import gamma_basic, gamma_fip, gamma_min
    if check.theorem == "6.5":
        return MinProtocol(check.t), make_p0(check.n), gamma_min(check.n, check.t)
    if check.theorem == "6.6":
        return BasicProtocol(check.t), make_p0(check.n), gamma_basic(check.n, check.t)
    if check.theorem == "a21":
        return (OptimalFipProtocol(check.t), make_p1(check.n, check.t),
                gamma_fip(check.n, check.t))
    raise ServiceError(f"unknown theorem {check.theorem!r}; one of {THEOREMS}")


def request_key(kind: str, spec: Any) -> str:
    """The content key identifying a request's computation in the store."""
    from ..store import implementation_report_key, run_task_key, sweep_key
    if kind == "run":
        preferences, pattern = spec.scenario
        return run_task_key((spec.protocol, spec.n, preferences, pattern, spec.horizon))
    if kind == "sweep":
        return sweep_key(spec)
    if kind == "theorem":
        protocol, program, context = _theorem_parts(spec)
        # max_time=None / max_mismatches=10: check_implements' defaults, which
        # is what the experiment wrappers (and cache warm) run with.
        return implementation_report_key(protocol, program, context, None, 10)
    raise ServiceError(f"unknown request kind {kind!r}; one of {REQUEST_KINDS}")


def decode_request(data: object) -> JobRequest:
    """Parse a JSON request body into a :class:`JobRequest`.

    Raises :class:`~repro.core.errors.ServiceError` on any malformed body;
    the server maps that to a 400 response.
    """
    if not isinstance(data, dict):
        raise ServiceError(f"request body must be a JSON object, got {type(data).__name__}")
    kind = _require(data, "type", "job")
    if kind == "run":
        protocol = decode_protocol(data, "run request")
        spec: Any = RunSpec(
            protocol=protocol,
            n=_require(data, "n", "run request"),
            preferences=tuple(_require(data, "preferences", "run request")),
            pattern=decode_pattern(data.get("pattern"), "run request"),
            horizon=data.get("horizon"),
        )
    elif kind == "sweep":
        protocols = tuple(decode_protocol(entry, "sweep request")
                          for entry in _require(data, "protocols", "sweep request"))
        if "workload" in data and "scenarios" in data:
            raise ServiceError("sweep request: give either 'scenarios' or "
                               "'workload', not both")
        if "workload" in data:
            spec = _sweep_from_workload(protocols, data)
        else:
            scenarios = tuple(
                _decode_scenario(entry, index, "sweep request")
                for index, entry in enumerate(_require(data, "scenarios", "sweep request")))
            spec = SweepSpec(protocols=protocols,
                             n=data.get("n") or (len(scenarios[0][0]) if scenarios else 0),
                             scenarios=scenarios,
                             horizon=data.get("horizon"),
                             seed=data.get("seed"))
    elif kind == "theorem":
        theorem = str(_require(data, "theorem", "theorem request"))
        if theorem not in THEOREMS:
            raise ServiceError(f"unknown theorem {theorem!r}; one of {THEOREMS}")
        spec = TheoremCheck(theorem=theorem,
                            n=_require(data, "n", "theorem request"),
                            t=_require(data, "t", "theorem request"))
    else:
        raise ServiceError(f"unknown request kind {kind!r}; one of {REQUEST_KINDS}")
    try:
        return JobRequest(kind=kind, spec=spec, key=request_key(kind, spec),
                          body=data)
    except ServiceError:
        raise
    except Exception as exc:
        # Spec validation (ConfigurationError etc.) is a client error too.
        raise ServiceError(f"invalid {kind} request: {exc}") from exc


def _sweep_from_workload(protocols: Tuple[ActionProtocol, ...],
                         data: JSONObject) -> SweepSpec:
    from ..api.specs import Sweep
    workload = data["workload"]
    if not isinstance(workload, dict):
        raise ServiceError(f"sweep request: workload must be an object, got {workload!r}")
    kind = workload.get("kind", "random")
    if kind != "random":
        raise ServiceError(f"sweep request: unknown workload kind {kind!r} "
                           "(only 'random' is defined)")
    builder = Sweep.of(*protocols).on_random(
        n=_require(workload, "n", "sweep workload"),
        t=_require(workload, "t", "sweep workload"),
        count=_require(workload, "count", "sweep workload"),
        seed=workload.get("seed", 0),
        model=workload.get("model"),
    )
    return builder.with_horizon(data.get("horizon")).build()


# ------------------------------------------------------------------ request builders

def run_request(protocol: str, t: int, n: int, preferences: Sequence[int],
                pattern: Optional[FailurePattern] = None,
                horizon: Optional[int] = None) -> JSONObject:
    """Build a ``run`` request body (the client-side convenience)."""
    return {"type": "run", "protocol": protocol, "t": t, "n": n,
            "preferences": list(preferences),
            "pattern": encode_pattern(pattern) if pattern is not None else None,
            "horizon": horizon}


def sweep_request(protocols: Sequence[Tuple[str, int]],
                  scenarios: Optional[Sequence[Tuple[Any, Any]]] = None,
                  workload: Optional[JSONObject] = None,
                  n: Optional[int] = None,
                  horizon: Optional[int] = None,
                  seed: Optional[int] = None) -> JSONObject:
    """Build a ``sweep`` request body from protocol ``(key, t)`` pairs.

    Give either ``scenarios`` (explicit ``(preferences, pattern)`` pairs) or
    ``workload`` (a seeded random-workload description like
    ``{"n": 4, "t": 1, "count": 8, "seed": 0}``).
    """
    body: JSONObject = {"type": "sweep",
                  "protocols": [{"protocol": key, "t": t} for key, t in protocols]}
    if (scenarios is None) == (workload is None):
        raise ServiceError("sweep_request needs exactly one of scenarios= or workload=")
    if scenarios is not None:
        body["scenarios"] = [
            [list(preferences), encode_pattern(pattern)]
            for preferences, pattern in scenarios
        ]
        if n is not None:
            body["n"] = n
    else:
        assert workload is not None  # the exactly-one check above
        body["workload"] = dict(workload)
    if horizon is not None:
        body["horizon"] = horizon
    if seed is not None:
        body["seed"] = seed
    return body


def theorem_request(theorem: str, n: int, t: int) -> JSONObject:
    """Build a ``theorem`` request body."""
    return {"type": "theorem", "theorem": theorem, "n": n, "t": t}


# ------------------------------------------------------------------ execution + results

def execute_request(request: JobRequest, executor: Any = None,
                    store: Any = None) -> JSONObject:
    """Run a decoded request through the library and render its result payload.

    This is what worker threads call: execution goes through the ordinary
    ``repro.api`` entry points (so ``store=`` gives per-run caching and warm
    hits exactly as the CLI gets them), and the returned payload is the
    JSON-safe rendering :func:`render_result` defines.
    """
    from ..experiments import implementation_check
    if request.kind == "run":
        artifact: object = request.spec.run(executor, store=store)
    elif request.kind == "sweep":
        artifact = request.spec.run(executor, store=store)
    elif request.kind == "theorem":
        check = {"6.5": implementation_check.check_theorem_6_5,
                 "6.6": implementation_check.check_theorem_6_6,
                 "a21": implementation_check.check_theorem_a21}[request.spec.theorem]
        artifact = check(request.spec.n, request.spec.t, executor=executor, store=store)
    else:  # pragma: no cover - decode_request already rejected it
        raise ServiceError(f"unknown request kind {request.kind!r}")
    return render_result(request, artifact)


def render_result(request: JobRequest, artifact: Any) -> JSONObject:
    """The deterministic JSON payload of a finished job.

    Determinism is load-bearing: coalesced and cached submissions must return
    **byte-identical** results to a fresh computation, so every field here is
    a pure function of the artifact (no timestamps, no identity).
    """
    if request.kind == "run":
        from ..reporting.trace_view import render_decision_timeline, render_run
        from ..spec.eba import check_eba
        trace = artifact
        deadline = request.spec.protocol.t + 2
        report = check_eba(trace, deadline=deadline)
        return {
            "kind": "run",
            "protocol": trace.protocol_name,
            "n": request.spec.n,
            "render": render_run(trace),
            "timeline": render_decision_timeline(trace),
            "eba_ok": report.ok,
            "eba_deadline": deadline,
            "violations": [str(v) for v in report.violations()] if not report.ok else [],
        }
    if request.kind == "sweep":
        results = artifact
        return {
            "kind": "sweep",
            "summary": results.summary(),
            "protocols": list(results.protocol_names),
            "runs": len(results.protocol_names) * len(results.scenarios),
            "table": results.table(),
        }
    if request.kind == "theorem":
        report = artifact
        return {
            "kind": "theorem",
            "theorem": request.spec.theorem,
            "n": request.spec.n,
            "t": request.spec.t,
            "claim": (f"{report.protocol_name} implements {report.program_name} "
                      f"in {report.context_name}"),
            "holds": report.ok,
            "checked_states": report.checked_states,
            "mismatches": len(report.mismatches),
        }
    raise ServiceError(f"unknown request kind {request.kind!r}")  # pragma: no cover


__all__ = [
    "JobRequest",
    "PROTOCOL_FACTORIES",
    "REQUEST_KINDS",
    "THEOREMS",
    "TheoremCheck",
    "decode_pattern",
    "decode_protocol",
    "decode_request",
    "encode_pattern",
    "encode_protocol",
    "execute_request",
    "render_result",
    "request_key",
    "run_request",
    "sweep_request",
    "theorem_request",
]
