"""The thin job-submission client (``repro-eba submit``).

Stdlib :mod:`urllib` only.  The client speaks the wire format of
:mod:`repro.service.wire` and the endpoints of
:mod:`repro.service.server`; its one piece of real logic is
:meth:`ServiceClient.submit_and_wait` — synchronous polling with a deadline —
plus bounded retry with exponential backoff on *transport* failures
(connection refused/reset, which happen routinely while a server is still
binding).  Retrying a submit is safe by construction: requests are content
addressed, so a duplicate submission coalesces onto the first instead of
recomputing.

HTTP-level errors are never retried — a 400 is malformed forever, a 500
carries the worker traceback — and surface as
:class:`~repro.core.errors.ServiceError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from ..core.errors import ServiceError, ServiceTimeout
from .jobs import CANCELLED, DONE, FAILED, TERMINAL_STATES


class ServiceClient:
    """A client for one job server.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8322"`` (no trailing slash needed).
    timeout:
        Per-HTTP-request socket timeout, seconds.
    retries:
        How many times a *transport*-failed request is retried.
    backoff:
        First retry delay, seconds; doubles per attempt (0.2 → 0.4 → 0.8 …).
    """

    def __init__(self, base_url: str, timeout: float = 10.0,
                 retries: int = 3, backoff: float = 0.2) -> None:
        if retries < 0:
            raise ServiceError(f"retries must be non-negative, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # ------------------------------------------------------------------ transport

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 expect_errors: bool = False) -> dict:
        """One HTTP round trip, JSON in / JSON out, with bounded retry.

        ``expect_errors`` returns the decoded payload even on 4xx/5xx (status
        polling wants the body of a 409/500, not an exception).
        """
        data = json.dumps(body).encode("utf-8") if body is not None else None
        delay = self.backoff
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path, data=data, method=method,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # The server answered: no retry. Decode its JSON error body.
                payload = self._decode_error(exc)
                if expect_errors:
                    return payload
                message = payload.get("error") or payload.get("state") or str(exc)
                raise ServiceError(
                    f"{method} {path} failed with HTTP {exc.code}: {message}") from exc
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last_error = exc
                if attempt < self.retries:
                    time.sleep(delay)
                    delay *= 2
        raise ServiceError(
            f"could not reach {self.base_url}{path} after {self.retries + 1} "
            f"attempt(s): {last_error}") from last_error

    @staticmethod
    def _decode_error(exc: urllib.error.HTTPError) -> dict:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return payload if isinstance(payload, dict) else {"error": repr(payload)}
        except Exception:
            return {"error": f"HTTP {exc.code}"}

    # ------------------------------------------------------------------ endpoints

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, request: dict) -> dict:
        """``POST /jobs``; returns the receipt ``{"job", "state", "coalesced", "hit"}``."""
        return self._request("POST", "/jobs", body=request)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job's payload (raises :class:`ServiceError` otherwise)."""
        answer = self._request("GET", f"/jobs/{job_id}/result")
        return answer["result"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    # ------------------------------------------------------------------ the workflow

    def wait(self, job_id: str, poll_interval: float = 0.2,
             timeout: Optional[float] = 120.0) -> dict:
        """Poll until the job reaches a terminal state; return its result payload.

        Raises :class:`~repro.core.errors.ServiceTimeout` at the deadline (the
        job keeps running server-side) and :class:`ServiceError` if the job
        failed (carrying the worker traceback) or was cancelled.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            state = status["state"]
            if state in TERMINAL_STATES:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceTimeout(
                    f"job {job_id} still {state} after {timeout:.1f}s "
                    f"(it keeps running server-side; re-submit to re-attach)")
            time.sleep(poll_interval)
        if state == DONE:
            return self.result(job_id)
        if state == FAILED:
            error = self._request("GET", f"/jobs/{job_id}/result",
                                  expect_errors=True).get("error", "unknown error")
            raise ServiceError(f"job {job_id} failed on the server:\n{error}")
        assert state == CANCELLED
        raise ServiceError(f"job {job_id} was cancelled")

    def submit_and_wait(self, request: dict, poll_interval: float = 0.2,
                        timeout: Optional[float] = 120.0) -> dict:
        """Submit and synchronously wait; the client-side happy path.

        A warm-store or coalesced submission resolves in one or two round
        trips; everything else polls at ``poll_interval`` until ``timeout``.
        """
        receipt = self.submit(request)
        if receipt["state"] == DONE:
            return self.result(receipt["job"])
        return self.wait(receipt["job"], poll_interval=poll_interval, timeout=timeout)


__all__ = ["ServiceClient"]
