"""The thin job-submission client (``repro-eba submit``).

Stdlib :mod:`urllib` only.  The client speaks the wire format of
:mod:`repro.service.wire` and the endpoints of
:mod:`repro.service.server`; its one piece of real logic is
:meth:`ServiceClient.submit_and_wait` — synchronous polling with a deadline —
plus bounded retry with exponential backoff on failures that are plausibly
transient:

* **transport errors** (connection refused/reset, socket timeouts), which
  happen routinely while a server is still binding or restarting;
* **HTTP 5xx**, including 503 backpressure rejections, whose ``Retry-After``
  header (when present) replaces the backoff delay.  Retrying a submit is
  safe by construction: requests are content addressed, so a duplicate
  submission coalesces onto the first instead of recomputing.

HTTP 4xx is **never** retried — a 400 is malformed forever, a 404 names a job
the server does not know — and surfaces as
:class:`~repro.core.errors.ServiceError`, as does a 5xx that survives the
retry budget.  The result fetch is the one 5xx exception: a failed job's 500
carries its traceback — a deterministic answer, not an outage — and raises
immediately.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from ..core.errors import ServiceError, ServiceTimeout
from .jobs import CANCELLED, DONE, FAILED, TERMINAL_STATES

#: Never sleep longer than this on a server-provided Retry-After, however
#: confused the server: the client's own deadline handling should stay live.
MAX_RETRY_AFTER = 30.0


def _retry_after_seconds(exc: urllib.error.HTTPError) -> Optional[float]:
    """The parsed ``Retry-After`` delay of a response, clamped sane."""
    raw = exc.headers.get("Retry-After") if exc.headers is not None else None
    if raw is None:
        return None
    try:
        return max(0.0, min(float(raw), MAX_RETRY_AFTER))
    except ValueError:
        return None


class ServiceClient:
    """A client for one job server.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8322"`` (no trailing slash needed).
    timeout:
        Per-HTTP-request socket timeout, seconds.
    retries:
        How many times a transport-failed or 5xx-failed request is retried.
    backoff:
        First retry delay, seconds; doubles per attempt (0.2 → 0.4 → 0.8 …).
        A 503's ``Retry-After`` header overrides the delay for that attempt.
    """

    def __init__(self, base_url: str, timeout: float = 10.0,
                 retries: int = 3, backoff: float = 0.2) -> None:
        if retries < 0:
            raise ServiceError(f"retries must be non-negative, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # ------------------------------------------------------------------ transport

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 expect_errors: bool = False, retry_5xx: bool = True) -> dict:
        """One HTTP round trip, JSON in / JSON out, with bounded retry.

        ``expect_errors`` returns the decoded payload even on 4xx/5xx without
        retrying (status polling wants the body of a 409/500, not an
        exception — and a 500 carrying a failed job's traceback is an answer,
        not an outage).  ``retry_5xx=False`` keeps the exception behaviour
        but exempts the call from the 5xx retry budget, for endpoints whose
        5xx is deterministic (the result fetch of a failed job).
        """
        data = json.dumps(body).encode("utf-8") if body is not None else None
        delay = self.backoff
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path, data=data, method=method,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                payload = self._decode_error(exc)
                if expect_errors:
                    return payload
                message = payload.get("error") or payload.get("state") or str(exc)
                error = ServiceError(
                    f"{method} {path} failed with HTTP {exc.code}: {message}")
                error.__cause__ = exc
                if exc.code < 500 or not retry_5xx or attempt >= self.retries:
                    # 4xx is deterministic — retrying a malformed request can
                    # only waste the server's time.  5xx raises once the
                    # budget is spent (or immediately when the caller knows
                    # the endpoint's 5xx is deterministic).
                    raise error
                pause = _retry_after_seconds(exc)
                if pause is None:
                    pause = delay
                    delay *= 2
                time.sleep(pause)
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last_error = exc
                if attempt < self.retries:
                    time.sleep(delay)
                    delay *= 2
        raise ServiceError(
            f"could not reach {self.base_url}{path} after {self.retries + 1} "
            f"attempt(s): {last_error}") from last_error

    @staticmethod
    def _decode_error(exc: urllib.error.HTTPError) -> dict:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return payload if isinstance(payload, dict) else {"error": repr(payload)}
        except Exception:
            return {"error": f"HTTP {exc.code}"}

    # ------------------------------------------------------------------ endpoints

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> dict:
        """The server's metrics-registry snapshot (``GET /metrics?format=json``)."""
        return self._request("GET", "/metrics?format=json")

    def submit(self, request: dict) -> dict:
        """``POST /jobs``; returns the receipt ``{"job", "state", "coalesced", "hit"}``.

        Submits are idempotent (content addressing), so 5xx/503 responses are
        retried like transport errors, honouring ``Retry-After`` on 503.
        """
        return self._request("POST", "/jobs", body=request)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job's payload (raises :class:`ServiceError` otherwise).

        No 5xx retry here: the endpoint's 500 carries a failed job's
        traceback — a deterministic answer, not an outage — so sleeping
        through the retry budget would only re-hammer the server.
        """
        answer = self._request("GET", f"/jobs/{job_id}/result",
                               retry_5xx=False)
        return answer["result"]

    def cancel(self, job_id: str) -> dict:
        """``POST /jobs/<id>/cancel``; returns the job's (possibly new) state.

        A queued job cancels immediately; a running one cooperatively — the
        response still says ``running`` (with ``cancel_requested``) until the
        worker reaches its next chunk boundary and confirms.
        """
        return self._request("POST", f"/jobs/{job_id}/cancel")

    # ------------------------------------------------------------------ the workflow

    def wait(self, job_id: str, poll_interval: float = 0.2,
             timeout: Optional[float] = 120.0,
             on_progress=None) -> dict:
        """Poll until the job reaches a terminal state; return its result payload.

        ``on_progress`` (when given) is called with each status payload that
        carries a ``progress`` dict — the server mirrors the executing
        worker's live progress (phase/done/total/eta) into ``GET /jobs/<id>``
        while the job runs.  Callback exceptions are not caught.

        Raises :class:`~repro.core.errors.ServiceTimeout` at the deadline (the
        job keeps running server-side) and :class:`ServiceError` if the job
        failed (carrying the worker traceback) or was cancelled.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            state = status["state"]
            if state in TERMINAL_STATES:
                break
            if on_progress is not None and status.get("progress"):
                on_progress(status)
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceTimeout(
                    f"job {job_id} still {state} after {timeout:.1f}s "
                    "(it keeps running server-side; re-submit to re-attach)")
            time.sleep(poll_interval)
        if state == DONE:
            return self.result(job_id)
        if state == FAILED:
            error = self._request("GET", f"/jobs/{job_id}/result",
                                  expect_errors=True).get("error", "unknown error")
            raise ServiceError(f"job {job_id} failed on the server:\n{error}")
        assert state == CANCELLED
        raise ServiceError(f"job {job_id} was cancelled")

    def submit_and_wait(self, request: dict, poll_interval: float = 0.2,
                        timeout: Optional[float] = 120.0,
                        on_progress=None) -> dict:
        """Submit and synchronously wait; the client-side happy path.

        A warm-store or coalesced submission resolves in one or two round
        trips; everything else polls at ``poll_interval`` until ``timeout``,
        forwarding live progress to ``on_progress`` (see :meth:`wait`).
        """
        receipt = self.submit(request)
        if receipt["state"] == DONE:
            return self.result(receipt["job"])
        return self.wait(receipt["job"], poll_interval=poll_interval,
                         timeout=timeout, on_progress=on_progress)


__all__ = ["ServiceClient"]
