"""``repro.service`` — the job-server subsystem (``repro-eba serve``).

The CLI runs one computation per process; this package turns the library into
a long-running service built for *heavy identical traffic*: an HTTP job API
whose unit of identity is the artifact store's **content key**, so concurrent
identical submissions coalesce into a single computation and anything ever
computed before is answered from the warm store without executing at all.

* :mod:`repro.service.wire` — the JSON wire format: run / sweep / theorem
  requests in, deterministic result payloads out, protocols by registry key
  (never pickle), and the request → content-key mapping shared with
  :mod:`repro.store`;
* :mod:`repro.service.jobs` — :class:`Job` and the thread-safe coalescing
  :class:`JobQueue` (states ``queued → running → done | failed``, bounded
  retry with backoff, backpressure, cooperative cancellation; hit/coalesce/
  failure/recovery counters);
* :mod:`repro.service.journal` — :class:`JobJournal`, the append-only JSONL
  persistence that makes a restarted server re-serve finished job ids and
  re-enqueue in-flight ones (``--journal``);
* :mod:`repro.service.workers` — the :class:`WorkerPool` draining the queue
  through ``repro.api`` executors and the shared
  :class:`~repro.store.ArtifactStore`, supervising each job (wall-clock
  timeouts, retry classification, cancel checks); worker exceptions fail the
  one job, never the server;
* :mod:`repro.service.server` — :class:`JobServer`, the stdlib
  ``ThreadingHTTPServer`` front end (submit / status / result / cancel /
  healthz / stats; 503 + ``Retry-After`` under backpressure, SIGTERM ==
  SIGINT graceful shutdown);
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin polling
  submitter (``submit_and_wait``, timeouts, bounded retry with backoff on
  transport errors *and* HTTP 5xx, honouring ``Retry-After``).

The CLI wires these up as ``repro-eba serve`` and ``repro-eba submit``; see
docs/architecture.md ("The service layer" and "Failure handling & recovery")
for the endpoint table, job lifecycle, and retry/degradation matrix.
"""

from .client import ServiceClient
from .jobs import Job, JobQueue
from .journal import JobJournal
from .server import DEFAULT_PORT, JobServer
from .wire import (
    JobRequest,
    PROTOCOL_FACTORIES,
    THEOREMS,
    TheoremCheck,
    decode_pattern,
    decode_request,
    encode_pattern,
    encode_protocol,
    execute_request,
    render_result,
    request_key,
    run_request,
    sweep_request,
    theorem_request,
)
from .workers import JobCancelled, WorkerPool, probe_warm

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JobQueue",
    "JobRequest",
    "JobServer",
    "PROTOCOL_FACTORIES",
    "ServiceClient",
    "THEOREMS",
    "TheoremCheck",
    "WorkerPool",
    "decode_pattern",
    "decode_request",
    "encode_pattern",
    "encode_protocol",
    "execute_request",
    "probe_warm",
    "render_result",
    "request_key",
    "run_request",
    "sweep_request",
    "theorem_request",
]
