"""The worker pool that drains the job queue.

Workers are plain threads: each loops on :meth:`JobQueue.next_job`, executes
the decoded request through the ordinary library entry points
(:func:`repro.service.wire.execute_request` → ``repro.api`` executors +
the shared :class:`~repro.store.ArtifactStore`), and posts the rendered
payload back.  Threads are the right grain here because the work itself is
either store-served (I/O) or dominated by long-running simulation/model
checking — and a worker can additionally be handed a
:class:`~repro.api.executors.ParallelExecutor` to fan one job's runs out over
a process pool.

Worker exceptions never escape the loop: the job moves to ``failed`` carrying
the traceback, the worker picks up the next job, and the server keeps
serving — acceptance-criterion behaviour, pinned by ``tests/test_service.py``.
"""

from __future__ import annotations

import threading
import traceback
from typing import List, Optional

from .jobs import JobQueue
from .wire import JobRequest, execute_request, render_result


def probe_warm(request: JobRequest, store) -> Optional[dict]:
    """The rendered payload if the store already holds the request's artifact.

    Every request kind's job key *is* its artifact-store key (trace for
    ``run``, result set for ``sweep``, report for ``theorem``), so one store
    read answers "has this exact computation happened before, in any process,
    ever" — the cross-run half of request coalescing.  Corrupt entries read
    as misses (the store's contract), so a damaged cache degrades to a normal
    queued execution.
    """
    if store is None:
        return None
    artifact = store.get(request.key)
    if artifact is None:
        return None
    return render_result(request, artifact)


class WorkerPool:
    """``workers`` threads draining a :class:`JobQueue` through one store.

    Parameters
    ----------
    queue:
        The shared job queue.
    store:
        The :class:`~repro.store.ArtifactStore` every execution goes through
        (``None`` = no caching; coalescing still deduplicates in-flight work).
    executor:
        Optional :class:`~repro.api.executors.Executor` handed to every
        execution (e.g. a process pool for big builds); ``None`` = serial.
    workers:
        Thread count.  Identical submissions coalesce *before* reaching the
        pool, so extra workers only help genuinely distinct jobs.
    """

    def __init__(self, queue: JobQueue, store=None, executor=None,
                 workers: int = 2) -> None:
        if workers < 1:
            from ..core.errors import ServiceError
            raise ServiceError(f"worker count must be >= 1, got {workers}")
        self.queue = queue
        self.store = store
        self.executor = executor
        self.workers = workers
        self._threads: List[threading.Thread] = []

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(target=self._run, name=f"repro-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def _run(self) -> None:
        while True:
            job = self.queue.next_job()
            if job is None:
                return
            try:
                payload = execute_request(job.request, executor=self.executor,
                                          store=self.store)
            except Exception:
                self.queue.fail(job, traceback.format_exc())
            else:
                self.queue.finish(job, payload)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the queue and join every worker (bounded per-thread wait)."""
        self.queue.stop()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []


__all__ = ["WorkerPool", "probe_warm"]
