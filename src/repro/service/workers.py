"""The worker pool that drains the job queue, with supervision.

Workers are plain threads: each loops on :meth:`JobQueue.next_job`, executes
the decoded request through the ordinary library entry points
(:func:`repro.service.wire.execute_request` → ``repro.api`` executors +
the shared :class:`~repro.store.ArtifactStore`), and posts the rendered
payload back.  Threads are the right grain here because the work itself is
either store-served (I/O) or dominated by long-running simulation/model
checking — and a worker can additionally be handed a
:class:`~repro.api.executors.ParallelExecutor` to fan one job's runs out over
a process pool.

Supervision (the crash-safety layer) wraps every execution:

* **Wall-clock timeout** — with ``job_timeout`` set, the request runs on a
  daemon thread and the worker waits at most that long; on expiry the job is
  handed to :meth:`JobQueue.retry_or_fail` (timeouts are retryable) and the
  abandoned execution is told to stop at its next chunk boundary.  Its late
  outcome, if any, is discarded by the queue's attempt-token check.
* **Retry classification** — exceptions in :data:`RETRYABLE_EXCEPTIONS`
  (transient IO, a process pool that died) go through the queue's bounded
  exponential-backoff retry; anything else fails the job immediately with
  the traceback.
* **Cooperative cancellation** — the executor handed to the request is
  wrapped in a chunking guard that checks :attr:`Job.cancel_requested`
  between task/batch chunks and raises :class:`JobCancelled`, which the
  worker confirms via :meth:`JobQueue.mark_cancelled`.

Worker exceptions never escape the loop: the job moves to ``failed`` (or back
to ``queued`` for a retry) carrying the traceback, the worker picks up the
next job, and the server keeps serving — pinned by ``tests/test_service.py``
and ``tests/test_service_robustness.py``.
"""

from __future__ import annotations

import threading
import traceback
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import List, Optional

from ..obs import trace as _trace
from ..obs.bus import BUS
from .jobs import Job, JobQueue
from .wire import JobRequest, execute_request, render_result

#: Exception types worth a bounded retry: the failure is plausibly transient
#: (a flaky disk, a worker process that died) rather than a property of the
#: request itself.  Everything else fails the job on the first attempt.
RETRYABLE_EXCEPTIONS = (OSError, BrokenProcessPool)


class JobCancelled(Exception):
    """Raised inside a worker when a cancel request is observed mid-job."""


def probe_warm(request: JobRequest, store) -> Optional[dict]:
    """The rendered payload if the store already holds the request's artifact.

    Every request kind's job key *is* its artifact-store key (trace for
    ``run``, result set for ``sweep``, report for ``theorem``), so one store
    read answers "has this exact computation happened before, in any process,
    ever" — the cross-run half of request coalescing.  Corrupt entries read
    as misses (the store's contract), so a damaged cache degrades to a normal
    queued execution.
    """
    if store is None:
        return None
    artifact = store.get(request.key)
    if artifact is None:
        return None
    return render_result(request, artifact)


class _CancelGuard:
    """An executor wrapper that checks for cancellation between chunks.

    Splits ``run_tasks``/``run_batches`` work into chunks, checking
    :attr:`Job.cancel_requested` (the client's cooperative cancel) and its own
    :attr:`abort` event (set when the supervising worker times the job out)
    before each chunk and raising :class:`JobCancelled`.  Chunks are sized to
    keep a parallel inner executor's pool busy between checks and to bound
    the number of checks on huge sweeps (at most ~8 per call), so the guard
    costs cancellation *latency*, never throughput or determinism — the
    concatenated chunk results are identical to one unchunked call.
    """

    def __init__(self, inner, job: Job) -> None:
        from ..api.executors import resolve_executor
        self.inner = resolve_executor(inner)
        self.job = job
        self.abort = threading.Event()

    def _check(self) -> None:
        if self.job.cancel_requested or self.abort.is_set():
            raise JobCancelled(self.job.key)

    def _step(self, count: int) -> int:
        workers = getattr(self.inner, "_effective_workers", None)
        floor = 4 * workers() if callable(workers) else 1
        return max(floor, count // 8, 1)

    def run_tasks(self, tasks):
        tasks = list(tasks)
        step = self._step(len(tasks))
        results = []
        for start in range(0, len(tasks), step):
            self._check()
            results.extend(self.inner.run_tasks(tasks[start:start + step]))
        return results

    def run_batches(self, batches):
        batches = list(batches)
        step = self._step(len(batches))
        results = []
        for start in range(0, len(batches), step):
            self._check()
            results.extend(self.inner.run_batches(batches[start:start + step]))
        return results


#: Progress-event fields copied onto :attr:`Job.progress` (a stable subset of
#: what :class:`repro.obs.bus.ProgressReporter` emits).
_PROGRESS_FIELDS = ("phase", "done", "total", "unit", "elapsed", "eta")


@contextmanager
def _progress_capture(job: Job):
    """Mirror this thread's progress events onto ``job.progress``.

    The library's reporters emit on the thread doing the work — the same
    thread that runs :meth:`WorkerPool._call` — so filtering by thread ident
    keeps concurrent workers from writing into each other's jobs.  The dict is
    replaced wholesale (never mutated) so ``Job.describe`` can copy it without
    holding any extra lock.
    """
    ident = threading.get_ident()

    def on_progress(event: dict) -> None:
        if event.get("thread") != ident:
            return
        job.progress = {field: event[field] for field in _PROGRESS_FIELDS
                        if field in event}

    BUS.subscribe("progress", on_progress)
    try:
        yield
    finally:
        BUS.unsubscribe("progress", on_progress)


class WorkerPool:
    """``workers`` threads draining a :class:`JobQueue` through one store.

    Parameters
    ----------
    queue:
        The shared job queue.
    store:
        The :class:`~repro.store.ArtifactStore` every execution goes through
        (``None`` = no caching; coalescing still deduplicates in-flight work).
    executor:
        Optional :class:`~repro.api.executors.Executor` handed to every
        execution (e.g. a process pool for big builds); ``None`` = serial.
    workers:
        Thread count.  Identical submissions coalesce *before* reaching the
        pool, so extra workers only help genuinely distinct jobs.
    job_timeout:
        Per-job wall-clock budget in seconds; ``None`` = unlimited.  A
        timed-out job goes through the queue's retry machinery (timeouts are
        transient more often than not — a cold cache, a loaded box).
    """

    def __init__(self, queue: JobQueue, store=None, executor=None,
                 workers: int = 2, job_timeout: Optional[float] = None) -> None:
        from ..core.errors import ServiceError
        if workers < 1:
            raise ServiceError(f"worker count must be >= 1, got {workers}")
        if job_timeout is not None and job_timeout <= 0:
            raise ServiceError(f"job_timeout must be positive, got {job_timeout}")
        self.queue = queue
        self.store = store
        self.executor = executor
        self.workers = workers
        self.job_timeout = job_timeout
        self._threads: List[threading.Thread] = []

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(target=self._run, name=f"repro-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def _run(self) -> None:
        while True:
            job = self.queue.next_job()
            if job is None:
                return
            self._execute(job)

    def _call(self, job: Job, guard: _CancelGuard) -> tuple:
        """One execution attempt; returns an outcome tag the supervisor maps
        onto a queue transition.  Never raises."""
        attempt_span = _trace.NOOP
        if _trace.is_active():
            attempt_span = _trace.span("job.attempt", "service", {
                "job": job.key[:16], "kind": job.request.kind,
                "attempt": job.attempts})
        with attempt_span as span, _progress_capture(job):
            try:
                payload = execute_request(job.request, executor=guard,
                                          store=self.store)
            except JobCancelled:
                span.set("outcome", "cancelled")
                return ("cancelled", None, None)
            except Exception as exc:
                span.set("outcome", "error")
                return ("error", exc, traceback.format_exc())
            span.set("outcome", "done")
            return ("done", payload, None)

    def _execute(self, job: Job) -> None:
        attempt = job.attempts  # the token making late outcomes discardable
        guard = _CancelGuard(self.executor, job)
        if self.job_timeout is None:
            outcome = self._call(job, guard)
        else:
            box: List[tuple] = []
            runner = threading.Thread(
                target=lambda: box.append(self._call(job, guard)),
                name=f"repro-job-{job.key[:8]}", daemon=True)
            runner.start()
            runner.join(timeout=self.job_timeout)
            if runner.is_alive():
                # Tell the abandoned execution to stop at its next chunk
                # boundary; whatever it eventually reports carries a stale
                # attempt token and is ignored by the queue.
                guard.abort.set()
                self.queue.retry_or_fail(
                    job,
                    f"job exceeded the {self.job_timeout:g}s wall-clock "
                    f"timeout on attempt {attempt}",
                    retryable=True, attempt=attempt, timed_out=True)
                return
            outcome = box[0]
        tag, payload, trace = outcome
        if tag == "done":
            self.queue.finish(job, payload, attempt=attempt)
        elif tag == "cancelled":
            self.queue.mark_cancelled(job, attempt=attempt)
        else:
            retryable = isinstance(payload, RETRYABLE_EXCEPTIONS)
            self.queue.retry_or_fail(job, trace, retryable=retryable,
                                     attempt=attempt)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the queue and join every worker (bounded per-thread wait)."""
        self.queue.stop()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []


__all__ = ["JobCancelled", "RETRYABLE_EXCEPTIONS", "WorkerPool", "probe_warm"]
