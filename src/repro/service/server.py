"""The HTTP job server (``repro-eba serve``).

Stdlib only: a :class:`http.server.ThreadingHTTPServer` front end (one thread
per connection, fine for a polling protocol) over the coalescing
:class:`~repro.service.jobs.JobQueue` and a
:class:`~repro.service.workers.WorkerPool`.  The API is five endpoints plus
health and stats:

=========================  ==================================================
endpoint                   meaning
=========================  ==================================================
``POST /jobs``             submit a JSON request (run / sweep / theorem);
                           returns the job id (= content key), its state, and
                           whether the submission coalesced or hit the store;
                           503 + ``Retry-After`` when the queue is full
``GET  /jobs/<id>``        poll status
``GET  /jobs/<id>/result`` fetch the rendered payload (409 while pending,
                           500 + traceback if the job failed, 410 cancelled)
``POST /jobs/<id>/cancel`` cancel a job — queued immediately, running
                           cooperatively (the worker stops at its next chunk)
``GET  /healthz``          liveness probe
``GET  /stats``            queue depth, in-flight, hit/coalesce/retry/
                           recovery counters, per-job wall times, journal
                           info, uptime/version, the artifact store's
                           ``cache stats --json`` payload, and a metrics
                           snapshot
``GET  /metrics``          the process-wide metrics registry — Prometheus
                           text exposition by default,
                           ``/metrics?format=json`` for the JSON snapshot
=========================  ==================================================

With ``journal=`` set, the server is **crash-safe**: every job transition is
appended to an on-disk JSONL journal, and a restarted server pointed at the
same path re-serves finished job ids (byte-identical payloads, zero
recomputation) and re-enqueues whatever was queued or running at crash time
(see :mod:`repro.service.journal`).

Use :class:`JobServer` programmatically (it is a context manager and binds
port 0 to a free port, which is what the tests do), or through the CLI::

    repro-eba serve --port 8642 --workers 2 --cache \
        --journal ~/.cache/repro-eba/journal.jsonl \
        --max-queue 256 --job-timeout 600 --task-retries 2
    repro-eba submit theorem --theorem 6.5 --n 3 --t 1 --wait
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..core.errors import ServiceError, ServiceUnavailable
from ..obs.metrics import PROMETHEUS_CONTENT_TYPE, REGISTRY
from .jobs import CANCELLED, DONE, FAILED, JobQueue
from .journal import JobJournal
from .wire import decode_request
from .workers import WorkerPool, probe_warm

#: Default TCP port (no registered meaning; "EBA" on a phone keypad is 322,
#: and 8322 is free in the IANA registry's user range).
DEFAULT_PORT = 8322


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`JobServer`."""

    protocol_version = "HTTP/1.1"
    server: "_ServiceHTTPServer"

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("empty request body; expected a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if self.server.service.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        url = urlsplit(self.path)
        path = url.path.rstrip("/")
        if path == "/healthz":
            self._send_json(200, {"ok": True})
            return
        if path == "/stats":
            self._send_json(200, service.describe_stats())
            return
        if path == "/metrics":
            query = parse_qs(url.query)
            if query.get("format", [""])[-1] == "json":
                self._send_json(200, REGISTRY.snapshot())
                return
            body = REGISTRY.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            try:
                if len(parts) == 1:
                    self._send_json(200, service.queue.get(parts[0]).describe())
                    return
                if len(parts) == 2 and parts[1] == "result":
                    self._send_result(parts[0])
                    return
            except ServiceError as exc:
                self._send_json(404, {"error": str(exc)})
                return
        self._send_json(404, {"error": f"no such endpoint: GET {self.path}"})

    def _send_result(self, key: str) -> None:
        job = self.server.service.queue.get(key)  # raises ServiceError -> 404
        if job.state == DONE:
            self._send_json(200, {"job": job.key, "state": job.state,
                                  "result": job.result})
        elif job.state == FAILED:
            self._send_json(500, {"job": job.key, "state": job.state,
                                  "error": job.error})
        elif job.state == CANCELLED:
            self._send_json(410, {"job": job.key, "state": job.state})
        else:
            self._send_json(409, {"job": job.key, "state": job.state})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        path = self.path.rstrip("/")
        if path == "/jobs":
            try:
                body = self._read_body()
                receipt = service.submit(body)
            except ServiceUnavailable as exc:
                self._send_json(503, {"error": str(exc)},
                                headers={"Retry-After": f"{exc.retry_after:g}"})
                return
            except ServiceError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            status = 200 if receipt["state"] == DONE else 202
            self._send_json(status, receipt)
            return
        if path.startswith("/jobs/") and path.endswith("/cancel"):
            key = path[len("/jobs/"):-len("/cancel")]
            try:
                job = service.queue.cancel(key)
            except ServiceError as exc:
                self._send_json(404, {"error": str(exc)})
                return
            self._send_json(200, job.describe())
            return
        self._send_json(404, {"error": f"no such endpoint: POST {self.path}"})


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Back-reference set by JobServer before the first request.
    service: "JobServer"


class JobServer:
    """The assembled service: HTTP front end + job queue + worker pool.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    store:
        The shared :class:`~repro.store.ArtifactStore` — the coalescing and
        warm-hit substrate.  ``None`` keeps in-flight coalescing but serves
        nothing across restarts.
    workers:
        Worker-thread count draining the queue.
    executor:
        Optional per-job :class:`~repro.api.executors.Executor`.
    journal:
        A :class:`~repro.service.journal.JobJournal` or a path to one;
        enables crash-safe recovery (``None`` = in-memory job table only).
    max_queue:
        Backpressure bound on pending jobs (HTTP 503 + ``Retry-After`` when
        full); ``None`` = unbounded.
    job_timeout:
        Per-job wall-clock budget in seconds (``None`` = unlimited).
    task_retries:
        Retry budget for retryable job failures (timeouts, transient IO,
        broken process pools); 0 = fail on the first error.
    retry_backoff:
        First retry delay in seconds; doubles per attempt.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 store=None, workers: int = 2, executor=None,
                 verbose: bool = False,
                 journal: "JobJournal | str | None" = None,
                 max_queue: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 task_retries: int = 0,
                 retry_backoff: float = 0.5) -> None:
        self.store = store
        self.verbose = verbose
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self.queue = JobQueue(max_queue=max_queue, max_retries=task_retries,
                              retry_backoff=retry_backoff)
        self.journal: Optional[JobJournal] = None
        if journal is not None:
            self.journal = (journal if isinstance(journal, JobJournal)
                            else JobJournal(journal))
            # Replay *before* attaching, so recovery does not re-journal
            # itself; compaction then rewrites the file from the rebuilt job
            # table, bounding its size to state rather than history.
            self.journal.recover_into(self.queue)
            self.journal.compact(self.queue)
            self.queue.journal = self.journal
        self.pool = WorkerPool(self.queue, store=store, executor=executor,
                               workers=workers, job_timeout=job_timeout)
        self._httpd = _ServiceHTTPServer((host, port), _ServiceHandler)
        self._httpd.service = self
        self._serve_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ requests

    def submit(self, body: object) -> dict:
        """Decode, coalesce/warm-check, and (if needed) enqueue a submission.

        The returned receipt is what ``POST /jobs`` sends back::

            {"job": <content key>, "state": ..., "coalesced": bool, "hit": bool}

        Raises :class:`~repro.core.errors.ServiceUnavailable` (mapped to 503)
        when the queue is at its backpressure bound.
        """
        request = decode_request(body)
        warm = probe_warm(request, self.store)
        job, coalesced = self.queue.submit(request, warm_result=warm)
        return {"job": job.key, "state": job.state, "coalesced": coalesced,
                "hit": job.state == DONE and not coalesced}

    def describe_stats(self) -> dict:
        """The ``GET /stats`` payload: queue counters plus store stats."""
        payload = {"service": self.queue.stats(), "workers": self.pool.workers,
                   "version": __version__,
                   "started_at": self.started_at,
                   "uptime_seconds": round(
                       time.monotonic() - self._started_mono, 3),
                   "metrics": REGISTRY.snapshot()}
        if self.journal is not None:
            payload["journal"] = {"path": str(self.journal.path),
                                  "torn_lines": self.journal.torn_lines,
                                  "write_errors": self.journal.write_errors}
        else:
            payload["journal"] = None
        if self.store is not None:
            payload["store"] = self.store.stats().as_dict()
        else:
            payload["store"] = None
        return payload

    # ------------------------------------------------------------------ lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` to the real port."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "JobServer":
        """Start the worker pool and the HTTP listener (both in background threads)."""
        self.pool.start()
        self._serve_thread = threading.Thread(target=self._httpd.serve_forever,
                                              name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain workers, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        self.pool.stop()
        if self.journal is not None:
            self.journal.close()

    def serve_until_interrupt(self) -> None:
        """Foreground serving loop for the CLI.

        Both SIGINT (Ctrl-C) and SIGTERM (``docker stop``, systemd, k8s) shut
        down gracefully with exit code 0 — containerized deployments send
        SIGTERM, and treating it differently from SIGINT would turn every
        clean redeploy into a hard kill.
        """
        self.pool.start()
        previous_term = None
        try:
            previous_term = signal.signal(signal.SIGTERM, _raise_interrupt)
        except ValueError:  # pragma: no cover - not the main thread
            pass
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            if previous_term is not None:
                signal.signal(signal.SIGTERM, previous_term)
            self._httpd.server_close()
            self.pool.stop()
            if self.journal is not None:
                self.journal.close()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _raise_interrupt(signum, frame):  # pragma: no cover - exercised via subprocess
    raise KeyboardInterrupt


__all__ = ["DEFAULT_PORT", "JobServer"]
