"""The persistent job journal (``repro-eba serve --journal``).

An append-only JSONL file recording every job-lifecycle transition, keyed by
the job's **content request key** — the same identity the queue, the store,
and the wire format share.  It is what makes the server *crash-safe*: a
restarted ``repro-eba serve`` pointed at the same journal path

* re-serves every ``done`` job with its journaled payload (byte-identical,
  zero recomputation — the payload travelled through the journal, not the
  worker),
* re-serves ``failed``/``cancelled`` job ids with their recorded outcome, and
* **re-enqueues** every job that was queued or running at crash time, decoding
  the journaled request body through the ordinary wire path — except a
  running job whose cooperative cancel was requested but not yet confirmed,
  which recovers as ``cancelled`` (the client had already asked it to stop).

The format is one JSON object per line::

    {"event": "submit",           "job": <key>, "kind": ..., "body": {...}}
    {"event": "running",          "job": <key>}
    {"event": "retry",            "job": <key>, "error": ...}
    {"event": "cancel_requested", "job": <key>}
    {"event": "done",             "job": <key>, "result": {...}}
    {"event": "failed",           "job": <key>, "error": ...}
    {"event": "cancelled",        "job": <key>}

Replay folds lines left to right, so the *last* event per key wins.  A torn
final line — the signature of a crash mid-append — is detected and skipped
(counted in :attr:`JobJournal.torn_lines`), as is any line that fails to
parse: a damaged journal degrades to partial recovery, never to a crash.
After recovery the journal is **compacted** — rewritten (atomically, via a
temp file + ``os.replace``) with one ``submit`` line per surviving job plus
its terminal event — so the file stays proportional to the job table rather
than to server uptime.

Every append is flushed before the queue lock is released, so the journal
survives ``kill -9`` of the server process (the bytes are in the page cache;
only a whole-machine crash could lose the tail, and then replay's torn-line
tolerance bounds the damage to the final record).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, TYPE_CHECKING

from ..obs import metrics as _metrics
from ..obs.logs import get_logger, warn_once

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .jobs import JobQueue

_logger = get_logger("service.journal")

# Process-wide mirrors of the per-journal counters surfaced in ``/stats``.
_M_WRITE_ERRORS = _metrics.counter("repro_journal_write_errors_total",
                                   "Journal appends dropped on OSError")
_M_TORN_LINES = _metrics.counter("repro_journal_torn_lines_total",
                                 "Unparseable journal lines skipped at replay")

#: Events whose presence makes a job terminal at replay time.
_TERMINAL_EVENTS = ("done", "failed", "cancelled")


class JobJournal:
    """Append-only JSONL persistence for the job queue.

    Parameters
    ----------
    path:
        The journal file; created (with parents) on first append.  One journal
        belongs to one server — concurrent writers are not supported (the
        queue serialises appends under its own lock anyway).
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path).expanduser()
        self._lock = threading.Lock()
        self._handle = None
        #: Unparseable lines skipped by the last :meth:`replay` (a torn final
        #: write counts here); reported by ``/stats``.
        self.torn_lines = 0
        #: Appends dropped because the underlying file raised (full disk,
        #: revoked mount); reported by ``/stats``.  The journal degrades —
        #: it never propagates a disk failure into a queue transition.
        self.write_errors = 0

    # ------------------------------------------------------------------ append

    def record(self, event: str, key: str, **fields: object) -> None:
        """Append one event line and flush it to the OS.

        ``fields`` are extra JSON-safe attributes (``kind``/``body`` for
        submissions, ``result`` for completions, ``error`` for failures).

        Write failures (full disk, revoked mount) never escape: the queue
        calls this from inside its state transitions, and an ``OSError``
        propagating out of ``finish``/``fail`` would kill the worker thread
        and strand the job in ``running``.  Instead the append is dropped and
        counted in :attr:`write_errors` (one ``repro.service.journal`` warning
        per journal path — :func:`repro.obs.logs.warn_once`), and the handle
        is discarded so the next append retries with a fresh open — a
        transient failure heals, a persistent one degrades crash-safety only.
        """
        entry = {"event": event, "job": key}
        entry.update({name: value for name, value in fields.items()
                      if value is not None})
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            try:
                if self._handle is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(line)
                self._handle.flush()
                return
            except OSError as exc:
                self.write_errors += 1
                _M_WRITE_ERRORS.inc()
                if self._handle is not None:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                    self._handle = None
                error = exc
        warn_once(
            _logger, str(self.path),
            "job journal append to %s failed (%r); dropping journal entries "
            "(crash-safety degraded; further write errors counted silently "
            "— see /stats)", self.path, error)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------ replay

    def replay(self) -> Dict[str, dict]:
        """Fold the journal into ``{key: last-known record}``.

        Each record is ``{"state": <event>, "kind", "body", "result",
        "error"}`` with fields accumulated across the key's lines (a ``done``
        line only carries the result; the body came from its ``submit`` line).
        Unparseable lines — including a torn final write — are skipped and
        counted in :attr:`torn_lines`.
        """
        records: Dict[str, dict] = {}
        self.torn_lines = 0
        try:
            raw = self.path.read_bytes()
        except OSError:
            return records
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
                event = entry["event"]
                key = entry["job"]
            except Exception:
                self.torn_lines += 1
                _M_TORN_LINES.inc()
                continue
            record = records.setdefault(key, {"state": None})
            record["state"] = event
            for field in ("kind", "body", "result", "error"):
                if field in entry:
                    record[field] = entry[field]
        return records

    def recover_into(self, queue: "JobQueue") -> Dict[str, int]:
        """Rebuild a (fresh) queue's job table from the journal.

        Terminal jobs are recreated in their terminal state — ``done`` with
        the journaled payload, so re-submissions and result fetches are served
        without recomputation.  Non-terminal jobs (queued / running / retrying
        at crash time) are re-decoded from their journaled body and enqueued
        for a fresh attempt; a job whose last event is ``cancel_requested``
        recovers as ``cancelled`` — the client had already asked it to stop,
        and re-running it would undo the cancellation.  Returns (and stores on
        the queue, for ``/stats``) the recovery counts; call *before*
        attaching this journal to the queue so replay does not re-journal
        itself.
        """
        from .jobs import Job
        from .wire import JobRequest, decode_request

        counts = {"done": 0, "failed": 0, "cancelled": 0, "requeued": 0,
                  "dropped": 0}
        # The backpressure bound governs *new* submissions; pre-crash the
        # queue could legitimately hold max_queue pending jobs, and bouncing
        # the (max_queue+1)th here would make a loaded server unrestartable
        # on its own journal.  Journaled jobs are always re-admitted.
        bound, queue.max_queue = queue.max_queue, None
        try:
            for key, record in self.replay().items():
                state = record.get("state")
                if state in _TERMINAL_EVENTS or state == "cancel_requested":
                    request = JobRequest(kind=record.get("kind", "unknown"),
                                         spec=None, key=key,
                                         body=record.get("body"))
                    job = Job(request)
                    if state == "done" and record.get("result") is not None:
                        job.mark_recovered("done", result=record["result"])
                        counts["done"] += 1
                    elif state == "failed":
                        job.mark_recovered("failed", error=record.get(
                            "error", "failed before the last server restart"))
                        counts["failed"] += 1
                    elif state in ("cancelled", "cancel_requested"):
                        job.mark_recovered("cancelled")
                        counts["cancelled"] += 1
                    else:  # a done line with no payload: nothing to re-serve
                        counts["dropped"] += 1
                        continue
                    queue.adopt(job)
                else:
                    body = record.get("body")
                    if body is None:
                        counts["dropped"] += 1
                        continue
                    try:
                        request = decode_request(body)
                    except Exception:
                        # The journaled body no longer decodes (library changed
                        # between restarts, say): drop it rather than crash the
                        # whole recovery.
                        counts["dropped"] += 1
                        continue
                    queue.submit(request)
                    counts["requeued"] += 1
        finally:
            queue.max_queue = bound
        queue.recovered = dict(counts)
        return counts

    # ------------------------------------------------------------------ compaction

    def compact(self, queue: "JobQueue") -> None:
        """Atomically rewrite the journal from the queue's current job table.

        One ``submit`` line per job (with its body, so a later recovery can
        re-enqueue it) plus the terminal event for finished ones.  Called
        after recovery so the file carries state, not history.
        """
        from .jobs import CANCELLED, DONE, FAILED

        lines = []
        for job in queue.jobs_snapshot():
            entry = {"event": "submit", "job": job.key,
                     "kind": job.request.kind}
            if job.request.body is not None:
                entry["body"] = job.request.body
            lines.append(json.dumps(entry, sort_keys=True))
            if job.state == DONE and job.result is not None:
                lines.append(json.dumps(
                    {"event": "done", "job": job.key, "result": job.result},
                    sort_keys=True))
            elif job.state == FAILED:
                lines.append(json.dumps(
                    {"event": "failed", "job": job.key, "error": job.error},
                    sort_keys=True))
            elif job.state == CANCELLED:
                lines.append(json.dumps(
                    {"event": "cancelled", "job": job.key}, sort_keys=True))
        payload = ("\n".join(lines) + "\n") if lines else ""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                            prefix=".journal-")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp_name, self.path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobJournal({str(self.path)!r})"


__all__ = ["JobJournal"]
