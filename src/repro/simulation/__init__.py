"""The synchronous simulation engine and run traces.

:func:`simulate` here is the low-level engine primitive (one run, in-process);
:class:`BatchSimulator` is the batched round-major engine that advances all
runs of a system together, sharing work across runs (the default for
exhaustive system construction).  Batch orchestration lives in
:mod:`repro.api`; the legacy batch helpers in :mod:`repro.simulation.runner`
are deprecated shims over that layer.
"""

from .batch import BatchSimulator, BatchTask, execute_batch, execute_batches, simulate_batch
from .engine import simulate, step
from .runner import BatchResult, Scenario, corresponding_runs, run_batch, run_protocol, sweep
from .trace import RoundRecord, RunTrace

__all__ = [
    "BatchResult",
    "BatchSimulator",
    "BatchTask",
    "RoundRecord",
    "RunTrace",
    "Scenario",
    "corresponding_runs",
    "execute_batch",
    "execute_batches",
    "run_batch",
    "run_protocol",
    "simulate",
    "simulate_batch",
    "step",
    "sweep",
]
