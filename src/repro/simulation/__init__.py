"""The synchronous simulation engine, run traces, and batch runners."""

from .engine import simulate, step
from .runner import BatchResult, Scenario, corresponding_runs, run_batch, run_protocol, sweep
from .trace import RoundRecord, RunTrace

__all__ = [
    "BatchResult",
    "RoundRecord",
    "RunTrace",
    "Scenario",
    "corresponding_runs",
    "run_batch",
    "run_protocol",
    "simulate",
    "step",
    "sweep",
]
