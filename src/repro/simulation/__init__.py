"""The synchronous simulation engine and run traces.

:func:`simulate` here is the low-level engine primitive (one run, in-process).
Batch orchestration lives in :mod:`repro.api`; the legacy batch helpers in
:mod:`repro.simulation.runner` are deprecated shims over that layer.
"""

from .engine import simulate, step
from .runner import BatchResult, Scenario, corresponding_runs, run_batch, run_protocol, sweep
from .trace import RoundRecord, RunTrace

__all__ = [
    "BatchResult",
    "RoundRecord",
    "RunTrace",
    "Scenario",
    "corresponding_runs",
    "run_batch",
    "run_protocol",
    "simulate",
    "step",
    "sweep",
]
