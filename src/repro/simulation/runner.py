"""Deprecated batch-execution entry points (superseded by :mod:`repro.api`).

Historically this module was the orchestration layer: ``run_protocol``,
``run_batch``, ``corresponding_runs``, and ``sweep`` each wired the engine to a
workload in its own way.  That role has moved to the declarative spec/executor
layer in :mod:`repro.api`; the functions here survive as thin deprecated shims
so existing imports keep working, and each one's docstring names its
replacement.

Two pieces remain first-class (they are data types, not entry points):

* :data:`Scenario` — a workload item, ``(preferences, failure-pattern)``;
* :class:`BatchResult` — the legacy one-protocol result shape, still produced
  by :meth:`repro.api.ResultSet.batch`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from .trace import RunTrace

#: A workload item: one initial global state (preferences plus failure pattern).
Scenario = Tuple[Sequence[int], FailurePattern]


@dataclass(frozen=True)
class BatchResult:
    """The traces produced by running one protocol over a workload."""

    protocol_name: str
    traces: Tuple[RunTrace, ...]

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)


def _warn_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.{name} is deprecated; use {replacement} from repro.api instead",
        DeprecationWarning,
        stacklevel=3,
    )


def simulate(protocol: ActionProtocol, n: int, preferences: Sequence[int],
             pattern: Optional[FailurePattern] = None,
             horizon: Optional[int] = None,
             exchange=None) -> RunTrace:
    """Deprecated top-level entry point: use ``repro.api.RunSpec(...).run()``.

    The low-level engine primitive remains available (non-deprecated) as
    :func:`repro.simulation.engine.simulate`; this shim exists so that
    ``from repro import simulate`` keeps working during the migration.
    """
    _warn_deprecated("simulate", "RunSpec(...).run()")
    # Delegate to the engine directly (not through RunSpec) so legacy callers
    # keep the exact historical semantics, including ValueError on malformed
    # preferences and the optional exchange override.
    from .engine import simulate as engine_simulate
    return engine_simulate(protocol, n, preferences, pattern=pattern,
                           horizon=horizon, exchange=exchange)


def run_protocol(protocol: ActionProtocol, n: int, preferences: Sequence[int],
                 pattern: Optional[FailurePattern] = None,
                 horizon: Optional[int] = None) -> RunTrace:
    """Deprecated: use ``repro.api.RunSpec(...).run()`` (or ``repro.api.run``)."""
    _warn_deprecated("run_protocol", "RunSpec(...).run()")
    from .engine import simulate as engine_simulate
    return engine_simulate(protocol, n, preferences, pattern=pattern, horizon=horizon)


def run_batch(protocol: ActionProtocol, n: int, scenarios: Iterable[Scenario],
              horizon: Optional[int] = None) -> BatchResult:
    """Deprecated: use ``Sweep.of(protocol).on(scenarios).run().batch(...)``."""
    _warn_deprecated("run_batch", "Sweep.of(protocol).on(scenarios).run().batch(name)")
    from ..api import run_sweep
    results = run_sweep([protocol], scenarios, n=n, horizon=horizon)
    return results.batch(protocol.name)


def corresponding_runs(protocols: Sequence[ActionProtocol], n: int,
                       preferences: Sequence[int], pattern: FailurePattern,
                       horizon: Optional[int] = None) -> Dict[str, RunTrace]:
    """Deprecated: use ``Sweep.of(*protocols).on([scenario]).run().corresponding(0)``.

    Runs several protocols on the *same* initial global state and returns a
    mapping from protocol name to its trace.  Protocol names must be unique
    within the call (validated by ``SweepSpec``, which raises
    :class:`~repro.core.errors.ConfigurationError` naming the collisions).
    """
    _warn_deprecated("corresponding_runs",
                     "Sweep.of(*protocols).on([scenario]).run().corresponding(0)")
    from ..api import corresponding
    return corresponding(protocols, n, preferences, pattern, horizon=horizon)


def sweep(protocols: Sequence[ActionProtocol], n: int, scenarios: Iterable[Scenario],
          horizon: Optional[int] = None) -> Dict[str, BatchResult]:
    """Deprecated: use ``Sweep.of(*protocols).on(scenarios).run().batches()``."""
    _warn_deprecated("sweep", "Sweep.of(*protocols).on(scenarios).run().batches()")
    from ..api import run_sweep
    return run_sweep(protocols, scenarios, n=n, horizon=horizon).batches()
