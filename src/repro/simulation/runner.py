"""Batch execution helpers: workloads, corresponding runs, and protocol sweeps.

The paper's notion of *corresponding runs* — runs of different protocols with
the same initial global state (same preferences, same failure pattern) — is the
basis of the dominance/optimality comparisons.  :func:`corresponding_runs`
executes several protocols against the same ``(preferences, pattern)`` pair so
the analysis layer can compare decision times agent by agent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.types import PreferenceVector
from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from .engine import simulate
from .trace import RunTrace

#: A workload item: one initial global state (preferences plus failure pattern).
Scenario = Tuple[Sequence[int], FailurePattern]


@dataclass(frozen=True)
class BatchResult:
    """The traces produced by running one protocol over a workload."""

    protocol_name: str
    traces: Tuple[RunTrace, ...]

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)


def run_protocol(protocol: ActionProtocol, n: int, preferences: Sequence[int],
                 pattern: Optional[FailurePattern] = None,
                 horizon: Optional[int] = None) -> RunTrace:
    """Simulate a single run (thin convenience wrapper over :func:`simulate`)."""
    return simulate(protocol, n, preferences, pattern=pattern, horizon=horizon)


def run_batch(protocol: ActionProtocol, n: int, scenarios: Iterable[Scenario],
              horizon: Optional[int] = None) -> BatchResult:
    """Run one protocol over every scenario in a workload."""
    traces = tuple(
        simulate(protocol, n, preferences, pattern=pattern, horizon=horizon)
        for preferences, pattern in scenarios
    )
    return BatchResult(protocol_name=protocol.name, traces=traces)


def corresponding_runs(protocols: Sequence[ActionProtocol], n: int,
                       preferences: Sequence[int], pattern: FailurePattern,
                       horizon: Optional[int] = None) -> Dict[str, RunTrace]:
    """Run several protocols on the *same* initial global state.

    Returns a mapping from protocol name to its trace.  Protocol names must be
    unique within the call.
    """
    results: Dict[str, RunTrace] = {}
    for protocol in protocols:
        if protocol.name in results:
            raise ValueError(f"duplicate protocol name {protocol.name!r} in corresponding_runs")
        results[protocol.name] = simulate(protocol, n, preferences, pattern=pattern,
                                          horizon=horizon)
    return results


def sweep(protocols: Sequence[ActionProtocol], n: int, scenarios: Iterable[Scenario],
          horizon: Optional[int] = None) -> Dict[str, BatchResult]:
    """Run several protocols over the same workload, scenario by scenario."""
    scenario_list: List[Scenario] = list(scenarios)
    return {
        protocol.name: run_batch(protocol, n, scenario_list, horizon=horizon)
        for protocol in protocols
    }
