"""Batched, round-major system construction.

:func:`~repro.simulation.engine.simulate` executes one run at a time: it
constructs the protocol's information exchange, then alternates ``act`` /
``messages_for`` / delivery / ``update`` for every agent, every round.  That is
the right shape for a single scenario, but exhaustive system construction
(:func:`repro.systems.interpreted.build_system`) calls it once per
``(pattern, preference-vector)`` pair — ``|patterns| × 2^n`` times — and almost
all of that work is repeated: runs that have seen the same messages so far are
in *identical* global states, so they perform identical actions, send identical
messages, and differ only in which edges the failure pattern blocks next.

:class:`BatchSimulator` advances **all** runs of a system together, one round
at a time, and shares every piece of work that can be shared:

* the exchange is constructed once per simulator, not once per run;
* ``act`` and ``messages_for`` are evaluated once per *distinct* local state
  (memoised; local states are frozen and hashable);
* every produced local state and every global state tuple is interned, so runs
  sharing a state prefix literally share the objects — the interning insight
  of :class:`~repro.systems.interpreted.AgentPartition` applied at build time;
* the whole round transition — actions, sent, delivered, bit counts, new
  states, the :class:`~repro.simulation.trace.RoundRecord` — is computed once
  per distinct ``(global state, blocked-edge set)`` class and reused by every
  run in the class;
* each failure pattern is pre-compiled into per-round blocked-edge sets
  (interned to small integer ids), so the inner loop never consults
  :meth:`~repro.failures.pattern.FailurePattern.delivered`.

The produced traces are **byte-identical** (per-trace pickle) to the per-run
engine's: the transition function is the same deterministic function, and the
sharing the batch introduces is only ever *across* traces — within one trace no
two states or messages are equal (the agent id and the time are part of every
local state), so the intra-trace object topology that pickling observes is
unchanged.  ``tests/test_simulation_batch.py`` enforces this differentially.

Because the simulator already knows, for every interned global state, each
agent's interned local state, it can also emit the per-agent
:class:`~repro.systems.interpreted.AgentPartition` structures for the finished
system directly (:meth:`BatchSimulator.partitions`) — a run-major relabelling
pass over precomputed class ids instead of re-hashing every local state.

This module parallelises the *build* phase; its check-phase counterpart is
:func:`repro.api.scans.scan_runs`, which shards per-run kernels over the
finished system's run space through shared memory with the same
byte-identical-to-serial contract.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING, Tuple

from ..core.errors import ConfigurationError, ProtocolError
from ..core.types import Action, PreferenceVector, validate_preferences
from ..exchange.base import InformationExchange, LocalState
from ..failures.pattern import FailurePattern
from ..obs import trace as _trace
from ..obs.bus import BUS, ProgressReporter
from ..protocols.base import ActionProtocol
from .trace import RoundRecord, RunTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exchange.messages import Message
    from ..systems.interpreted import AgentPartition

#: One batched-construction work item: ``(protocol, n, preference_vectors,
#: patterns, horizon)``.  A batch expands to the runs of every pattern crossed
#: with every preference vector, pattern-major and preference-minor — the same
#: deterministic order as :func:`repro.systems.interpreted.build_system`.
BatchTask = Tuple[ActionProtocol, int, Tuple[PreferenceVector, ...],
                  Tuple[FailurePattern, ...], int]

#: A blocked-edge set for one round: the ``(sender, receiver)`` pairs whose
#: message is dropped.
_EdgeSet = frozenset


class BatchSimulator:
    """Round-major batched simulation of many runs of one ``(E, P)`` pair.

    One simulator instance accumulates memoisation state (interned local
    states, transition classes, compiled patterns) across every call, so
    simulating several pattern chunks through the same instance keeps the
    sharing; a fresh instance starts cold.
    """

    def __init__(self, protocol: ActionProtocol, n: int) -> None:
        if n <= 0:
            raise ConfigurationError(f"number of agents must be positive, got {n}")
        protocol.validate_for(n)
        self.protocol = protocol
        self.n = n
        self.exchange: InformationExchange = protocol.make_exchange(n)
        # -- memoisation state ----------------------------------------------
        self._act: Dict[LocalState, Action] = {}
        #: state -> (outgoing message tuple, bits put on the wire)
        self._outgoing: Dict[LocalState, Tuple[Tuple["Message", ...], int]] = {}
        #: canonical local-state objects: equal states are the same object.
        self._state_intern: Dict[LocalState, LocalState] = {}
        #: canonical global-state tuples, keyed by their element object ids
        #: (valid because elements are canonical; cheap because ids are ints).
        self._states_intern: Dict[Tuple[int, ...], Tuple[LocalState, ...]] = {}
        #: id(canonical tuple) -> per-agent raw class id (see partitions()).
        self._tuple_cids: Dict[int, Tuple[int, ...]] = {}
        #: per agent: id(canonical state) -> raw class id, and raw id -> state.
        self._agent_raw: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._agent_states: List[List[LocalState]] = [[] for _ in range(n)]
        #: (id(states tuple), blocked id) -> (new states tuple, RoundRecord).
        self._transitions: Dict[Tuple[int, int], Tuple[Tuple[LocalState, ...], RoundRecord]] = {}
        #: blocked-edge set -> small id, and id -> set (delivery application).
        self._blocked_ids: Dict[_EdgeSet, int] = {}
        self._blocked_sets: List[_EdgeSet] = []
        #: id(pattern) -> (pattern, per-round blocked ids); keyed by identity
        #: so the per-preference reuse of one pattern object is free, and the
        #: pattern reference keeps the id stable.
        self._pattern_rounds: Dict[int, Tuple[FailurePattern, Tuple[int, ...]]] = {}
        #: preference vector -> canonical initial global state tuple.
        self._initial: Dict[PreferenceVector, Tuple[LocalState, ...]] = {}

    # ------------------------------------------------------------------ interning

    def _intern_state(self, state: LocalState) -> LocalState:
        canonical = self._state_intern.get(state)
        if canonical is None:
            self._state_intern[state] = state
            canonical = state
        return canonical

    def _intern_states(self, states: Tuple[LocalState, ...]) -> Tuple[LocalState, ...]:
        key = tuple(map(id, states))
        canonical = self._states_intern.get(key)
        if canonical is None:
            self._states_intern[key] = states
            cids = []
            for agent, state in enumerate(states):
                raw_by_id = self._agent_raw[agent]
                cid = raw_by_id.get(id(state))
                if cid is None:
                    cid = len(self._agent_states[agent])
                    raw_by_id[id(state)] = cid
                    self._agent_states[agent].append(state)
                cids.append(cid)
            self._tuple_cids[id(states)] = tuple(cids)
            canonical = states
        return canonical

    # ------------------------------------------------------------------ compilation

    def _compile_pattern(self, pattern: FailurePattern, horizon: int) -> Tuple[int, ...]:
        """Per-round blocked-edge ids for ``pattern`` over ``0 .. horizon - 1``."""
        cached = self._pattern_rounds.get(id(pattern))
        if cached is not None and len(cached[1]) >= horizon:
            return cached[1][:horizon]
        by_round: Dict[int, set] = {}
        for (round_index, sender, receiver) in pattern.all_blocked:
            if round_index < horizon:
                by_round.setdefault(round_index, set()).add((sender, receiver))
        ids = []
        for round_index in range(horizon):
            edges = frozenset(by_round.get(round_index, ()))
            bid = self._blocked_ids.get(edges)
            if bid is None:
                bid = len(self._blocked_sets)
                self._blocked_ids[edges] = bid
                self._blocked_sets.append(edges)
            ids.append(bid)
        compiled = tuple(ids)
        self._pattern_rounds[id(pattern)] = (pattern, compiled)
        return compiled

    def _initial_states(self, preferences: PreferenceVector) -> Tuple[LocalState, ...]:
        states = self._initial.get(preferences)
        if states is None:
            states = self._intern_states(tuple(
                self._intern_state(self.exchange.initial_state(agent, preferences[agent]))
                for agent in range(self.n)
            ))
            self._initial[preferences] = states
        return states

    # ------------------------------------------------------------------ the transition

    def _act_of(self, state: LocalState) -> Action:
        action = self._act.get(state)
        if action is None:
            action = self.protocol.act(state)
            self._act[state] = action
        return action

    def _outgoing_of(self, state: LocalState,
                     action: Action) -> Tuple[Tuple["Message", ...], int]:
        cached = self._outgoing.get(state)
        if cached is None:
            exchange = self.exchange
            outgoing = tuple(exchange.messages_for(state, action))
            if len(outgoing) != self.n:
                raise ProtocolError(
                    f"{exchange.name} produced {len(outgoing)} messages for agent "
                    f"{state.agent}, expected {self.n}"
                )
            bits = sum(exchange.message_bits(message) for message in outgoing)
            cached = (outgoing, bits)
            self._outgoing[state] = cached
        return cached

    def _transition(self, states: Tuple[LocalState, ...], blocked: _EdgeSet,
                    time: int) -> Tuple[Tuple[LocalState, ...], RoundRecord]:
        """One synchronous round for the class of runs in ``states`` with ``blocked`` edges.

        Mirrors :func:`repro.simulation.engine.step` exactly (same evaluation
        order, same error behaviour); computed once per distinct
        ``(states, blocked)`` pair and reused by every run in the class.
        """
        n = self.n
        exchange = self.exchange
        actions = tuple(self._act_of(states[agent]) for agent in range(n))
        sent: List[Tuple["Message", ...]] = []
        bits_by_sender: List[int] = []
        for sender in range(n):
            outgoing, bits = self._outgoing_of(states[sender], actions[sender])
            sent.append(outgoing)
            bits_by_sender.append(bits)
        delivered: List[Tuple["Message", ...]] = []
        for receiver in range(n):
            inbox: List["Message"] = []
            for sender in range(n):
                message = sent[sender][receiver]
                if message is not None and (sender, receiver) not in blocked:
                    inbox.append(message)
                else:
                    inbox.append(None)
            delivered.append(tuple(inbox))
        new_states = self._intern_states(tuple(
            self._intern_state(exchange.update(states[agent], actions[agent], delivered[agent]))
            for agent in range(n)
        ))
        record = RoundRecord(
            round_index=time,
            actions=actions,
            sent=tuple(sent),
            delivered=tuple(delivered),
            states_after=new_states,
            bits_by_sender=tuple(bits_by_sender),
        )
        return new_states, record

    # ------------------------------------------------------------------ public API

    def simulate_scenarios(self, scenarios: Sequence[Tuple[Sequence[int], Optional[FailurePattern]]],
                           horizon: int) -> List[RunTrace]:
        """Simulate every ``(preferences, pattern)`` scenario for exactly ``horizon`` rounds.

        Returns one :class:`~repro.simulation.trace.RunTrace` per scenario, in
        scenario order, each byte-identical (per-trace pickle) to what
        :func:`~repro.simulation.engine.simulate` produces for the same inputs.
        """
        if horizon < 0:
            raise ConfigurationError(f"horizon must be non-negative, got {horizon}")
        n = self.n
        current: List[Tuple[LocalState, ...]] = []
        round_ids: List[Tuple[int, ...]] = []
        traces: List[RunTrace] = []
        for preferences, pattern in scenarios:
            prefs = validate_preferences(preferences, n)
            if pattern is None:
                pattern = FailurePattern.failure_free(n)
            if pattern.n != n:
                raise ConfigurationError(
                    f"failure pattern is for {pattern.n} agents, expected {n}")
            states = self._initial_states(prefs)
            current.append(states)
            round_ids.append(self._compile_pattern(pattern, horizon))
            traces.append(RunTrace(
                n=n,
                protocol_name=self.protocol.name,
                exchange_name=self.exchange.name,
                preferences=prefs,
                pattern=pattern,
                initial_states=states,
            ))
        transitions = self._transitions
        blocked_sets = self._blocked_sets
        count = len(traces)
        # Observability is opt-in and must cost nothing otherwise: the round
        # loop is the build hot path, so both the per-round spans and the
        # progress reporter are gated on an active subscriber up front.
        tracing = _trace.is_active()
        reporter = None
        if BUS.has_subscribers("progress"):
            reporter = ProgressReporter(f"build:{self.protocol.name}",
                                        total=horizon, unit="rounds")
        for time in range(horizon):
            round_span = _trace.NOOP
            if tracing:
                round_span = _trace.span("build.round", "build",
                                         {"round": time, "runs": count})
            with round_span:
                for index in range(count):
                    states = current[index]
                    bid = round_ids[index][time]
                    key = (id(states), bid)
                    hit = transitions.get(key)
                    if hit is None:
                        hit = self._transition(states, blocked_sets[bid], time)
                        transitions[key] = hit
                    new_states, record = hit
                    traces[index].rounds.append(record)
                    current[index] = new_states
            if reporter is not None:
                reporter.advance()
        return traces

    def simulate_patterns(self, patterns: Iterable[FailurePattern],
                          preference_vectors: Iterable[Sequence[int]],
                          horizon: int) -> List[RunTrace]:
        """Simulate ``patterns × preference_vectors`` (pattern-major, preference-minor)."""
        preference_list = [tuple(vector) for vector in preference_vectors]
        return self.simulate_scenarios(
            [(prefs, pattern) for pattern in patterns for prefs in preference_list],
            horizon,
        )

    def partitions(self, traces: Sequence[RunTrace],
                   horizon: int) -> Dict[int, "AgentPartition"]:
        """Build every agent's :class:`~repro.systems.interpreted.AgentPartition` for ``traces``.

        ``traces`` must all have been produced by *this* simulator (their
        global-state tuples are interned here), and must be the runs of the
        system in run order.  The result is identical to what
        :meth:`~repro.systems.interpreted.InterpretedSystem.partition` computes
        — classes numbered by first appearance in run-major point order — but
        costs one id lookup per point plus one integer relabel per (point,
        agent), instead of re-hashing every local state.
        """
        from ..systems.interpreted import AgentPartition

        n = self.n
        stride = horizon + 1
        num_points = len(traces) * stride
        nbytes = (num_points + 7) // 8
        final_of_raw: List[Dict[int, int]] = [dict() for _ in range(n)]
        class_bits: List[List[bytearray]] = [[] for _ in range(n)]
        class_states: List[List[LocalState]] = [[] for _ in range(n)]
        first_indices: List[List[int]] = [[] for _ in range(n)]
        tuple_cids = self._tuple_cids
        agent_states = self._agent_states
        index = 0
        for trace in traces:
            if len(trace.rounds) != horizon:
                raise ConfigurationError(
                    f"trace has {len(trace.rounds)} rounds, expected horizon {horizon}")
            states = trace.initial_states
            for time in range(stride):
                if time:
                    states = trace.rounds[time - 1].states_after
                cids = tuple_cids.get(id(states))
                if cids is None:
                    raise ConfigurationError(
                        "trace was not produced by this BatchSimulator "
                        "(unknown global state tuple)")
                for agent in range(n):
                    raw = cids[agent]
                    remap = final_of_raw[agent]
                    cid = remap.get(raw)
                    if cid is None:
                        cid = len(class_bits[agent])
                        remap[raw] = cid
                        class_bits[agent].append(bytearray(nbytes))
                        class_states[agent].append(agent_states[agent][raw])
                        first_indices[agent].append(index)
                    bits = class_bits[agent][cid]
                    bits[index >> 3] |= 1 << (index & 7)
                index += 1
        return {
            agent: AgentPartition(
                class_masks=tuple(int.from_bytes(bits, "little")
                                  for bits in class_bits[agent]),
                class_states=tuple(class_states[agent]),
                class_first_indices=tuple(first_indices[agent]),
            )
            for agent in range(n)
        }


def simulate_batch(protocol: ActionProtocol, n: int,
                   scenarios: Sequence[Tuple[Sequence[int], Optional[FailurePattern]]],
                   horizon: int) -> List[RunTrace]:
    """One-shot convenience: batch-simulate ``scenarios`` with a fresh simulator."""
    return BatchSimulator(protocol, n).simulate_scenarios(scenarios, horizon)


def execute_batch(task: BatchTask) -> List[RunTrace]:
    """Execute one batched work item with a fresh simulator.

    Module-level (like :func:`repro.api.executors.execute_task`) so
    process-pool workers can import it by qualified name.
    """
    protocol, n, preference_vectors, patterns, horizon = task
    simulator = BatchSimulator(protocol, n)
    return simulator.simulate_patterns(patterns, preference_vectors, horizon)


def execute_batches(tasks: Sequence[BatchTask]) -> List[RunTrace]:
    """Execute several batches in-process, in order, concatenating the traces.

    Consecutive batches for the same ``(protocol, n)`` pair share one
    simulator (and with it every memoised transition), so splitting a system
    into chunks for scheduling does not lose the in-process sharing.
    """
    traces: List[RunTrace] = []
    simulator: Optional[BatchSimulator] = None
    signature: Optional[Tuple[int, int]] = None
    for task in tasks:
        protocol, n, preference_vectors, patterns, horizon = task
        if simulator is None or signature != (id(protocol), n):
            simulator = BatchSimulator(protocol, n)
            signature = (id(protocol), n)
        traces.extend(simulator.simulate_patterns(patterns, preference_vectors, horizon))
    return traces
