"""The synchronous round-based simulation engine.

This implements the transition rule of Section 3 exactly:

1. every agent ``i`` performs the action ``P_i(s_i)`` given by the action
   protocol;
2. every agent chooses its outgoing messages ``μ_i(s_i, P_i(s_i))``;
3. the failure pattern decides which messages arrive (``F(k, i, j)``);
4. every agent updates its state with ``δ_i(s_i, P_i(s_i), received)``.

The engine is deterministic: a run is a pure function of the action protocol,
the information-exchange protocol it constructs, the initial preferences, and
the failure pattern — precisely the paper's statement that "for each initial
state, a run with that initial state is uniquely determined".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError, ProtocolError
from ..core.types import PreferenceVector, validate_preferences
from ..exchange.base import InformationExchange, LocalState
from ..exchange.messages import Message
from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from .trace import RoundRecord, RunTrace

#: Hard cap on simulated rounds when no horizon is given, expressed as a
#: multiplier over ``t + 2`` (the paper's termination bound); it only exists to
#: turn a non-terminating (buggy) protocol into an exception instead of a hang.
_SAFETY_FACTOR = 8


def simulate(protocol: ActionProtocol, n: int, preferences: Sequence[int],
             pattern: Optional[FailurePattern] = None,
             horizon: Optional[int] = None,
             exchange: Optional[InformationExchange] = None) -> RunTrace:
    """Simulate one run.

    Parameters
    ----------
    protocol:
        The action protocol; it also determines the information-exchange
        protocol via :meth:`~repro.protocols.base.ActionProtocol.make_exchange`.
    n:
        Number of agents.
    preferences:
        The initial preferences, one per agent.
    pattern:
        The failure pattern (defaults to the failure-free pattern).
    horizon:
        If given, simulate exactly this many rounds.  If ``None``, simulate
        until every agent has decided (with a generous safety cap), which is
        the natural stopping point for EBA protocols.
    exchange:
        Override the exchange (used by tests that want to pair a protocol with
        a non-default exchange).

    Returns
    -------
    RunTrace
        The complete record of the run.
    """
    prefs: PreferenceVector = validate_preferences(preferences, n)
    if pattern is None:
        pattern = FailurePattern.failure_free(n)
    if pattern.n != n:
        raise ConfigurationError(f"failure pattern is for {pattern.n} agents, expected {n}")
    protocol.validate_for(n)
    if exchange is None:
        exchange = protocol.make_exchange(n)

    states: List[LocalState] = [exchange.initial_state(agent, prefs[agent]) for agent in range(n)]
    trace = RunTrace(
        n=n,
        protocol_name=protocol.name,
        exchange_name=exchange.name,
        preferences=prefs,
        pattern=pattern,
        initial_states=tuple(states),
    )

    cap = horizon if horizon is not None else _SAFETY_FACTOR * (protocol.t + 2)
    time = 0
    while True:
        if horizon is not None:
            if time >= horizon:
                break
        else:
            if all(state.decided is not None for state in states):
                break
            if time >= cap:
                raise ProtocolError(
                    f"{protocol.name} did not terminate within {cap} rounds "
                    f"(n={n}, t={protocol.t}, pattern={pattern.describe()})"
                )
        states, record = step(exchange, protocol, states, pattern, time)
        trace.rounds.append(record)
        time += 1
    return trace


def step(exchange: InformationExchange, protocol: ActionProtocol,
         states: Sequence[LocalState], pattern: FailurePattern,
         time: int) -> Tuple[List[LocalState], RoundRecord]:
    """Execute one synchronous round starting at ``time`` and return (new states, record)."""
    n = exchange.n
    actions = tuple(protocol.act(states[agent]) for agent in range(n))

    sent: List[Tuple[Message, ...]] = []
    bits_by_sender: List[int] = []
    for sender in range(n):
        outgoing = exchange.messages_for(states[sender], actions[sender])
        if len(outgoing) != n:
            raise ProtocolError(
                f"{exchange.name} produced {len(outgoing)} messages for agent {sender}, expected {n}"
            )
        sent.append(tuple(outgoing))
        bits_by_sender.append(sum(exchange.message_bits(message) for message in outgoing))

    delivered: List[Tuple[Message, ...]] = []
    for receiver in range(n):
        inbox: List[Message] = []
        for sender in range(n):
            message = sent[sender][receiver]
            if message is not None and pattern.delivered(time, sender, receiver):
                inbox.append(message)
            else:
                inbox.append(None)
        delivered.append(tuple(inbox))

    new_states = [
        exchange.update(states[agent], actions[agent], delivered[agent])
        for agent in range(n)
    ]

    record = RoundRecord(
        round_index=time,
        actions=actions,
        sent=tuple(sent),
        delivered=tuple(delivered),
        states_after=tuple(new_states),
        bits_by_sender=tuple(bits_by_sender),
    )
    return new_states, record
