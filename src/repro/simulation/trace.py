"""Run traces: the complete record of a simulated run.

A :class:`RunTrace` is the library's concrete counterpart of the paper's run
``r``: it records, for every round, the actions performed, the messages sent,
the messages delivered, and the resulting local states, together with the
initial preferences and the failure pattern that generated the run.  All of the
analysis (specification checking, metrics, 0-chain extraction, dominance) works
on traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import ReproError
from ..core.types import Action, AgentId, PreferenceVector, Value
from ..exchange.base import LocalState
from ..exchange.messages import Message
from ..failures.pattern import FailurePattern


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in a single round.

    Attributes
    ----------
    round_index:
        The time at which the round starts; the paper calls this round
        ``round_index + 1`` (rounds are 1-based in prose, times are 0-based).
    actions:
        ``actions[i]`` is the action agent ``i`` performed this round.
    sent:
        ``sent[i][j]`` is the message agent ``i`` addressed to agent ``j``
        (before the failure pattern is applied); ``None`` is ``⊥``.
    delivered:
        ``delivered[j][i]`` is the message agent ``j`` actually received from
        agent ``i`` (``None`` if omitted or never sent).
    states_after:
        The local states at time ``round_index + 1``.
    bits_by_sender:
        ``bits_by_sender[i]`` is the number of bits agent ``i`` put on the wire
        this round (counting every addressed copy, including the self-copy).
    """

    round_index: int
    actions: Tuple[Action, ...]
    sent: Tuple[Tuple[Message, ...], ...]
    delivered: Tuple[Tuple[Message, ...], ...]
    states_after: Tuple[LocalState, ...]
    bits_by_sender: Tuple[int, ...]

    @property
    def round_number(self) -> int:
        """The 1-based round number used in the paper's prose."""
        return self.round_index + 1


@dataclass
class RunTrace:
    """A complete simulated run of an ``(E, P)`` pair against a failure pattern."""

    n: int
    protocol_name: str
    exchange_name: str
    preferences: PreferenceVector
    pattern: FailurePattern
    initial_states: Tuple[LocalState, ...]
    rounds: List[RoundRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ structure

    @property
    def horizon(self) -> int:
        """The number of simulated rounds (the final time index)."""
        return len(self.rounds)

    @property
    def nonfaulty(self) -> frozenset[AgentId]:
        """The nonfaulty agents of the run's failure pattern."""
        return self.pattern.nonfaulty

    def state_of(self, agent: AgentId, time: int) -> LocalState:
        """The local state of ``agent`` at ``time`` (0 = initial state)."""
        if time == 0:
            return self.initial_states[agent]
        if not 1 <= time <= self.horizon:
            raise ReproError(f"time {time} outside 0..{self.horizon}")
        return self.rounds[time - 1].states_after[agent]

    def states_at(self, time: int) -> Tuple[LocalState, ...]:
        """All local states at ``time``."""
        if time == 0:
            return self.initial_states
        return self.rounds[time - 1].states_after

    def action_of(self, agent: AgentId, round_index: int) -> Action:
        """The action of ``agent`` in the round starting at time ``round_index``."""
        return self.rounds[round_index].actions[agent]

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self.rounds)

    # ------------------------------------------------------------------ decisions

    def decision_round(self, agent: AgentId) -> Optional[int]:
        """The 1-based round in which ``agent`` first decides, or ``None``."""
        for record in self.rounds:
            if record.actions[agent].is_decision:
                return record.round_number
        return None

    def decision_value(self, agent: AgentId) -> Optional[Value]:
        """The value ``agent`` first decides, or ``None`` if it never decides."""
        for record in self.rounds:
            action = record.actions[agent]
            if action.is_decision:
                return action.value
        return None

    def decisions(self) -> Dict[AgentId, Tuple[Optional[int], Optional[Value]]]:
        """Map every agent to its (first decision round, decided value)."""
        return {
            agent: (self.decision_round(agent), self.decision_value(agent))
            for agent in range(self.n)
        }

    def decided_agents(self) -> frozenset[AgentId]:
        """The agents that decide at some point in the trace."""
        return frozenset(agent for agent in range(self.n)
                         if self.decision_round(agent) is not None)

    def all_decided(self) -> bool:
        """Whether every agent (faulty or not) decides in the trace."""
        return len(self.decided_agents()) == self.n

    def all_nonfaulty_decided(self) -> bool:
        """Whether every nonfaulty agent decides in the trace."""
        return self.nonfaulty <= self.decided_agents()

    def last_decision_round(self, nonfaulty_only: bool = False) -> Optional[int]:
        """The latest first-decision round among (optionally only nonfaulty) agents."""
        agents = self.nonfaulty if nonfaulty_only else frozenset(range(self.n))
        rounds = [self.decision_round(agent) for agent in agents]
        if any(r is None for r in rounds):
            return None
        return max(rounds) if rounds else None

    # ------------------------------------------------------------------ communication accounting

    def total_bits(self, include_self: bool = True) -> int:
        """The total number of bits put on the wire in the run.

        ``include_self=False`` excludes each agent's copy to itself, matching
        the "sends it to all the other agents" accounting of Proposition 8.1.
        """
        total = 0
        for record in self.rounds:
            for sender in range(self.n):
                for receiver in range(self.n):
                    if not include_self and sender == receiver:
                        continue
                    message = record.sent[sender][receiver]
                    if message is None:
                        continue
                    total += message.bit_size(self.n)
        return total

    def total_messages(self, include_self: bool = True) -> int:
        """The total number of non-``⊥`` messages addressed in the run."""
        total = 0
        for record in self.rounds:
            for sender in range(self.n):
                for receiver in range(self.n):
                    if not include_self and sender == receiver:
                        continue
                    if record.sent[sender][receiver] is not None:
                        total += 1
        return total

    def delivered_message(self, round_index: int, sender: AgentId,
                          receiver: AgentId) -> Message:
        """The message ``receiver`` got from ``sender`` in the given round (or ``None``)."""
        return self.rounds[round_index].delivered[receiver][sender]

    # ------------------------------------------------------------------ cosmetics

    def summary(self) -> str:
        """A one-line human-readable summary of the run."""
        decided = self.decisions()
        decisions = ", ".join(
            f"{agent}→{value}@r{round_number}" if round_number is not None else f"{agent}→undecided"
            for agent, (round_number, value) in sorted(decided.items())
        )
        return (f"{self.protocol_name} on {self.exchange_name}, n={self.n}, "
                f"{self.pattern.describe()}: {decisions}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RunTrace({self.protocol_name}, n={self.n}, horizon={self.horizon}, "
                f"pattern={self.pattern.describe()!r})")
