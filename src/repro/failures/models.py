"""Failure models: families of admissible failure patterns, behind a registry.

A *failure model* (Section 3) is a set of failure patterns, typically
parameterised by an upper bound ``t`` on the number of faulty agents.  The
paper proves its optimality results over the sending-omissions model ``SO(t)``;
this module keeps the whole pipeline parametric over the model family so that
contexts, adversaries, and experiments can swap the failure regime:

* :class:`SendingOmissionModel` — ``SO(t)``: at most ``t`` faulty agents, and
  only faulty agents may omit to *send* messages (the paper's model).
* :class:`ReceiveOmissionModel` — ``RO(t)``: only faulty agents may omit to
  *receive* messages; everything they send is delivered.
* :class:`GeneralOmissionModel` — ``GO(t)``: faulty agents may drop both
  outgoing and incoming messages (sending **and** receive omissions).
* :class:`CrashModel` — the crash-failure special case of ``SO(t)``, where once
  an agent omits a message to some agent it omits all later messages to
  everyone.
* :class:`FailureFreeModel` — no failures at all (used by the Section 8 cost
  analysis, which focuses on failure-free runs).

Each model can validate a pattern, generate random members, and (for small
systems) enumerate every pattern up to a bounded horizon — the latter is what
the epistemic model checker uses to build full interpreted systems.  The
edge-omission models (``SO``/``RO``/``GO``) share one validate/sample/enumerate
machinery parameterised by which *slots* — per-(round, sender, receiver) edges
charged to a faulty endpoint — the model opens up
(:class:`EdgeOmissionModel`).

Models are registered by name (:func:`register_model`) so callers — contexts,
workload generators, the ``repro-eba failure-models`` CLI — can resolve them
from strings::

    >>> make_model("general-omission", n=3, t=1).name
    'GO(1)'
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from ..core.errors import ConfigurationError, FailureModelError
from ..core.types import AgentId
from .pattern import FailurePattern, Omission

#: A slot list: the blocked-triple candidates a model opens for one faulty set,
#: split into sender-charged and receiver-charged edges.
SlotLists = Tuple[List[Omission], List[Omission]]


@dataclass(frozen=True)
class PatternOrbit:
    """One agent-permutation symmetry class of failure patterns.

    Every failure model in the library is closed under relabelling the agents
    (:meth:`FailurePattern.relabel`): permuting agent identities maps
    admissible patterns to admissible patterns.  An orbit is one equivalence
    class of that group action, represented canonically.

    Attributes
    ----------
    representative:
        The canonical member: the orbit's minimum under
        :meth:`FailurePattern.sort_key`.
    size:
        The number of *distinct* patterns in the orbit
        (``n! / |stabiliser|``); summing ``size`` over every orbit recovers
        the model's exact pattern count.
    """

    representative: FailurePattern
    size: int

    def expand(self) -> Tuple[FailurePattern, ...]:
        """Every distinct member of the orbit, sorted by canonical key.

        The union of ``expand()`` over all of a model's orbits is exactly the
        set :meth:`FailureModel.enumerate` yields (as a set; the order is the
        canonical per-orbit order rather than the slot-enumeration order).
        """
        n = self.representative.n
        members = {
            self.representative.relabel(permutation)
            for permutation in itertools.permutations(range(n))
        }
        return tuple(sorted(members, key=FailurePattern.sort_key))


@dataclass(frozen=True)
class FailureModel:
    """Base class for failure models.

    Attributes
    ----------
    n:
        Number of agents.
    t:
        Maximum number of faulty agents allowed by the model.

    Class attributes
    ----------------
    allows_send_omissions / allows_receive_omissions:
        Which kinds of charged events the model's patterns may contain; the
        shared :meth:`validate` enforces them.
    samples_per_edge:
        Whether :meth:`sample` accepts an ``omission_probability`` keyword
        (true for the edge-omission models, false for crash/failure-free).
    """

    n: int
    t: int

    allows_send_omissions: ClassVar[bool] = True
    allows_receive_omissions: ClassVar[bool] = False
    samples_per_edge: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"number of agents must be positive, got {self.n}")
        if not 0 <= self.t < self.n:
            raise ConfigurationError(
                f"the bound t on faulty agents must satisfy 0 <= t < n, got t={self.t}, n={self.n}"
            )

    # -- interface ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """A short name for reports (e.g. ``SO(2)``)."""
        return f"{type(self).__name__}({self.t})"

    def admits(self, pattern: FailurePattern) -> bool:
        """Whether ``pattern`` belongs to this failure model."""
        try:
            self.validate(pattern)
        except FailureModelError:
            return False
        return True

    def validate(self, pattern: FailurePattern) -> FailurePattern:
        """Validate ``pattern`` against the model, raising :class:`FailureModelError` if illegal.

        The shared checks: the pattern is for the right number of agents, the
        faulty set respects the bound ``t``, and the pattern only uses the
        kinds of charged events the model allows.  (That a sending omission's
        sender and a receive omission's receiver are faulty is enforced by
        :class:`~repro.failures.pattern.FailurePattern` itself.)
        """
        if pattern.n != self.n:
            raise FailureModelError(
                f"pattern is for {pattern.n} agents but the model expects {self.n}"
            )
        if pattern.num_faulty > self.t:
            raise FailureModelError(
                f"pattern has {pattern.num_faulty} faulty agents but the model allows at most {self.t}"
            )
        if pattern.omissions and not self.allows_send_omissions:
            raise FailureModelError(
                f"{self.name} does not admit sending omissions "
                f"({len(pattern.omissions)} present)"
            )
        if pattern.receive_omissions and not self.allows_receive_omissions:
            raise FailureModelError(
                f"{self.name} does not admit receive omissions "
                f"({len(pattern.receive_omissions)} present)"
            )
        return pattern

    # -- generation -----------------------------------------------------------------

    def failure_free(self) -> FailurePattern:
        """The failure-free pattern (a member of every model)."""
        return FailurePattern.failure_free(self.n)

    def sample(self, rng: random.Random, horizon: int, **kwargs) -> FailurePattern:
        """Draw a random pattern admissible under this model (subclass responsibility)."""
        raise NotImplementedError

    def enumerate(self, horizon: int, max_faulty: Optional[int] = None) -> Iterator[FailurePattern]:
        """Enumerate every admissible pattern up to ``horizon`` rounds (subclass responsibility).

        Warning: the number of patterns is exponential in ``n * horizon``; this
        is intended for the small systems used by the epistemic model checker.
        """
        raise NotImplementedError

    def enumerate_orbits(self, horizon: int,
                         max_faulty: Optional[int] = None) -> Iterator[PatternOrbit]:
        """Enumerate one canonical representative per agent-permutation orbit.

        Yields a :class:`PatternOrbit` — canonical representative plus exact
        orbit size — for every symmetry class of :meth:`enumerate`'s patterns,
        in order of first appearance in the enumeration.  The expansion of all
        yielded orbits is exactly the enumerated pattern set, and the sizes
        sum to the exact pattern count, so orbit-weighted statistics over
        agent-symmetric quantities match full enumeration while touching
        roughly ``1/n!`` of the patterns.

        The generic implementation canonicalises every enumerated pattern; it
        relies only on the model being closed under
        :meth:`FailurePattern.relabel`, which every model in the library is.
        """
        permutations = list(itertools.permutations(range(self.n)))
        seen = set()
        for pattern in self.enumerate(horizon, max_faulty=max_faulty):
            if pattern in seen:
                continue
            members = {pattern.relabel(permutation) for permutation in permutations}
            seen.update(members)
            yield PatternOrbit(
                representative=min(members, key=FailurePattern.sort_key),
                size=len(members),
            )

    def count_orbits(self, horizon: int, max_faulty: Optional[int] = None) -> int:
        """The number of agent-permutation orbits :meth:`enumerate_orbits` yields."""
        return sum(1 for _orbit in self.enumerate_orbits(horizon, max_faulty=max_faulty))


@dataclass(frozen=True)
class EdgeOmissionModel(FailureModel):
    """Shared machinery for the per-edge omission models (``SO``/``RO``/``GO``).

    A subclass describes itself by :meth:`slots`: for a given faulty set and
    horizon, which (round, sender, receiver) edges may be dropped, split into
    sender-charged and receiver-charged lists.  Enumeration ranges over every
    faulty set of size at most ``t`` and every subset of the combined slot
    list; sampling flips an independent coin per slot; counting is
    ``Σ C(n, k) · 2^(#slots(k))``.
    """

    samples_per_edge: ClassVar[bool] = True

    def slots(self, faulty: Sequence[AgentId], horizon: int) -> SlotLists:
        """The droppable edges for one faulty set: ``(send_slots, receive_slots)``.

        Subclass responsibility.  Slot order is part of the model's canonical
        enumeration order, so keep it deterministic.
        """
        raise NotImplementedError

    # -- shared generation ----------------------------------------------------------

    def _pattern(self, faulty: frozenset, send: Iterable[Omission],
                 receive: Iterable[Omission]) -> FailurePattern:
        return FailurePattern(n=self.n, faulty=faulty, omissions=frozenset(send),
                              receive_omissions=frozenset(receive))

    def sample(self, rng: random.Random, horizon: int,
               omission_probability: float = 0.5,
               num_faulty: Optional[int] = None) -> FailurePattern:
        """Draw a random pattern: pick a faulty set, then flip a coin per slot.

        Parameters
        ----------
        rng:
            Source of randomness (callers own the seed for reproducibility).
        horizon:
            Rounds ``0 .. horizon - 1`` may contain omissions.
        omission_probability:
            Per-slot probability of dropping the edge.
        num_faulty:
            Exact number of faulty agents; defaults to a uniform draw in ``0..t``.
        """
        if num_faulty is None:
            num_faulty = rng.randint(0, self.t)
        if not 0 <= num_faulty <= self.t:
            raise ConfigurationError(f"num_faulty={num_faulty} outside 0..{self.t}")
        faulty = frozenset(rng.sample(range(self.n), num_faulty))
        send_slots, receive_slots = self.slots(tuple(sorted(faulty)), horizon)
        send = [slot for slot in send_slots if rng.random() < omission_probability]
        receive = [slot for slot in receive_slots if rng.random() < omission_probability]
        return self._pattern(faulty, send, receive)

    def enumerate(self, horizon: int, max_faulty: Optional[int] = None) -> Iterator[FailurePattern]:
        """Enumerate all patterns with blocked edges confined to ``0 .. horizon - 1``.

        The enumeration ranges over every faulty set of size at most
        ``min(t, max_faulty)`` and, per faulty set, every subset of the slot
        list — sender-charged slots first, receiver-charged slots second.
        Self-omissions are not enumerated (they are unobservable and only blow
        up the state space), and an edge between two faulty agents is opened
        as exactly one slot, so no two enumerated patterns are
        delivery-equivalent.
        """
        bound = self.t if max_faulty is None else min(self.t, max_faulty)
        for size in range(bound + 1):
            for faulty in itertools.combinations(range(self.n), size):
                faulty_set = frozenset(faulty)
                send_slots, receive_slots = self.slots(faulty, horizon)
                num_send = len(send_slots)
                slots = send_slots + receive_slots
                for blocked_mask in itertools.product((False, True), repeat=len(slots)):
                    send = frozenset(
                        slot for slot, blocked in zip(send_slots, blocked_mask[:num_send])
                        if blocked
                    )
                    receive = frozenset(
                        slot for slot, blocked in zip(receive_slots, blocked_mask[num_send:])
                        if blocked
                    )
                    yield self._pattern(faulty_set, send, receive)

    def count_patterns(self, horizon: int, max_faulty: Optional[int] = None) -> int:
        """The number of patterns :meth:`enumerate` would yield (without generating them)."""
        bound = self.t if max_faulty is None else min(self.t, max_faulty)
        total = 0
        for size in range(bound + 1):
            representative = tuple(range(size))
            send_slots, receive_slots = self.slots(representative, horizon)
            total += _binomial(self.n, size) * (2 ** (len(send_slots) + len(receive_slots)))
        return total


@dataclass(frozen=True)
class SendingOmissionModel(EdgeOmissionModel):
    """The sending-omissions model ``SO(t)`` of Section 3."""

    allows_send_omissions: ClassVar[bool] = True
    allows_receive_omissions: ClassVar[bool] = False

    @property
    def name(self) -> str:
        return f"SO({self.t})"

    def slots(self, faulty: Sequence[AgentId], horizon: int) -> SlotLists:
        """Sender-charged edges only: every (round, faulty sender, other receiver)."""
        send = [
            (round_index, sender, receiver)
            for sender in faulty
            for round_index in range(horizon)
            for receiver in range(self.n)
            if receiver != sender
        ]
        return send, []

    def sample(self, rng: random.Random, horizon: int,
               omission_probability: float = 0.5,
               num_faulty: Optional[int] = None) -> FailurePattern:
        """Draw a random ``SO(t)`` pattern.

        Overrides the shared per-slot sampler only to preserve the historical
        draw order (per faulty agent, then round, then receiver, in faulty-set
        iteration order), so seeded workloads generated before the model
        registry existed stay bit-for-bit reproducible.
        """
        if num_faulty is None:
            num_faulty = rng.randint(0, self.t)
        if not 0 <= num_faulty <= self.t:
            raise ConfigurationError(f"num_faulty={num_faulty} outside 0..{self.t}")
        faulty = frozenset(rng.sample(range(self.n), num_faulty))
        omissions = set()
        for agent in faulty:
            for round_index in range(horizon):
                for receiver in range(self.n):
                    if receiver == agent:
                        continue
                    if rng.random() < omission_probability:
                        omissions.add((round_index, agent, receiver))
        return FailurePattern(n=self.n, faulty=faulty, omissions=frozenset(omissions))


@dataclass(frozen=True)
class ReceiveOmissionModel(EdgeOmissionModel):
    """The receive-omissions model ``RO(t)``: faulty agents may fail to listen.

    The mirror image of ``SO(t)``: every message a faulty agent *sends* is
    delivered, but it may drop any subset of its *incoming* messages.  A
    nonfaulty agent therefore always hears from every nonfaulty agent — but,
    unlike under ``SO(t)``, a faulty agent's silence towards nobody can hide
    information: what the faulty agent failed to learn never propagates.
    """

    allows_send_omissions: ClassVar[bool] = False
    allows_receive_omissions: ClassVar[bool] = True

    @property
    def name(self) -> str:
        return f"RO({self.t})"

    def slots(self, faulty: Sequence[AgentId], horizon: int) -> SlotLists:
        """Receiver-charged edges only: every (round, other sender, faulty receiver)."""
        receive = [
            (round_index, sender, receiver)
            for receiver in faulty
            for round_index in range(horizon)
            for sender in range(self.n)
            if sender != receiver
        ]
        return [], receive


@dataclass(frozen=True)
class GeneralOmissionModel(EdgeOmissionModel):
    """The general-omissions model ``GO(t)``: faulty agents drop sends **and** receives.

    Every edge touching a faulty agent may be dropped.  An edge whose sender
    is faulty is opened as a sender-charged slot; an edge whose receiver (but
    not sender) is faulty is opened as a receiver-charged slot — each
    droppable edge appears exactly once, so the enumeration has no
    delivery-equivalent duplicates, and restricting the enumeration to the
    patterns with no receive omissions reproduces ``SO(t)`` exactly
    (see :meth:`send_restriction`).
    """

    allows_send_omissions: ClassVar[bool] = True
    allows_receive_omissions: ClassVar[bool] = True

    @property
    def name(self) -> str:
        return f"GO({self.t})"

    def slots(self, faulty: Sequence[AgentId], horizon: int) -> SlotLists:
        """Sender-charged slots for faulty senders; receiver-charged for the rest."""
        faulty_set = frozenset(faulty)
        send = [
            (round_index, sender, receiver)
            for sender in faulty
            for round_index in range(horizon)
            for receiver in range(self.n)
            if receiver != sender
        ]
        receive = [
            (round_index, sender, receiver)
            for receiver in faulty
            for round_index in range(horizon)
            for sender in range(self.n)
            if sender != receiver and sender not in faulty_set
        ]
        return send, receive

    def send_restriction(self) -> SendingOmissionModel:
        """The ``SO(t)`` model this model degenerates to without receive events."""
        return SendingOmissionModel(n=self.n, t=self.t)


@dataclass(frozen=True)
class CrashModel(FailureModel):
    """The crash-failure model: a faulty agent may crash mid-round and never recover.

    The paper treats crash failures as the special case of ``SO(t)`` where
    ``F(m, i, j) = 0`` implies ``F(m', i, j') = 0`` for all ``m' > m`` and all
    receivers ``j'``.  We model a crash as a pair (crash round, subset of
    receivers reached in the crash round): the agent sends normally before the
    crash round, reaches only the given subset during it, and sends nothing
    afterwards.
    """

    allows_send_omissions: ClassVar[bool] = True
    allows_receive_omissions: ClassVar[bool] = False

    @property
    def name(self) -> str:
        return f"Crash({self.t})"

    def validate(self, pattern: FailurePattern) -> FailurePattern:
        super().validate(pattern)
        # Only the rounds the pattern explicitly describes are checked: a crash
        # pattern generated up to some horizon is silent about later rounds.
        horizon = pattern.max_round() + 1
        for agent in pattern.faulty:
            crashed = False
            for round_index in range(horizon):
                blocked = pattern.blocked_receivers(round_index, agent)
                others = frozenset(range(self.n)) - {agent}
                if crashed and blocked & others != others:
                    raise FailureModelError(
                        f"agent {agent} resumes sending after a crash at round {round_index}"
                    )
                if blocked & others == others:
                    crashed = True
        return pattern

    def crash_pattern(self, crashes: dict[AgentId, tuple[int, Iterable[AgentId]]],
                      horizon: int) -> FailurePattern:
        """Build a crash pattern.

        Parameters
        ----------
        crashes:
            Maps a crashing agent to ``(crash_round, receivers_reached)`` — the
            agent's round-``crash_round`` message reaches only the listed
            receivers, and nothing is sent in later rounds.
        horizon:
            Rounds are generated up to (but excluding) this index.
        """
        if len(crashes) > self.t:
            raise FailureModelError(f"{len(crashes)} crashes exceed the bound t={self.t}")
        omissions = set()
        for agent, (crash_round, reached) in crashes.items():
            reached_set = frozenset(reached)
            for receiver in range(self.n):
                if receiver == agent:
                    continue
                if receiver not in reached_set:
                    omissions.add((crash_round, agent, receiver))
            for round_index in range(crash_round + 1, horizon):
                for receiver in range(self.n):
                    if receiver != agent:
                        omissions.add((round_index, agent, receiver))
        return FailurePattern(n=self.n, faulty=frozenset(crashes), omissions=frozenset(omissions))

    def sample(self, rng: random.Random, horizon: int,
               num_faulty: Optional[int] = None) -> FailurePattern:
        """Draw a random crash pattern: each faulty agent crashes at a random round."""
        if num_faulty is None:
            num_faulty = rng.randint(0, self.t)
        faulty = rng.sample(range(self.n), num_faulty)
        crashes = {}
        for agent in faulty:
            crash_round = rng.randint(0, max(horizon - 1, 0))
            receivers = [r for r in range(self.n) if r != agent and rng.random() < 0.5]
            crashes[agent] = (crash_round, receivers)
        return self.crash_pattern(crashes, horizon)

    def enumerate(self, horizon: int, max_faulty: Optional[int] = None) -> Iterator[FailurePattern]:
        """Enumerate crash patterns: each faulty agent picks a crash round and reached subset."""
        bound = self.t if max_faulty is None else min(self.t, max_faulty)
        for size in range(bound + 1):
            for faulty in itertools.combinations(range(self.n), size):
                per_agent_choices = []
                for agent in faulty:
                    others = [r for r in range(self.n) if r != agent]
                    choices = []
                    for crash_round in range(horizon):
                        for k in range(len(others) + 1):
                            for reached in itertools.combinations(others, k):
                                choices.append((crash_round, reached))
                    # also "never crashes visibly" (faulty but well-behaved)
                    choices.append((horizon, tuple(others)))
                    per_agent_choices.append(choices)
                for combo in itertools.product(*per_agent_choices):
                    crashes = {agent: choice for agent, choice in zip(faulty, combo)}
                    yield self.crash_pattern(crashes, horizon)


@dataclass(frozen=True)
class FailureFreeModel(FailureModel):
    """A degenerate model containing only the failure-free pattern."""

    allows_send_omissions: ClassVar[bool] = False
    allows_receive_omissions: ClassVar[bool] = False

    def __init__(self, n: int) -> None:  # noqa: D401 - thin constructor
        super().__init__(n=n, t=0)

    @property
    def name(self) -> str:
        return "FailureFree"

    def validate(self, pattern: FailurePattern) -> FailurePattern:
        super().validate(pattern)
        if pattern.faulty:
            raise FailureModelError("failure-free model admits only the empty pattern")
        return pattern

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        return self.failure_free()

    def enumerate(self, horizon: int, max_faulty: Optional[int] = None) -> Iterator[FailurePattern]:
        yield self.failure_free()


# ------------------------------------------------------------------ the model registry

#: Registered model name -> model class.  Populated by :func:`register_model`;
#: the first name a class registers under is its canonical key.
MODEL_REGISTRY: Dict[str, Type[FailureModel]] = {}

_CANONICAL_KEYS: List[str] = []


def register_model(*keys: str) -> Callable[[Type[FailureModel]], Type[FailureModel]]:
    """Class decorator: register a failure model under one or more names.

    The first key is canonical (used by :func:`available_models` and reports);
    the rest are aliases (e.g. ``"so"`` for ``"sending-omission"``).
    """
    if not keys:
        raise ConfigurationError("register_model needs at least one name")

    def decorate(cls: Type[FailureModel]) -> Type[FailureModel]:
        for key in keys:
            existing = MODEL_REGISTRY.get(key)
            if existing is not None and existing is not cls:
                raise ConfigurationError(
                    f"failure-model name {key!r} already registered to {existing.__name__}"
                )
            MODEL_REGISTRY[key] = cls
        if keys[0] not in _CANONICAL_KEYS:
            _CANONICAL_KEYS.append(keys[0])
        return cls

    return decorate


def available_models() -> Tuple[str, ...]:
    """The canonical names of every registered failure model, in registration order."""
    return tuple(_CANONICAL_KEYS)


def model_class(key: str) -> Type[FailureModel]:
    """Resolve a registered model name (or alias) to its class."""
    try:
        return MODEL_REGISTRY[key.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown failure model {key!r}; available: {', '.join(available_models())}"
        ) from None


def make_model(key: str, n: int, t: int = 0) -> FailureModel:
    """Instantiate a registered failure model by name.

    ``FailureFreeModel`` takes no failure bound; every other model is built as
    ``cls(n=n, t=t)``.
    """
    cls = model_class(key)
    if cls is FailureFreeModel:
        if t != 0:
            raise ConfigurationError("the failure-free model has no failure bound; use t=0")
        return cls(n)
    return cls(n=n, t=t)


def resolve_model(model: "FailureModel | str", n: int, t: int) -> FailureModel:
    """Coerce a model-or-name argument to a :class:`FailureModel` for ``(n, t)``.

    Strings go through :func:`make_model`; instances must match the requested
    ``(n, t)`` exactly — a looser instance bound would make contexts and
    workloads silently enumerate/sample more faulty agents than the declared
    ``t``, and downstream checks (EBA deadlines, the knowledge-based programs)
    are calibrated to that ``t``.
    """
    if isinstance(model, str):
        return make_model(model, n, t)
    if model.n != n:
        raise ConfigurationError(
            f"failure model {model.name} is for {model.n} agents, expected {n}"
        )
    if model.t != t:
        raise ConfigurationError(
            f"failure model {model.name} has failure bound {model.t}, "
            f"but the caller asks for t={t}; build the model for t={t} instead"
        )
    return model


register_model("sending-omission", "so")(SendingOmissionModel)
register_model("receive-omission", "ro")(ReceiveOmissionModel)
register_model("general-omission", "go")(GeneralOmissionModel)
register_model("crash")(CrashModel)
register_model("failure-free", "none")(FailureFreeModel)


def _binomial(n: int, k: int) -> int:
    """Binomial coefficient ``n choose k`` (small helper to avoid a math import cycle)."""
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result
