"""Failure models: families of admissible failure patterns.

A *failure model* (Section 3) is a set of failure patterns, typically
parameterised by an upper bound ``t`` on the number of faulty agents.  This
module provides the models used by the paper:

* :class:`SendingOmissionModel` — the model ``SO(t)``: at most ``t`` faulty
  agents, and only faulty agents may omit to send messages.
* :class:`CrashModel` — the crash-failure special case, where once an agent
  omits a message to some agent it omits all later messages to everyone.
* :class:`FailureFreeModel` — no failures at all (used by the Section 8
  cost analysis, which focuses on failure-free runs).

Each model can validate a pattern, generate random members, and (for small
systems) enumerate every pattern up to a bounded horizon — the latter is what
the epistemic model checker uses to build full interpreted systems.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from ..core.errors import ConfigurationError, FailureModelError
from ..core.types import AgentId
from .pattern import FailurePattern


@dataclass(frozen=True)
class FailureModel:
    """Base class for failure models.

    Attributes
    ----------
    n:
        Number of agents.
    t:
        Maximum number of faulty agents allowed by the model.
    """

    n: int
    t: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"number of agents must be positive, got {self.n}")
        if not 0 <= self.t < self.n:
            raise ConfigurationError(
                f"the bound t on faulty agents must satisfy 0 <= t < n, got t={self.t}, n={self.n}"
            )

    # -- interface ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """A short name for reports (e.g. ``SO(2)``)."""
        return f"{type(self).__name__}({self.t})"

    def admits(self, pattern: FailurePattern) -> bool:
        """Whether ``pattern`` belongs to this failure model."""
        try:
            self.validate(pattern)
        except FailureModelError:
            return False
        return True

    def validate(self, pattern: FailurePattern) -> FailurePattern:
        """Validate ``pattern`` against the model, raising :class:`FailureModelError` if illegal."""
        if pattern.n != self.n:
            raise FailureModelError(
                f"pattern is for {pattern.n} agents but the model expects {self.n}"
            )
        if pattern.num_faulty > self.t:
            raise FailureModelError(
                f"pattern has {pattern.num_faulty} faulty agents but the model allows at most {self.t}"
            )
        return pattern

    # -- generation -----------------------------------------------------------------

    def failure_free(self) -> FailurePattern:
        """The failure-free pattern (a member of every model)."""
        return FailurePattern.failure_free(self.n)

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        """Draw a random pattern admissible under this model (subclass responsibility)."""
        raise NotImplementedError

    def enumerate(self, horizon: int) -> Iterator[FailurePattern]:
        """Enumerate every admissible pattern up to ``horizon`` rounds (subclass responsibility).

        Warning: the number of patterns is exponential in ``n * horizon``; this
        is intended for the small systems used by the epistemic model checker.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class SendingOmissionModel(FailureModel):
    """The sending-omissions model ``SO(t)`` of Section 3."""

    @property
    def name(self) -> str:
        return f"SO({self.t})"

    def sample(self, rng: random.Random, horizon: int,
               omission_probability: float = 0.5,
               num_faulty: Optional[int] = None) -> FailurePattern:
        """Draw a random ``SO(t)`` pattern.

        Parameters
        ----------
        rng:
            Source of randomness (callers own the seed for reproducibility).
        horizon:
            Rounds ``0 .. horizon - 1`` may contain omissions.
        omission_probability:
            Per (round, faulty sender, receiver) probability of dropping the message.
        num_faulty:
            Exact number of faulty agents; defaults to a uniform draw in ``0..t``.
        """
        if num_faulty is None:
            num_faulty = rng.randint(0, self.t)
        if not 0 <= num_faulty <= self.t:
            raise ConfigurationError(f"num_faulty={num_faulty} outside 0..{self.t}")
        faulty = frozenset(rng.sample(range(self.n), num_faulty))
        omissions = set()
        for agent in faulty:
            for round_index in range(horizon):
                for receiver in range(self.n):
                    if receiver == agent:
                        continue
                    if rng.random() < omission_probability:
                        omissions.add((round_index, agent, receiver))
        return FailurePattern(n=self.n, faulty=faulty, omissions=frozenset(omissions))

    def enumerate(self, horizon: int, max_faulty: Optional[int] = None) -> Iterator[FailurePattern]:
        """Enumerate all ``SO(t)`` patterns with omissions confined to ``0 .. horizon - 1``.

        The enumeration ranges over every faulty set of size at most
        ``min(t, max_faulty)`` and, for each faulty agent, every subset of
        (round, receiver) pairs to block.  Self-omissions are not enumerated
        (they are unobservable and only blow up the state space).
        """
        bound = self.t if max_faulty is None else min(self.t, max_faulty)
        for size in range(bound + 1):
            for faulty in itertools.combinations(range(self.n), size):
                faulty_set = frozenset(faulty)
                slots: List[tuple[int, AgentId, AgentId]] = [
                    (round_index, sender, receiver)
                    for sender in faulty
                    for round_index in range(horizon)
                    for receiver in range(self.n)
                    if receiver != sender
                ]
                for blocked_mask in itertools.product((False, True), repeat=len(slots)):
                    omissions = frozenset(
                        slot for slot, blocked in zip(slots, blocked_mask) if blocked
                    )
                    yield FailurePattern(n=self.n, faulty=faulty_set, omissions=omissions)

    def count_patterns(self, horizon: int, max_faulty: Optional[int] = None) -> int:
        """The number of patterns :meth:`enumerate` would yield (without generating them)."""
        bound = self.t if max_faulty is None else min(self.t, max_faulty)
        total = 0
        for size in range(bound + 1):
            slots_per_set = size * horizon * (self.n - 1)
            num_sets = _binomial(self.n, size)
            total += num_sets * (2 ** slots_per_set)
        return total


@dataclass(frozen=True)
class CrashModel(FailureModel):
    """The crash-failure model: a faulty agent may crash mid-round and never recover.

    The paper treats crash failures as the special case of ``SO(t)`` where
    ``F(m, i, j) = 0`` implies ``F(m', i, j') = 0`` for all ``m' > m`` and all
    receivers ``j'``.  We model a crash as a pair (crash round, subset of
    receivers reached in the crash round): the agent sends normally before the
    crash round, reaches only the given subset during it, and sends nothing
    afterwards.
    """

    @property
    def name(self) -> str:
        return f"Crash({self.t})"

    def validate(self, pattern: FailurePattern) -> FailurePattern:
        super().validate(pattern)
        # Only the rounds the pattern explicitly describes are checked: a crash
        # pattern generated up to some horizon is silent about later rounds.
        horizon = pattern.max_round() + 1
        for agent in pattern.faulty:
            crashed = False
            for round_index in range(horizon):
                blocked = pattern.blocked_receivers(round_index, agent)
                others = frozenset(range(self.n)) - {agent}
                if crashed and blocked & others != others:
                    raise FailureModelError(
                        f"agent {agent} resumes sending after a crash at round {round_index}"
                    )
                if blocked & others == others:
                    crashed = True
        return pattern

    def crash_pattern(self, crashes: dict[AgentId, tuple[int, Iterable[AgentId]]],
                      horizon: int) -> FailurePattern:
        """Build a crash pattern.

        Parameters
        ----------
        crashes:
            Maps a crashing agent to ``(crash_round, receivers_reached)`` — the
            agent's round-``crash_round`` message reaches only the listed
            receivers, and nothing is sent in later rounds.
        horizon:
            Rounds are generated up to (but excluding) this index.
        """
        if len(crashes) > self.t:
            raise FailureModelError(f"{len(crashes)} crashes exceed the bound t={self.t}")
        omissions = set()
        for agent, (crash_round, reached) in crashes.items():
            reached_set = frozenset(reached)
            for receiver in range(self.n):
                if receiver == agent:
                    continue
                if receiver not in reached_set:
                    omissions.add((crash_round, agent, receiver))
            for round_index in range(crash_round + 1, horizon):
                for receiver in range(self.n):
                    if receiver != agent:
                        omissions.add((round_index, agent, receiver))
        return FailurePattern(n=self.n, faulty=frozenset(crashes), omissions=frozenset(omissions))

    def sample(self, rng: random.Random, horizon: int,
               num_faulty: Optional[int] = None) -> FailurePattern:
        """Draw a random crash pattern: each faulty agent crashes at a random round."""
        if num_faulty is None:
            num_faulty = rng.randint(0, self.t)
        faulty = rng.sample(range(self.n), num_faulty)
        crashes = {}
        for agent in faulty:
            crash_round = rng.randint(0, max(horizon - 1, 0))
            receivers = [r for r in range(self.n) if r != agent and rng.random() < 0.5]
            crashes[agent] = (crash_round, receivers)
        return self.crash_pattern(crashes, horizon)

    def enumerate(self, horizon: int, max_faulty: Optional[int] = None) -> Iterator[FailurePattern]:
        """Enumerate crash patterns: each faulty agent picks a crash round and reached subset."""
        bound = self.t if max_faulty is None else min(self.t, max_faulty)
        for size in range(bound + 1):
            for faulty in itertools.combinations(range(self.n), size):
                per_agent_choices = []
                for agent in faulty:
                    others = [r for r in range(self.n) if r != agent]
                    choices = []
                    for crash_round in range(horizon):
                        for k in range(len(others) + 1):
                            for reached in itertools.combinations(others, k):
                                choices.append((crash_round, reached))
                    # also "never crashes visibly" (faulty but well-behaved)
                    choices.append((horizon, tuple(others)))
                    per_agent_choices.append(choices)
                for combo in itertools.product(*per_agent_choices):
                    crashes = {agent: choice for agent, choice in zip(faulty, combo)}
                    yield self.crash_pattern(crashes, horizon)


@dataclass(frozen=True)
class FailureFreeModel(FailureModel):
    """A degenerate model containing only the failure-free pattern."""

    def __init__(self, n: int) -> None:  # noqa: D401 - thin constructor
        super().__init__(n=n, t=0)

    @property
    def name(self) -> str:
        return "FailureFree"

    def validate(self, pattern: FailurePattern) -> FailurePattern:
        super().validate(pattern)
        if pattern.omissions or pattern.faulty:
            raise FailureModelError("failure-free model admits only the empty pattern")
        return pattern

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        return self.failure_free()

    def enumerate(self, horizon: int) -> Iterator[FailurePattern]:
        yield self.failure_free()


def _binomial(n: int, k: int) -> int:
    """Binomial coefficient ``n choose k`` (small helper to avoid a math import cycle)."""
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result
