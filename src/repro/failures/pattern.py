"""Failure patterns (adversaries) for synchronous message-passing systems.

Section 3 of the paper defines a *failure pattern* as a pair ``(N, F)`` where
``N`` is the set of nonfaulty agents and ``F(m, i, j)`` states whether the
message sent by agent ``i`` to agent ``j`` in round ``m + 1`` is delivered.

A failure pattern here is represented *extensionally* by the sets of blocked
(round, sender, receiver) triples, together with the set of faulty agents.
This keeps patterns hashable, comparable, and easy to enumerate/mutate when
constructing the adversarial runs used by the optimality arguments.

Every blocked triple is *charged* to a faulty agent, and the charge is part of
the representation:

* :attr:`FailurePattern.omissions` — **sending omissions**: the sender failed
  to send, so the sender must be faulty.  This is the paper's ``SO(t)`` model
  (Section 3) and was historically the only kind of event.
* :attr:`FailurePattern.receive_omissions` — **receive omissions**: the
  receiver failed to listen, so the receiver must be faulty.  These events
  open the receive-omission and general-omission failure models
  (:mod:`repro.failures.models`); a pattern with an empty
  ``receive_omissions`` set behaves exactly as before.

The engine only consumes the union (:meth:`FailurePattern.delivered`); the
split matters to the failure models, which restrict who may be charged.

Round/time convention
---------------------
We follow the paper: the global state at time ``m`` evolves to time ``m + 1``
through *round* ``m + 1``.  A blocked triple ``(m, i, j)`` means the message
sent by ``i`` to ``j`` in round ``m + 1`` (i.e. during the transition from time
``m`` to time ``m + 1``) is replaced by ``⊥``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from ..core.agents import complement, validate_agent_set
from ..core.errors import ConfigurationError, FailureModelError
from ..core.types import AgentId

#: A blocked-message triple ``(round_index, sender, receiver)``; ``round_index``
#: is the *time* at which the round starts (round ``round_index + 1`` in the
#: paper's 1-based round numbering).
Omission = Tuple[int, AgentId, AgentId]


@dataclass(frozen=True)
class FailurePattern:
    """A concrete adversary: which agents are faulty and which messages are lost.

    Attributes
    ----------
    n:
        The number of agents in the system.
    faulty:
        The set of faulty agents (``Agt - N`` in the paper).
    omissions:
        The set of blocked ``(round_index, sender, receiver)`` triples charged
        to the *sender* (sending omissions).  Only faulty senders may appear
        here; this is validated on construction.
    receive_omissions:
        The set of blocked ``(round_index, sender, receiver)`` triples charged
        to the *receiver* (receive omissions).  Only faulty receivers may
        appear here; this is validated on construction.
    """

    n: int
    faulty: FrozenSet[AgentId] = frozenset()
    omissions: FrozenSet[Omission] = frozenset()
    receive_omissions: FrozenSet[Omission] = frozenset()

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"number of agents must be positive, got {self.n}")
        object.__setattr__(self, "faulty", validate_agent_set(self.faulty, self.n))
        omissions = frozenset(self.omissions)
        for (round_index, sender, receiver) in omissions:
            self._check_triple(round_index, sender, receiver)
            if sender not in self.faulty:
                raise FailureModelError(
                    f"sending omission {(round_index, sender, receiver)}: sender {sender} "
                    "is not faulty; sending omissions are charged to faulty senders"
                )
        object.__setattr__(self, "omissions", omissions)
        receive_omissions = frozenset(self.receive_omissions)
        for (round_index, sender, receiver) in receive_omissions:
            self._check_triple(round_index, sender, receiver)
            if receiver not in self.faulty:
                raise FailureModelError(
                    f"receive omission {(round_index, sender, receiver)}: receiver {receiver} "
                    "is not faulty; receive omissions are charged to faulty receivers"
                )
        object.__setattr__(self, "receive_omissions", receive_omissions)

    def _check_triple(self, round_index: int, sender: AgentId, receiver: AgentId) -> None:
        if round_index < 0:
            raise FailureModelError(f"negative round index in omission {(round_index, sender, receiver)}")
        if not (0 <= sender < self.n and 0 <= receiver < self.n):
            raise FailureModelError(
                f"omission {(round_index, sender, receiver)} refers to agents outside 0..{self.n - 1}"
            )

    # ------------------------------------------------------------------ basic queries

    def __reduce__(self):
        # Serialize through sorted tuples: frozenset iteration order is not
        # stable across pickle round trips, and equal patterns must pickle to
        # identical bytes (the executor-equivalence guarantee of repro.api).
        return (self.__class__,
                (self.n, tuple(sorted(self.faulty)), tuple(sorted(self.omissions)),
                 tuple(sorted(self.receive_omissions))))

    def sort_key(self) -> tuple:
        """A canonical ordering key (the same tuple the pattern pickles through)."""
        return (tuple(sorted(self.faulty)), tuple(sorted(self.omissions)),
                tuple(sorted(self.receive_omissions)))

    @property
    def nonfaulty(self) -> FrozenSet[AgentId]:
        """The set ``N`` of nonfaulty agents."""
        return complement(self.faulty, self.n)

    @property
    def num_faulty(self) -> int:
        """The number of faulty agents ``|Agt - N|``."""
        return len(self.faulty)

    @property
    def all_blocked(self) -> FrozenSet[Omission]:
        """Every blocked triple, regardless of which endpoint it is charged to."""
        return self.omissions | self.receive_omissions

    def is_faulty(self, agent: AgentId) -> bool:
        """Whether ``agent`` is faulty under this pattern."""
        return agent in self.faulty

    def delivered(self, round_index: int, sender: AgentId, receiver: AgentId) -> bool:
        """Whether the message from ``sender`` to ``receiver`` in round ``round_index + 1`` arrives.

        This is the function ``F`` of the paper with ``F(m, i, j) = 1`` meaning
        delivery.  A message is lost if either endpoint drops it (sending or
        receive omission); messages between two agents that omit nothing are
        always delivered.
        """
        triple = (round_index, sender, receiver)
        return triple not in self.omissions and triple not in self.receive_omissions

    def blocked_receivers(self, round_index: int, sender: AgentId) -> FrozenSet[AgentId]:
        """The set of receivers that do *not* get ``sender``'s round message.

        Counts both sending omissions by ``sender`` and receive omissions by
        the receivers themselves.
        """
        return frozenset(
            receiver
            for (m, s, receiver) in self.all_blocked
            if m == round_index and s == sender
        )

    def blocked_senders(self, round_index: int, receiver: AgentId) -> FrozenSet[AgentId]:
        """The set of senders whose round message does *not* reach ``receiver``."""
        return frozenset(
            sender
            for (m, sender, r) in self.all_blocked
            if m == round_index and r == receiver
        )

    def exhibits_faulty_behaviour(self, agent: AgentId, horizon: Optional[int] = None) -> bool:
        """Whether ``agent`` actually omits a message exchanged with *another* agent.

        The optimality proofs of Section 7 rely on faulty agents that "act
        nonfaulty" — they are charged to the failure pattern's faulty set but
        never visibly omit a message (omissions to themselves are allowed and
        invisible).  An agent misbehaves if it drops an outgoing message
        (sending omission) or an incoming one (receive omission).  ``horizon``,
        if given, restricts attention to rounds ``0 .. horizon - 1``.
        """
        for (round_index, sender, receiver) in self.omissions:
            if sender != agent or receiver == agent:
                continue
            if horizon is not None and round_index >= horizon:
                continue
            return True
        for (round_index, sender, receiver) in self.receive_omissions:
            if receiver != agent or sender == agent:
                continue
            if horizon is not None and round_index >= horizon:
                continue
            return True
        return False

    def silent_senders(self, round_index: int) -> FrozenSet[AgentId]:
        """Agents whose messages to *all other* agents are blocked in the given round."""
        silent = []
        for agent in range(self.n):
            others = set(range(self.n)) - {agent}
            if others and others <= set(self.blocked_receivers(round_index, agent)):
                silent.append(agent)
        return frozenset(silent)

    def deaf_receivers(self, round_index: int) -> FrozenSet[AgentId]:
        """Agents that receive no message from *any other* agent in the given round."""
        deaf = []
        for agent in range(self.n):
            others = set(range(self.n)) - {agent}
            if others and others <= set(self.blocked_senders(round_index, agent)):
                deaf.append(agent)
        return frozenset(deaf)

    def max_round(self) -> int:
        """The largest round index mentioned by a blocked triple (``-1`` if none)."""
        return max((m for (m, _, _) in self.all_blocked), default=-1)

    # ------------------------------------------------------------------ constructors

    @classmethod
    def failure_free(cls, n: int) -> "FailurePattern":
        """The unique failure-free pattern for ``n`` agents."""
        return cls(n=n)

    @classmethod
    def silent(cls, n: int, faulty: Iterable[AgentId], horizon: int,
               from_round: int = 0, include_self: bool = False) -> "FailurePattern":
        """A pattern where every agent in ``faulty`` sends no messages at all.

        Parameters
        ----------
        n:
            Number of agents.
        faulty:
            The agents that stay silent (and are marked faulty).
        horizon:
            Omissions are generated for rounds ``from_round .. horizon - 1``.
        from_round:
            First round index (time) at which the agents fall silent.
        include_self:
            Whether to also block the agent's message to itself.
        """
        faulty_set = frozenset(faulty)
        omissions = set()
        for agent in faulty_set:
            for round_index in range(from_round, horizon):
                for receiver in range(n):
                    if receiver == agent and not include_self:
                        continue
                    omissions.add((round_index, agent, receiver))
        return cls(n=n, faulty=faulty_set, omissions=frozenset(omissions))

    @classmethod
    def deaf(cls, n: int, faulty: Iterable[AgentId], horizon: int,
             from_round: int = 0, include_self: bool = False) -> "FailurePattern":
        """The receive-side mirror of :meth:`silent`: the agents hear nothing at all.

        Every agent in ``faulty`` drops every incoming message in rounds
        ``from_round .. horizon - 1`` (receive omissions); its own outgoing
        messages are delivered normally.
        """
        faulty_set = frozenset(faulty)
        dropped = set()
        for agent in faulty_set:
            for round_index in range(from_round, horizon):
                for sender in range(n):
                    if sender == agent and not include_self:
                        continue
                    dropped.add((round_index, sender, agent))
        return cls(n=n, faulty=faulty_set, receive_omissions=frozenset(dropped))

    @classmethod
    def from_blocked(cls, n: int, blocked: Iterable[Omission],
                     extra_faulty: Iterable[AgentId] = ()) -> "FailurePattern":
        """Build a pattern from explicit blocked triples charged to the senders.

        The faulty set is inferred as the set of senders appearing in
        ``blocked`` plus any ``extra_faulty`` agents (which are faulty but do
        not visibly misbehave).
        """
        blocked_set = frozenset(blocked)
        faulty = frozenset(s for (_, s, _) in blocked_set) | frozenset(extra_faulty)
        return cls(n=n, faulty=faulty, omissions=blocked_set)

    @classmethod
    def from_receive_blocked(cls, n: int, blocked: Iterable[Omission],
                             extra_faulty: Iterable[AgentId] = ()) -> "FailurePattern":
        """Build a pattern from explicit blocked triples charged to the receivers.

        The faulty set is inferred as the set of receivers appearing in
        ``blocked`` plus any ``extra_faulty`` agents.
        """
        blocked_set = frozenset(blocked)
        faulty = frozenset(r for (_, _, r) in blocked_set) | frozenset(extra_faulty)
        return cls(n=n, faulty=faulty, receive_omissions=blocked_set)

    # ------------------------------------------------------------------ transformations

    def with_omission(self, round_index: int, sender: AgentId, receiver: AgentId) -> "FailurePattern":
        """Return a copy with one extra blocked message charged to the sender."""
        return FailurePattern(
            n=self.n,
            faulty=self.faulty | {sender},
            omissions=self.omissions | {(round_index, sender, receiver)},
            receive_omissions=self.receive_omissions,
        )

    def without_omission(self, round_index: int, sender: AgentId, receiver: AgentId) -> "FailurePattern":
        """Return a copy with one sender-charged blocked message removed (the sender stays faulty)."""
        return FailurePattern(
            n=self.n,
            faulty=self.faulty,
            omissions=self.omissions - {(round_index, sender, receiver)},
            receive_omissions=self.receive_omissions,
        )

    def with_receive_omission(self, round_index: int, sender: AgentId,
                              receiver: AgentId) -> "FailurePattern":
        """Return a copy with one extra blocked message charged to the receiver."""
        return FailurePattern(
            n=self.n,
            faulty=self.faulty | {receiver},
            omissions=self.omissions,
            receive_omissions=self.receive_omissions | {(round_index, sender, receiver)},
        )

    def without_receive_omission(self, round_index: int, sender: AgentId,
                                 receiver: AgentId) -> "FailurePattern":
        """Return a copy with one receiver-charged blocked message removed (the receiver stays faulty)."""
        return FailurePattern(
            n=self.n,
            faulty=self.faulty,
            omissions=self.omissions,
            receive_omissions=self.receive_omissions - {(round_index, sender, receiver)},
        )

    def with_faulty(self, *agents: AgentId) -> "FailurePattern":
        """Return a copy where ``agents`` are additionally marked faulty."""
        return FailurePattern(n=self.n, faulty=self.faulty | set(agents),
                              omissions=self.omissions,
                              receive_omissions=self.receive_omissions)

    def relabel(self, permutation: Sequence[AgentId]) -> "FailurePattern":
        """Apply an agent permutation to the whole pattern.

        ``permutation[i]`` is the new identity of agent ``i``.  Unlike
        :meth:`swap_roles` — which interchanges only the *charged* role of two
        agents and is the surgical operation of the optimality proofs — this
        relabels every occurrence of every agent: the faulty set and both
        endpoints of every blocked triple.  It is the group action behind the
        failure models' agent-permutation symmetry
        (:meth:`repro.failures.models.FailureModel.enumerate_orbits`): every
        model in the library is closed under it.
        """
        if sorted(permutation) != list(range(self.n)):
            raise ConfigurationError(
                f"{tuple(permutation)!r} is not a permutation of 0..{self.n - 1}")
        return FailurePattern(
            n=self.n,
            faulty=frozenset(permutation[agent] for agent in self.faulty),
            omissions=frozenset(
                (m, permutation[sender], permutation[receiver])
                for (m, sender, receiver) in self.omissions
            ),
            receive_omissions=frozenset(
                (m, permutation[sender], permutation[receiver])
                for (m, sender, receiver) in self.receive_omissions
            ),
        )

    def swap_roles(self, a: AgentId, b: AgentId) -> "FailurePattern":
        """Interchange the failure roles of two agents.

        This is the "interchange the failures of ``i`` and ``i'``" operation
        used repeatedly in the optimality proofs (Proposition 6.4, Section 7):
        every omission *charged to* ``a`` becomes an omission charged to ``b``
        and vice versa (the sender role for sending omissions, the receiver
        role for receive omissions), and membership of ``a`` / ``b`` in the
        faulty set is swapped.
        """

        def swap(agent: AgentId) -> AgentId:
            if agent == a:
                return b
            if agent == b:
                return a
            return agent

        new_faulty = frozenset(swap(agent) for agent in self.faulty)
        new_omissions = frozenset(
            (m, swap(sender), receiver) for (m, sender, receiver) in self.omissions
        )
        new_receive = frozenset(
            (m, sender, swap(receiver)) for (m, sender, receiver) in self.receive_omissions
        )
        return FailurePattern(n=self.n, faulty=new_faulty, omissions=new_omissions,
                              receive_omissions=new_receive)

    def restrict_to(self, horizon: int) -> "FailurePattern":
        """Drop blocked triples at or beyond ``horizon`` (useful for display and hashing)."""
        return FailurePattern(
            n=self.n,
            faulty=self.faulty,
            omissions=frozenset(o for o in self.omissions if o[0] < horizon),
            receive_omissions=frozenset(o for o in self.receive_omissions if o[0] < horizon),
        )

    def send_restriction(self) -> "FailurePattern":
        """The pattern with every receive omission dropped (faulty set unchanged).

        Restricting a general-omission pattern to its sending events yields a
        pattern of the sending-omissions model with the same charged agents —
        the hook for the differential check that ``GO(t)`` degenerates to
        ``SO(t)`` when no receive events are used.
        """
        return FailurePattern(n=self.n, faulty=self.faulty, omissions=self.omissions)

    # ------------------------------------------------------------------ misc

    def describe(self) -> str:
        """A short human-readable description of the pattern."""
        if not self.faulty:
            return f"failure-free ({self.n} agents)"
        parts = [f"faulty={sorted(self.faulty)}"]
        if self.omissions:
            parts.append(f"{len(self.omissions)} blocked sends")
        if self.receive_omissions:
            parts.append(f"{len(self.receive_omissions)} blocked receives")
        if not self.omissions and not self.receive_omissions:
            parts.append("no visible omissions")
        return ", ".join(parts)

    def __iter__(self) -> Iterator[Omission]:
        return iter(sorted(self.all_blocked))
