"""Failure patterns, failure models, and adversary constructions."""

from .pattern import FailurePattern, Omission
from .models import CrashModel, FailureFreeModel, FailureModel, SendingOmissionModel
from .adversaries import (
    crash_staircase_adversary,
    hidden_chain_adversary,
    intro_counterexample_adversary,
    iter_faulty_sets,
    random_omission_adversaries,
    silent_adversary,
)

__all__ = [
    "CrashModel",
    "FailureFreeModel",
    "FailureModel",
    "FailurePattern",
    "Omission",
    "SendingOmissionModel",
    "crash_staircase_adversary",
    "hidden_chain_adversary",
    "intro_counterexample_adversary",
    "iter_faulty_sets",
    "random_omission_adversaries",
    "silent_adversary",
]
