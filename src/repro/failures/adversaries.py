"""Named adversary constructions used by the paper's arguments and experiments.

These helpers construct specific failure patterns (or families of patterns)
that appear in the paper:

* ``silent_adversary`` — the Example 7.1 adversary: a set of faulty agents that
  never send a single message.
* ``intro_counterexample_adversary`` — the run ``r'`` from the introduction
  that breaks naive 0-biased protocols: a single faulty agent stays silent for
  ``k - 1`` rounds and then reveals its preference to exactly one agent.
* ``hidden_chain_adversary`` — a "hidden path" adversary: a chain of faulty
  agents each of which only talks to the next agent in the chain, producing
  late 0-decisions and forcing undecided agents to wait.
* ``random_omission_adversaries`` — an iterator of random ``SO(t)`` patterns.
* ``crash_staircase_adversary`` — the classical worst-case crash schedule where
  one agent crashes per round.

and the receive-side constructions that the general/receive-omission models
(``GO(t)`` / ``RO(t)``) open up:

* ``silent_receiver_adversary`` — faulty agents that hear nothing (the
  receive-side mirror of ``silent_adversary``);
* ``partition_adversary`` — a general-omission cut: a faulty group is severed
  from the rest in both directions (their sends are dropped as sending
  omissions, their receives as receive omissions);
* ``mixed_omission_chain_adversary`` — a chain of faulty agents each of which
  only *talks to* its successor and only *listens to* its predecessor;
* ``random_model_adversaries`` — random patterns from any registered model.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.types import AgentId
from .models import CrashModel, FailureModel, SendingOmissionModel, resolve_model
from .pattern import FailurePattern


def silent_adversary(n: int, faulty: Iterable[AgentId], horizon: int) -> FailurePattern:
    """Faulty agents that never send any message (Example 7.1 when ``|faulty| = t``)."""
    return FailurePattern.silent(n=n, faulty=faulty, horizon=horizon)


def intro_counterexample_adversary(n: int, reveal_round: int,
                                   faulty_agent: AgentId = 0,
                                   confidant: AgentId = 2) -> FailurePattern:
    """The adversary of the introduction's impossibility argument.

    Agent ``faulty_agent`` is faulty, sends nothing up to round ``reveal_round``
    (time index ``reveal_round - 1``), and in round ``reveal_round`` sends a
    message only to ``confidant``.  With a naive 0-biased protocol this makes
    ``confidant`` decide 0 while agents that never hear about the 0 decide 1.

    Parameters
    ----------
    n:
        Number of agents (must be at least 3 for the argument to apply).
    reveal_round:
        The 1-based round in which the single message to ``confidant`` gets
        through.  All of the faulty agent's other messages, in all rounds up to
        and including ``reveal_round`` and for a generous horizon afterwards,
        are blocked.
    faulty_agent, confidant:
        The identities of the faulty agent and the single agent it talks to.
    """
    if n < 3:
        raise ConfigurationError("the introduction's counterexample needs at least 3 agents")
    if faulty_agent == confidant:
        raise ConfigurationError("the faulty agent must confide in a different agent")
    if reveal_round < 1:
        raise ConfigurationError("reveal_round is 1-based and must be >= 1")
    horizon = reveal_round + n + 2
    omissions = set()
    for round_index in range(horizon):
        for receiver in range(n):
            if receiver == faulty_agent:
                continue
            if round_index == reveal_round - 1 and receiver == confidant:
                continue  # the one message that gets through
            omissions.add((round_index, faulty_agent, receiver))
    return FailurePattern(n=n, faulty=frozenset({faulty_agent}),
                          omissions=frozenset(omissions))


def hidden_chain_adversary(n: int, chain: Sequence[AgentId], horizon: Optional[int] = None) -> FailurePattern:
    """A hidden 0-chain: each chain agent talks only to the next chain agent.

    ``chain[0]`` should be given initial preference 0 by the workload.  In round
    ``k + 1`` agent ``chain[k]`` (which decides 0 in that round under the
    paper's protocols) delivers its decide-0 notification only to
    ``chain[k + 1]``; every other message from the chain agents is blocked.
    All chain agents except possibly the last are faulty.

    This produces the "hidden path" structure that forces other agents to wait
    the full ``t + 1`` rounds before they can safely decide 1.
    """
    if len(set(chain)) != len(chain):
        raise ConfigurationError("chain agents must be distinct")
    for agent in chain:
        if not 0 <= agent < n:
            raise ConfigurationError(f"chain agent {agent} outside 0..{n - 1}")
    faulty = frozenset(chain[:-1]) if len(chain) > 1 else frozenset()
    if horizon is None:
        horizon = len(chain) + 2
    omissions = set()
    for position, agent in enumerate(chain[:-1]):
        successor = chain[position + 1]
        for round_index in range(horizon):
            for receiver in range(n):
                if receiver == agent:
                    continue
                if round_index == position and receiver == successor:
                    continue  # the chain link that survives
                omissions.add((round_index, agent, receiver))
    return FailurePattern(n=n, faulty=faulty, omissions=frozenset(omissions))


def crash_staircase_adversary(n: int, t: int, horizon: Optional[int] = None) -> FailurePattern:
    """The classical worst case for crash consensus: one crash per round.

    Agent ``k`` (for ``k < t``) crashes in round ``k + 1`` after reaching only
    agent ``k + 1``.  This is the schedule that forces ``t + 1`` rounds for
    simultaneous agreement; for EBA it produces long decision chains.
    """
    if t >= n:
        raise ConfigurationError("need t < n")
    model = CrashModel(n=n, t=t)
    if horizon is None:
        horizon = t + 2
    crashes = {}
    for k in range(t):
        reached = [(k + 1) % n]
        crashes[k] = (k, reached)
    return model.crash_pattern(crashes, horizon)


def silent_receiver_adversary(n: int, faulty: Iterable[AgentId], horizon: int,
                              from_round: int = 0) -> FailurePattern:
    """Faulty agents that never receive any message (``RO(t)``'s worst case).

    The receive-side mirror of :func:`silent_adversary`: the agents in
    ``faulty`` drop every incoming message from rounds ``from_round`` to
    ``horizon - 1`` while their own messages go through.  Everything the rest
    of the system learns still reaches everyone nonfaulty, but the deaf agents
    act on their initial preference alone.
    """
    return FailurePattern.deaf(n=n, faulty=faulty, horizon=horizon, from_round=from_round)


def partition_adversary(n: int, isolated: Iterable[AgentId], horizon: int,
                        from_round: int = 0) -> FailurePattern:
    """A general-omission cut: the ``isolated`` (faulty) group is severed from the rest.

    For rounds ``from_round .. horizon - 1`` no message crosses the cut in
    either direction: messages *from* an isolated agent to the rest are
    dropped as sending omissions, messages *to* an isolated agent from the
    rest as receive omissions — every blocked edge is charged to its isolated
    endpoint, so the pattern belongs to ``GO(|isolated|)``.  Communication
    within each side is untouched, which makes this the canonical
    "network partition" scenario general omissions can express and ``SO(t)``
    cannot (under ``SO(t)`` the isolated group would still hear everything).
    """
    isolated_set = frozenset(isolated)
    for agent in isolated_set:
        if not 0 <= agent < n:
            raise ConfigurationError(f"isolated agent {agent} outside 0..{n - 1}")
    if not isolated_set:
        return FailurePattern.failure_free(n)
    rest = [agent for agent in range(n) if agent not in isolated_set]
    send = set()
    receive = set()
    for round_index in range(from_round, horizon):
        for inside in isolated_set:
            for outside in rest:
                send.add((round_index, inside, outside))
                receive.add((round_index, outside, inside))
    return FailurePattern(n=n, faulty=isolated_set, omissions=frozenset(send),
                          receive_omissions=frozenset(receive))


def mixed_omission_chain_adversary(n: int, chain: Sequence[AgentId],
                                   horizon: Optional[int] = None) -> FailurePattern:
    """A chain of faulty agents, each talking only forward and listening only backward.

    Agent ``chain[k]`` delivers its messages only to ``chain[k + 1]`` (all
    other sends are dropped as sending omissions) and accepts messages only
    from ``chain[k - 1]`` (all other receives are dropped as receive
    omissions).  Every chain agent is faulty, so the pattern belongs to
    ``GO(len(chain))``.  Information can still flow along the chain — the
    general-omission cousin of :func:`hidden_chain_adversary`, with the
    receive side closed as well, so not even the chain's members learn what
    the rest of the system knows.
    """
    if len(set(chain)) != len(chain):
        raise ConfigurationError("chain agents must be distinct")
    for agent in chain:
        if not 0 <= agent < n:
            raise ConfigurationError(f"chain agent {agent} outside 0..{n - 1}")
    if horizon is None:
        horizon = len(chain) + 2
    chain_set = frozenset(chain)
    send = set()
    receive = set()
    for position, agent in enumerate(chain):
        successor = chain[position + 1] if position + 1 < len(chain) else None
        predecessor = chain[position - 1] if position > 0 else None
        for round_index in range(horizon):
            for other in range(n):
                if other == agent:
                    continue
                if other != successor:
                    send.add((round_index, agent, other))
                # Receive omissions by `agent` from senders outside the chain
                # link; edges whose sender is a chain agent are already dropped
                # by that sender, so charge them once (to the sender).
                if other != predecessor and other not in chain_set:
                    receive.add((round_index, other, agent))
    return FailurePattern(n=n, faulty=chain_set, omissions=frozenset(send),
                          receive_omissions=frozenset(receive))


def random_model_adversaries(model: "FailureModel | str", n: int, t: int,
                             horizon: int, count: int, seed: int = 0,
                             **sample_kwargs) -> List[FailurePattern]:
    """A reproducible list of random adversaries drawn from any registered model.

    ``model`` is a :class:`~repro.failures.models.FailureModel` instance or a
    registered name (``"general-omission"``, ``"ro"``, ``"crash"``, ...);
    ``sample_kwargs`` are forwarded to the model's ``sample`` (for the
    edge-omission models e.g. ``omission_probability=0.3``).
    """
    resolved = resolve_model(model, n, t)
    rng = random.Random(seed)
    return [resolved.sample(rng, horizon, **sample_kwargs) for _ in range(count)]


def random_omission_adversaries(n: int, t: int, horizon: int, count: int,
                                seed: int = 0,
                                omission_probability: float = 0.5,
                                num_faulty: Optional[int] = None) -> List[FailurePattern]:
    """A reproducible list of random ``SO(t)`` adversaries."""
    model = SendingOmissionModel(n=n, t=t)
    rng = random.Random(seed)
    return [
        model.sample(rng, horizon, omission_probability=omission_probability,
                     num_faulty=num_faulty)
        for _ in range(count)
    ]


def iter_faulty_sets(n: int, t: int) -> Iterator[frozenset[AgentId]]:
    """Iterate over all faulty sets of size at most ``t`` (including the empty set)."""
    import itertools

    for size in range(t + 1):
        for combo in itertools.combinations(range(n), size):
            yield frozenset(combo)
