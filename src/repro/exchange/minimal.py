"""The minimal information-exchange protocol ``E_min`` of Section 6.

Agents keep only the mandatory EBA-context state ``⟨time, init, decided, jd⟩``
and stay silent except in the round in which they decide, when they send the
decided value (a single bit) to every agent.

* Message alphabet: ``M_i = {0, 1}`` with ``M0 = {0}``, ``M1 = {1}``, ``M2 = {⊥}``.
* ``μ_ij(s, a) = v`` if ``a = decide_i(v)`` and ``⊥`` otherwise.
* ``δ_i`` maintains ``time``, ``decided``, and ``jd`` as in every EBA context.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.types import Action, AgentId, Value, validate_value
from .base import InformationExchange, LocalState
from .messages import Message


class MinimalExchange(InformationExchange):
    """The exchange ``E_min(n)``: decide notifications only."""

    name = "E_min"

    def initial_state(self, agent: AgentId, init: Value) -> LocalState:
        validate_value(init)
        return LocalState(agent=agent, n=self.n, time=0, init=init, decided=None, jd=None)

    def messages_for(self, state: LocalState, action: Action) -> Tuple[Message, ...]:
        message = self.decide_message(action)
        return tuple(message for _ in range(self.n))

    def update(self, state: LocalState, action: Action,
               received: Sequence[Message]) -> LocalState:
        return LocalState(
            agent=state.agent,
            n=state.n,
            time=state.time + 1,
            init=state.init,
            decided=self.next_decided(state, action),
            jd=self.observed_just_decided(received),
        )
