"""Communication graphs: the compact full-information representation.

Appendix A.2.7 of the paper (following Moses and Tuttle) represents an agent's
full-information state at time ``m`` by a *communication graph* ``G_{i,m}``:

* vertices are the pairs ``(j, m')`` for every agent ``j`` and time ``m' <= m``;
* the edge from ``(j, m' - 1)`` to ``(j', m')`` carries a label in ``{0, 1, ?}``
  recording whether agent ``i`` knows that ``j``'s round-``m'`` message to
  ``j'`` was received (1), knows it was not received (0), or does not know (?);
* each vertex ``(j, 0)`` carries a preference label in ``{0, 1, ?}`` recording
  whether ``i`` knows agent ``j``'s initial preference.

Because the full-information protocol sends the entire graph every round, an
agent's graph at time ``m + 1`` is the merge of its own graph, the graphs it
received, and its direct observations of which round-``(m + 1)`` messages
arrived.

This module also provides the derived quantities used by the polynomial-time
protocol ``P_opt``:

* the *hears-from* reachability frontier (Definition A.1): for each agent ``j``,
  the latest time ``m'`` such that ``(j, m')`` hears-into the graph's anchor
  point — this is ``last_ij(r, m)`` of Definition A.6;
* the cone restriction ``G_{j,m'}`` reconstructed from ``G_{i,m}`` for points
  that ``i`` has heard from (full information makes this possible);
* the sets ``f(j, m', G)`` and ``D(S, m', G)`` of faulty agents known to ``j``
  (respectively, distributed-known to ``S``) at time ``m'``;
* the sets ``V(j, m', G)`` of initial values known to ``j`` at time ``m'``.

The labels use Python values ``True`` (delivered), ``False`` (not delivered),
and *absence* for ``?``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import ModelCheckingError
from ..core.types import AgentId, Value

#: A labelled edge: (round_index, sender, receiver, delivered?).  ``round_index``
#: is the time at which the round starts, i.e. the edge goes from
#: ``(sender, round_index)`` to ``(receiver, round_index + 1)``.
LabelledEdge = Tuple[int, AgentId, AgentId, bool]


class CommGraph:
    """An immutable communication graph at a given time.

    Instances are value objects: equality and hashing consider the number of
    agents, the time, the known preference labels, and the known edge labels.
    """

    __slots__ = ("n", "time", "_prefs", "_labels", "_label_set", "_hash")

    def __init__(self, n: int, time: int,
                 prefs: Mapping[AgentId, Value] | Sequence[Optional[Value]],
                 labels: Iterable[LabelledEdge]) -> None:
        self.n = n
        self.time = time
        if isinstance(prefs, Mapping):
            pref_tuple = tuple(prefs.get(j) for j in range(n))
        else:
            pref_tuple = tuple(prefs)
            if len(pref_tuple) != n:
                raise ModelCheckingError(f"expected {n} preference labels, got {len(pref_tuple)}")
        self._prefs: Tuple[Optional[Value], ...] = pref_tuple
        label_dict: Dict[Tuple[int, AgentId, AgentId], bool] = {}
        for (round_index, sender, receiver, delivered) in labels:
            label_dict[(round_index, sender, receiver)] = bool(delivered)
        self._labels = label_dict
        self._label_set: FrozenSet[LabelledEdge] = frozenset(
            (m, s, r, d) for (m, s, r), d in label_dict.items()
        )
        self._hash = hash((self.n, self.time, self._prefs, self._label_set))

    # ------------------------------------------------------------------ construction

    @classmethod
    def initial(cls, n: int, agent: AgentId, init: Value) -> "CommGraph":
        """The time-0 graph of ``agent``: it knows only its own preference."""
        prefs: Dict[AgentId, Value] = {agent: init}
        return cls(n=n, time=0, prefs=prefs, labels=())

    def advance(self, receiver: AgentId,
                received: Sequence[Optional["CommGraph"]]) -> "CommGraph":
        """The graph after one more round, merging received graphs and observations.

        Parameters
        ----------
        receiver:
            The agent owning this graph (needed to record its direct
            observations of which messages arrived).
        received:
            ``received[j]`` is the graph received from agent ``j`` this round,
            or ``None`` if no message arrived from ``j``.
        """
        if len(received) != self.n:
            raise ModelCheckingError(f"expected {self.n} received slots, got {len(received)}")
        labels: Dict[Tuple[int, AgentId, AgentId], bool] = dict(self._labels)
        prefs: List[Optional[Value]] = list(self._prefs)
        for sender, graph in enumerate(received):
            if graph is None:
                continue
            for (key, delivered) in graph._labels.items():
                labels.setdefault(key, delivered)
            for j, pref in enumerate(graph._prefs):
                if pref is not None and prefs[j] is None:
                    prefs[j] = pref
        # Direct observations: which round-(time + 1) messages reached us.
        for sender in range(self.n):
            labels[(self.time, sender, receiver)] = received[sender] is not None
        return CommGraph(
            n=self.n,
            time=self.time + 1,
            prefs=prefs,
            labels=((m, s, r, d) for (m, s, r), d in labels.items()),
        )

    # ------------------------------------------------------------------ basic queries

    def label(self, round_index: int, sender: AgentId, receiver: AgentId) -> Optional[bool]:
        """The label of the edge for the message ``sender -> receiver`` in round ``round_index + 1``.

        Returns ``True`` (delivered), ``False`` (not delivered), or ``None`` (unknown).
        """
        return self._labels.get((round_index, sender, receiver))

    def preference(self, agent: AgentId) -> Optional[Value]:
        """Agent ``agent``'s initial preference, if known; ``None`` otherwise."""
        return self._prefs[agent]

    def known_preferences(self) -> Dict[AgentId, Value]:
        """All initial preferences recorded in the graph."""
        return {j: v for j, v in enumerate(self._prefs) if v is not None}

    def labelled_edges(self) -> FrozenSet[LabelledEdge]:
        """The set of edges with a known (0/1) label."""
        return self._label_set

    def bit_size(self) -> int:
        """The encoded size of the graph in bits.

        Every edge label takes 2 bits (three values), there are ``n^2`` edges per
        round and ``time`` rounds, plus 2 bits per initial-preference label —
        the ``O(n^2 t)`` per-message cost quoted in Section 8.
        """
        return 2 * self.n * self.n * self.time + 2 * self.n

    # ------------------------------------------------------------------ hears-from machinery

    def heard_frontier(self, anchor_agent: AgentId,
                       anchor_time: Optional[int] = None) -> List[int]:
        """``last_{anchor,j}``: for each agent ``j``, the latest time ``m'`` such that
        ``(j, m')`` hears-into ``(anchor_agent, anchor_time)``.

        The result is a list indexed by agent; ``-1`` means the anchor has never
        heard from that agent at all (not even its initial state).  The anchor
        itself always has frontier ``anchor_time``.

        Only edges whose label is known to be *delivered* in this graph are
        used; for the graph's own anchor point this coincides with the run's
        hears-from relation because receivers record and forward every
        delivery.
        """
        if anchor_time is None:
            anchor_time = self.time
        frontier = [-1] * self.n
        frontier[anchor_agent] = anchor_time
        # Work backwards in time: a delivered edge (j, m) -> (k, m + 1) extends
        # j's frontier to at least m whenever k's frontier is at least m + 1.
        changed = True
        while changed:
            changed = False
            for (round_index, sender, receiver), delivered in self._labels.items():
                if not delivered:
                    continue
                if round_index + 1 > anchor_time:
                    continue
                if frontier[receiver] >= round_index + 1 and frontier[sender] < round_index:
                    frontier[sender] = round_index
                    changed = True
        return frontier

    def hears_from(self, source: Tuple[AgentId, int], anchor_agent: AgentId,
                   anchor_time: Optional[int] = None) -> bool:
        """Whether the point ``source = (j, m')`` hears-into ``(anchor_agent, anchor_time)``."""
        agent, time = source
        frontier = self.heard_frontier(anchor_agent, anchor_time)
        return frontier[agent] >= time

    def restrict(self, anchor_agent: AgentId, anchor_time: int) -> "CommGraph":
        """Reconstruct ``G_{anchor_agent, anchor_time}`` from this graph.

        This is only meaningful when the anchor point hears-into this graph's
        owner (full information then guarantees the owner knows the anchor's
        entire state); the restriction is the sub-graph of labels and
        preferences that could have reached the anchor.
        """
        frontier = self.heard_frontier(anchor_agent, anchor_time)
        prefs: Dict[AgentId, Value] = {
            j: v
            for j, v in enumerate(self._prefs)
            if v is not None and frontier[j] >= 0
        }
        labels = [
            (m, s, r, d)
            for (m, s, r), d in self._labels.items()
            if m + 1 <= frontier[r]
        ]
        return CommGraph(n=self.n, time=anchor_time, prefs=prefs, labels=labels)

    # ------------------------------------------------------------------ knowledge of failures / values

    def known_faulty(self, agent: AgentId, time: int) -> FrozenSet[AgentId]:
        """The set ``f(agent, time, G)``: faulty agents this graph shows ``agent`` knew at ``time``.

        Computed exactly as in Appendix A.2.7: the union of (a) the faulty sets
        known at ``time - 1`` by every agent whose round-``time`` message to
        ``agent`` is recorded as delivered, (b) the agents whose round-``time``
        message to ``agent`` is recorded as *not* delivered, and (c) what
        ``agent`` already knew at ``time - 1``.
        """
        memo: Dict[Tuple[AgentId, int], FrozenSet[AgentId]] = {}
        return self._known_faulty(agent, time, memo)

    def _known_faulty(self, agent: AgentId, time: int,
                      memo: Dict[Tuple[AgentId, int], FrozenSet[AgentId]]) -> FrozenSet[AgentId]:
        if time <= 0:
            return frozenset()
        key = (agent, time)
        if key in memo:
            return memo[key]
        memo[key] = frozenset()  # guard against (impossible) cycles
        result: Set[AgentId] = set(self._known_faulty(agent, time - 1, memo))
        for sender in range(self.n):
            label = self.label(time - 1, sender, agent)
            if label is True:
                result |= self._known_faulty(sender, time - 1, memo)
            elif label is False:
                result.add(sender)
        memo[key] = frozenset(result)
        return memo[key]

    def distributed_faulty(self, agents: Iterable[AgentId], time: int) -> FrozenSet[AgentId]:
        """``D(S, time, G)``: the union of ``f(k, time, G)`` over ``k`` in ``agents``."""
        memo: Dict[Tuple[AgentId, int], FrozenSet[AgentId]] = {}
        result: Set[AgentId] = set()
        for agent in agents:
            result |= self._known_faulty(agent, time, memo)
        return frozenset(result)

    def possibly_nonfaulty(self, agent: AgentId, time: Optional[int] = None) -> FrozenSet[AgentId]:
        """``f̄(agent, time, G)``: the agents this graph does not show to be faulty."""
        if time is None:
            time = self.time
        return frozenset(range(self.n)) - self.known_faulty(agent, time)

    def known_values(self, agent: AgentId, time: int) -> FrozenSet[Value]:
        """``V(agent, time, G)``: the initial values known to ``agent`` at ``time``.

        This is the set of preferences of agents in the hears-from cone of
        ``(agent, time)``; it is empty if the cone is empty (which cannot happen
        for ``time >= 0`` because an agent always knows its own preference, but
        callers treat points outside the owner's cone specially).
        """
        frontier = self.heard_frontier(agent, time)
        values: Set[Value] = set()
        for j in range(self.n):
            if frontier[j] >= 0 and self._prefs[j] is not None:
                values.add(self._prefs[j])
        return frozenset(values)

    # ------------------------------------------------------------------ value-object protocol

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommGraph):
            return NotImplemented
        return (self.n == other.n and self.time == other.time
                and self._prefs == other._prefs and self._label_set == other._label_set)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Serialize through sorted labels: frozenset iteration order is not
        # stable across pickle round trips, and equal graphs must pickle to
        # identical bytes (the executor-equivalence guarantee of repro.api).
        return (self.__class__,
                (self.n, self.time, self._prefs, tuple(sorted(self._label_set))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CommGraph(n={self.n}, time={self.time}, "
                f"known_prefs={len(self.known_preferences())}, labels={len(self._labels)})")
