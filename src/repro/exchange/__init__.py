"""Information-exchange protocols: ``E_min``, ``E_basic``, and ``E_fip``."""

from .base import InformationExchange, LocalState
from .basic import BasicExchange, BasicLocalState
from .commgraph import CommGraph, LabelledEdge
from .fip import FipLocalState, FullInformationExchange
from .messages import (
    DecideNotification,
    GraphMessage,
    InitOneHeartbeat,
    Message,
    is_decide_notification,
    message_bits,
)
from .minimal import MinimalExchange

__all__ = [
    "BasicExchange",
    "BasicLocalState",
    "CommGraph",
    "DecideNotification",
    "FipLocalState",
    "FullInformationExchange",
    "GraphMessage",
    "InformationExchange",
    "InitOneHeartbeat",
    "LabelledEdge",
    "LocalState",
    "Message",
    "MinimalExchange",
    "is_decide_notification",
    "message_bits",
]
