"""The information-exchange protocol interface (the ``E`` of the paper).

Section 3 defines a local information-exchange protocol for agent ``i`` as a
tuple ``⟨L_i, I_i, A_i, M_i, μ_i, δ_i⟩``:

* ``L_i`` — local states,
* ``I_i`` — initial states,
* ``M_i`` — messages,
* ``μ_i(s, a)`` — which message to send to each agent when performing action
  ``a`` in state ``s``,
* ``δ_i(s, a, (m_1, ..., m_n))`` — the state update given the action performed
  and the messages received in the round.

All three exchanges in this library are *uniform*: every agent runs the same
local protocol, so an :class:`InformationExchange` object describes the whole
tuple ``⟨E_1, ..., E_n⟩`` at once.

Every exchange used for EBA must satisfy the *EBA-context* constraints of
Section 5, most importantly:

* local states expose ``time``, ``init``, ``decided``, and ``jd`` ("just
  decided" — the value some agent was observed deciding this round);
* the message sent when deciding 0, deciding 1, and otherwise are mutually
  distinguishable;
* the update increments ``time`` and maintains ``decided`` / ``jd``.

The shared bookkeeping for those constraints lives in this module so the
concrete exchanges (:mod:`repro.exchange.minimal`, :mod:`repro.exchange.basic`,
:mod:`repro.exchange.fip`) only add their own extra state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.errors import ProtocolError
from ..core.types import Action, AgentId, Value
from .messages import DecideNotification, Message, message_bits


@dataclass(frozen=True)
class LocalState:
    """The part of a local state that every EBA context must contain.

    Attributes
    ----------
    agent:
        The owning agent's identifier (kept in the state for convenience; the
        paper indexes states by agent instead).
    n:
        The number of agents in the system.
    time:
        The current time (number of completed rounds).
    init:
        The agent's initial preference.
    decided:
        The value decided so far, or ``None`` if still undecided.
    jd:
        The "just decided" observation: ``v`` if in the last round the agent
        received a message from some agent that was deciding ``v``; ``None``
        otherwise.
    """

    agent: AgentId
    n: int
    time: int
    init: Value
    decided: Optional[Value]
    jd: Optional[Value]

    @property
    def is_decided(self) -> bool:
        """Whether the agent has already decided."""
        return self.decided is not None


class InformationExchange(abc.ABC):
    """Abstract base class for information-exchange protocols."""

    #: A short name used in reports ("E_min", "E_basic", "E_fip").
    name: str = "E"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ProtocolError(f"an exchange needs a positive number of agents, got {n}")
        self.n = n

    # ------------------------------------------------------------------ interface

    @abc.abstractmethod
    def initial_state(self, agent: AgentId, init: Value) -> LocalState:
        """The initial local state of ``agent`` with initial preference ``init``."""

    @abc.abstractmethod
    def messages_for(self, state: LocalState, action: Action) -> Tuple[Message, ...]:
        """The messages ``μ_i(s, a)``: one entry per recipient ``0 .. n-1`` (``None`` = ``⊥``)."""

    @abc.abstractmethod
    def update(self, state: LocalState, action: Action,
               received: Sequence[Message]) -> LocalState:
        """The state update ``δ_i(s, a, (m_1, ..., m_n))``.

        ``received[j]`` is the message received from agent ``j`` this round, or
        ``None`` if no message arrived from ``j``.
        """

    # ------------------------------------------------------------------ shared helpers

    def message_bits(self, message: Message) -> int:
        """Bits needed to transmit ``message`` under this exchange."""
        return message_bits(message, self.n)

    @staticmethod
    def decide_message(action: Action) -> Optional[DecideNotification]:
        """The decide notification corresponding to ``action`` (``None`` for noop)."""
        if action.is_decision:
            return DecideNotification(action.value)
        return None

    @staticmethod
    def observed_just_decided(received: Sequence[Message]) -> Optional[Value]:
        """Compute the ``jd`` component from the received messages.

        Per the EBA-context constraints, a received message in ``M0`` yields
        ``jd = 0``; a message in ``M1`` yields ``jd = 1``.  If both kinds are
        received, 0 takes precedence (0-biased protocols act on 0 first; the
        concrete protocols only need "some agent just decided v").
        """
        saw_one = False
        for message in received:
            if isinstance(message, DecideNotification):
                if message.value == 0:
                    return 0
                saw_one = True
        return 1 if saw_one else None

    @staticmethod
    def next_decided(state: LocalState, action: Action) -> Optional[Value]:
        """The ``decided`` component after performing ``action`` in ``state``."""
        if action.is_decision:
            if state.decided is not None and state.decided != action.value:
                raise ProtocolError(
                    f"agent {state.agent} attempted to change its decision from "
                    f"{state.decided} to {action.value}"
                )
            return action.value
        return state.decided

    # ------------------------------------------------------------------ cosmetics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(n={self.n})"
