"""Message types and bit-size accounting for the information-exchange protocols.

Proposition 8.1 compares the three exchanges by the number of *bits* sent per
run, so every message type knows its encoded size:

* ``E_min`` sends only decide notifications, encodable in a single bit.
* ``E_basic`` adds the ``(init, 1)`` heartbeat, so it needs a (constant) two-bit
  alphabet.
* ``E_fip`` sends the full communication graph, which takes ``O(n^2 * t)`` bits
  (Section 8 / Moses–Tuttle).

``None`` is used for "no message" (the paper's ``⊥``) and contributes zero bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.types import Value, validate_value


@dataclass(frozen=True)
class DecideNotification:
    """The message an agent sends in the round in which it decides ``value``.

    In ``E_min`` and ``E_basic`` this is the literal message ``0`` or ``1``
    (the sets ``M0 = {0}`` and ``M1 = {1}`` of Section 6).
    """

    value: Value

    def __post_init__(self) -> None:
        validate_value(self.value)

    def bit_size(self, n: int) -> int:
        """One bit suffices to encode which value was decided."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"decide-msg({self.value})"


@dataclass(frozen=True)
class InitOneHeartbeat:
    """The ``(init, 1)`` message of ``E_basic``.

    Sent every round by an undecided agent whose initial preference is 1 and
    that has not yet heard a decide notification.
    """

    def bit_size(self, n: int) -> int:
        """Two bits distinguish the heartbeat from the two decide notifications."""
        return 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(init, 1)"


@dataclass(frozen=True)
class GraphMessage:
    """A full-information message: the sender's entire communication graph."""

    graph: "CommGraph"  # forward reference; see repro.exchange.commgraph

    def bit_size(self, n: int) -> int:
        """Size of the encoded communication graph in bits."""
        return self.graph.bit_size()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"graph-msg(time={self.graph.time})"


#: A message is one of the concrete message dataclasses, or ``None`` for ``⊥``.
Message = Optional[Union[DecideNotification, InitOneHeartbeat, GraphMessage]]


def message_bits(message: Message, n: int) -> int:
    """The number of bits needed to transmit ``message`` (0 for ``⊥``)."""
    if message is None:
        return 0
    return message.bit_size(n)


def is_decide_notification(message: Message, value: Optional[Value] = None) -> bool:
    """Whether ``message`` notifies a decision (optionally of a specific value)."""
    if not isinstance(message, DecideNotification):
        return False
    return value is None or message.value == value
