"""The full-information exchange ``E_fip`` of Section 7 (Appendix A.2.7).

Every round, every agent sends its entire communication graph to every agent
(including itself).  The local state is ``⟨time, decided, init, G_{i,time}⟩``.

Note (following the paper's "slightly nonstandard" full-information context):
the message sent does not depend on the action being performed — recipients can
infer decisions from the graph itself, because the full-information protocol
lets them recompute every other agent's decisions from the states they have
heard about.  We do keep the ``decided`` flag in the local state for protocol
bookkeeping; the paper drops it to make corresponding runs literally identical,
a property we do not rely on (a :class:`repro.api.SweepSpec` pairs
corresponding runs explicitly by initial global state — the same
``(preferences, failure pattern)`` scenario across protocols).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.types import Action, AgentId, Value, validate_value
from .base import InformationExchange, LocalState
from .commgraph import CommGraph
from .messages import GraphMessage, Message


@dataclass(frozen=True)
class FipLocalState(LocalState):
    """Full-information local state: the EBA-context core plus the communication graph."""

    graph: CommGraph = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.graph is None:
            raise ValueError("a full-information local state requires a communication graph")


class FullInformationExchange(InformationExchange):
    """The exchange ``E_fip(n)``: communication graphs broadcast every round."""

    name = "E_fip"

    def initial_state(self, agent: AgentId, init: Value) -> FipLocalState:
        validate_value(init)
        return FipLocalState(
            agent=agent,
            n=self.n,
            time=0,
            init=init,
            decided=None,
            jd=None,
            graph=CommGraph.initial(self.n, agent, init),
        )

    def messages_for(self, state: FipLocalState, action: Action) -> Tuple[Message, ...]:
        message = GraphMessage(state.graph)
        return tuple(message for _ in range(self.n))

    def update(self, state: FipLocalState, action: Action,
               received: Sequence[Message]) -> FipLocalState:
        received_graphs: list[Optional[CommGraph]] = []
        for message in received:
            if isinstance(message, GraphMessage):
                received_graphs.append(message.graph)
            else:
                received_graphs.append(None)
        new_graph = state.graph.advance(state.agent, received_graphs)
        return FipLocalState(
            agent=state.agent,
            n=state.n,
            time=state.time + 1,
            init=state.init,
            decided=self.next_decided(state, action),
            jd=self.observed_just_decided(received),
            graph=new_graph,
        )
