"""The basic information-exchange protocol ``E_basic`` of Section 6.

``E_basic`` extends ``E_min`` with a heartbeat: an *undecided* agent whose
initial preference is 1 sends the message ``(init, 1)`` to every agent each
round.  The local state gains one component, ``count_ones`` (written ``#1_i``
in the paper), which records how many ``(init, 1)`` messages arrived in the
last round — but only while the agent is undecided and did not also receive a
decide notification; otherwise it is reset to 0.

* Message alphabet: ``M_i = {0, 1, (init, 1)}`` with ``M0 = {0}``, ``M1 = {1}``,
  ``M2 = {(init, 1), ⊥}``.
* ``μ_ij(s, a)``: the decided value when deciding; ``(init, 1)`` when the state
  has the form ``⟨m, 1, ⊥, ⊥, k⟩`` and the action is ``noop``; ``⊥`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.types import Action, AgentId, Value, validate_value
from .base import InformationExchange, LocalState
from .messages import DecideNotification, InitOneHeartbeat, Message


@dataclass(frozen=True)
class BasicLocalState(LocalState):
    """``E_basic`` local state: the EBA-context core plus the ``#1`` counter."""

    count_ones: int = 0


class BasicExchange(InformationExchange):
    """The exchange ``E_basic(n)``: decide notifications plus ``(init, 1)`` heartbeats."""

    name = "E_basic"

    def initial_state(self, agent: AgentId, init: Value) -> BasicLocalState:
        validate_value(init)
        return BasicLocalState(agent=agent, n=self.n, time=0, init=init,
                               decided=None, jd=None, count_ones=0)

    def messages_for(self, state: BasicLocalState, action: Action) -> Tuple[Message, ...]:
        message: Message
        if action.is_decision:
            message = DecideNotification(action.value)
        elif state.init == 1 and state.decided is None and state.jd is None:
            # The paper's condition: the state has the form ⟨m, 1, ⊥, ⊥, k⟩.
            message = InitOneHeartbeat()
        else:
            message = None
        return tuple(message for _ in range(self.n))

    def update(self, state: BasicLocalState, action: Action,
               received: Sequence[Message]) -> BasicLocalState:
        decided = self.next_decided(state, action)
        jd = self.observed_just_decided(received)
        saw_decide_notification = any(isinstance(m, DecideNotification) for m in received)
        if decided is None and not saw_decide_notification:
            count_ones = sum(1 for m in received if isinstance(m, InitOneHeartbeat))
        else:
            # Once a decision is made (or a decide notification arrives), the
            # counter is ignored; the paper resets it to 0 for technical reasons.
            count_ones = 0
        return BasicLocalState(
            agent=state.agent,
            n=state.n,
            time=state.time + 1,
            init=state.init,
            decided=decided,
            jd=jd,
            count_ones=count_ones,
        )
