"""The EBA specification checkers."""

from .eba import (
    SpecReport,
    check_agreement,
    check_eba,
    check_termination,
    check_unique_decision,
    check_validity,
    require_eba,
)

__all__ = [
    "SpecReport",
    "check_agreement",
    "check_eba",
    "check_termination",
    "check_unique_decision",
    "check_validity",
    "require_eba",
]
