"""Checkers for the Eventual Byzantine Agreement specification (Section 5).

Given a :class:`~repro.simulation.trace.RunTrace`, the four properties are:

* **Unique Decision** — no agent decides twice (in particular, never flips).
* **Agreement** — nonfaulty agents that decide, decide the same value.
* **Validity** — a (nonfaulty) agent that decides ``v`` does so only if some
  agent had initial preference ``v``.
* **Termination** — every nonfaulty agent eventually decides; the paper's
  protocols additionally guarantee a decision by round ``t + 2``.

Each checker returns a list of human-readable violation strings; an empty list
means the property holds on the trace.  :func:`check_eba` bundles all four into
a :class:`SpecReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import SpecificationViolation
from ..simulation.trace import RunTrace

#: Per-agent decision record: the 1-based rounds in which the agent performed a
#: decision action, paired with the decided values, in round order.
DecisionTable = Tuple[Tuple[Tuple[int, int], ...], ...]


def decision_table(trace: RunTrace) -> DecisionTable:
    """Collect every decision action of the trace in one pass over the rounds.

    ``table[agent]`` lists ``(round_number, value)`` for each decision action
    ``agent`` performed, in round order.  The four property checkers below all
    derive their per-agent views from this table, so checking a trace scans
    its rounds once instead of once per agent per property.
    """
    decisions: List[List[Tuple[int, int]]] = [[] for _ in range(trace.n)]
    for record in trace.rounds:
        for agent, action in enumerate(record.actions):
            if action.is_decision:
                decisions[agent].append((record.round_number, action.value))
    return tuple(tuple(rounds) for rounds in decisions)


@dataclass
class SpecReport:
    """The outcome of checking the EBA specification on one trace."""

    trace_summary: str
    unique_decision: List[str] = field(default_factory=list)
    agreement: List[str] = field(default_factory=list)
    validity: List[str] = field(default_factory=list)
    termination: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the trace satisfies all four properties."""
        return not (self.unique_decision or self.agreement or self.validity or self.termination)

    def violations(self) -> List[str]:
        """All violation messages, across the four properties."""
        return [*self.unique_decision, *self.agreement, *self.validity, *self.termination]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{len(self.violations())} violation(s)"
        return f"SpecReport({status}: {self.trace_summary})"


def check_unique_decision(trace: RunTrace,
                          decisions: Optional[DecisionTable] = None) -> List[str]:
    """Unique Decision: an agent never performs a second (or conflicting) decision."""
    if decisions is None:
        decisions = decision_table(trace)
    violations: List[str] = []
    for agent in range(trace.n):
        decision_rounds = [round_number for round_number, _value in decisions[agent]]
        if len(decision_rounds) > 1:
            violations.append(
                f"agent {agent} decides more than once (rounds {decision_rounds})"
            )
    return violations


def check_agreement(trace: RunTrace,
                    decisions: Optional[DecisionTable] = None) -> List[str]:
    """Agreement: all nonfaulty deciders agree on the value."""
    if decisions is None:
        decisions = decision_table(trace)
    violations: List[str] = []
    decided: Dict[int, int] = {}
    for agent in sorted(trace.nonfaulty):
        if decisions[agent]:
            decided[agent] = decisions[agent][0][1]
    values = set(decided.values())
    if len(values) > 1:
        detail = ", ".join(f"agent {agent}→{value}" for agent, value in sorted(decided.items()))
        violations.append(f"nonfaulty agents disagree: {detail}")
    return violations


def check_validity(trace: RunTrace, include_faulty: bool = False,
                   decisions: Optional[DecisionTable] = None) -> List[str]:
    """Validity: a decided value must be someone's initial preference.

    With ``include_faulty=True`` the property is checked for every agent (the
    strengthening that Proposition 6.1 proves for implementations of ``P0``).
    """
    if decisions is None:
        decisions = decision_table(trace)
    violations: List[str] = []
    present_values = set(trace.preferences)
    agents: Sequence[int] = range(trace.n) if include_faulty else sorted(trace.nonfaulty)
    for agent in agents:
        if decisions[agent]:
            value = decisions[agent][0][1]
            if value not in present_values:
                violations.append(
                    f"agent {agent} decided {value} but no agent had that initial preference"
                )
    return violations


def check_termination(trace: RunTrace, deadline: Optional[int] = None,
                      include_faulty: bool = False,
                      decisions: Optional[DecisionTable] = None) -> List[str]:
    """Termination: every nonfaulty agent decides (optionally by a 1-based round ``deadline``)."""
    if decisions is None:
        decisions = decision_table(trace)
    violations: List[str] = []
    agents: Sequence[int] = range(trace.n) if include_faulty else sorted(trace.nonfaulty)
    for agent in agents:
        if not decisions[agent]:
            violations.append(f"agent {agent} never decides within the simulated horizon")
            continue
        round_number = decisions[agent][0][0]
        if deadline is not None and round_number > deadline:
            violations.append(
                f"agent {agent} decides in round {round_number}, after the deadline {deadline}"
            )
    return violations


def check_eba(trace: RunTrace, deadline: Optional[int] = None,
              validity_for_faulty: bool = False,
              termination_for_faulty: bool = False) -> SpecReport:
    """Check the full EBA specification on a trace and return a report."""
    decisions = decision_table(trace)
    return SpecReport(
        trace_summary=trace.summary(),
        unique_decision=check_unique_decision(trace, decisions=decisions),
        agreement=check_agreement(trace, decisions=decisions),
        validity=check_validity(trace, include_faulty=validity_for_faulty,
                                decisions=decisions),
        termination=check_termination(trace, deadline=deadline,
                                      include_faulty=termination_for_faulty,
                                      decisions=decisions),
    )


def require_eba(trace: RunTrace, deadline: Optional[int] = None,
                validity_for_faulty: bool = False) -> SpecReport:
    """Like :func:`check_eba` but raises :class:`SpecificationViolation` on failure."""
    report = check_eba(trace, deadline=deadline, validity_for_faulty=validity_for_faulty)
    if not report.ok:
        raise SpecificationViolation("; ".join(report.violations()))
    return report
