"""Experiment drivers: one module per reproduced result of the paper.

| Id | Paper result | Module |
|----|--------------|--------|
| E1 | Proposition 8.1 (bits per run)                  | :mod:`repro.experiments.message_complexity` |
| E2 | Proposition 8.2 (failure-free decision rounds)  | :mod:`repro.experiments.decision_rounds` |
| E3 | Example 7.1 (FIP advantage under failures)      | :mod:`repro.experiments.example_7_1` |
| E4 | Corollaries 6.7 / 7.8 (dominance/optimality)    | :mod:`repro.experiments.dominance_study` |
| E5 | Proposition 6.1 (termination by round t+2)      | :mod:`repro.experiments.termination_bound` |
| E6 | Introduction counterexample (naive 0-bias)      | :mod:`repro.experiments.agreement_violation` |
| E7 | Theorems 6.5 / 6.6 (implementation of ``P0``)   | :mod:`repro.experiments.implementation_check` |
| E8 | Section 8 discussion (limited exchange vs FIP)  | :mod:`repro.experiments.fip_gap` |
| E9 | Crash vs omission failures (0-bias ablation)    | :mod:`repro.experiments.crash_comparison` |
| E10| Optimality probe (one-step deviations)          | :mod:`repro.experiments.optimality_probe` |
| E11| Proposition 6.4 (the Definition 6.2 safety condition) | :mod:`repro.experiments.safety_check` |
| E12| Failure-model comparison (SO vs RO vs GO)       | :mod:`repro.experiments.failure_model_comparison` |

Each module exposes ``measure``-style functions returning structured rows and a
``report()`` function rendering a plain-text table; the benchmarks in
``benchmarks/`` and the example scripts in ``examples/`` are thin wrappers
around these drivers.
"""

from . import (
    agreement_violation,
    crash_comparison,
    decision_rounds,
    dominance_study,
    example_7_1,
    failure_model_comparison,
    fip_gap,
    implementation_check,
    message_complexity,
    optimality_probe,
    safety_check,
    termination_bound,
)

__all__ = [
    "agreement_violation",
    "crash_comparison",
    "decision_rounds",
    "dominance_study",
    "example_7_1",
    "failure_model_comparison",
    "fip_gap",
    "implementation_check",
    "message_complexity",
    "optimality_probe",
    "safety_check",
    "termination_bound",
]
