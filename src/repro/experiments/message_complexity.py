"""Experiment E1 — message complexity (Proposition 8.1).

The paper states that, per run,

* ``P_min`` sends ``n²`` bits in total (every agent sends its one-bit decide
  notification exactly once, to every agent);
* ``P_basic`` sends ``O(n² t)`` bits (constant-size messages to every agent for
  at most ``t + 1`` rounds);
* a standard communication-graph implementation of the full-information
  exchange sends ``O(n⁴ t²)`` bits.

This experiment measures the exact totals on failure-free runs (the case the
paper's Section 8 analyses) for a sweep of ``(n, t)`` and compares them with
the stated bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import Executor, StoreLike, Sweep
from ..failures.pattern import FailurePattern
from ..protocols.base import ActionProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..workloads.preferences import all_ones, single_zero


@dataclass(frozen=True)
class BitsMeasurement:
    """Bits sent by one protocol in one failure-free run."""

    protocol: str
    n: int
    t: int
    scenario: str
    bits: int
    bits_excluding_self: int
    messages: int
    paper_bound: int
    within_bound: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "scenario": self.scenario,
            "bits": self.bits,
            "bits (no self)": self.bits_excluding_self,
            "messages": self.messages,
            "paper bound": self.paper_bound,
            "within bound": self.within_bound,
        }


def paper_bit_bound(protocol_name: str, n: int, t: int) -> int:
    """The Proposition 8.1 bound for a protocol (exact for ``P_min``, big-O otherwise).

    For the big-O bounds we use constant 4, which comfortably covers the
    concrete encodings used by the library (2-bit ``E_basic`` alphabet; 2 bits
    per communication-graph label).
    """
    if protocol_name == "P_min":
        return n * n
    if protocol_name == "P_basic":
        return 4 * n * n * (t + 1)
    # Full-information exchange: O(n^4 t^2) bits per run.
    return 4 * (n ** 4) * ((t + 1) ** 2)


def default_protocols(t: int) -> List[ActionProtocol]:
    """The three Section 8 protocols with failure bound ``t``."""
    return [MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)]


def measure_bits(n: int, t: int,
                 protocols: Optional[Sequence[ActionProtocol]] = None,
                 executor: Optional[Executor] = None,
                 store: StoreLike = None) -> List[BitsMeasurement]:
    """Measure total bits for the two failure-free scenarios of Section 8."""
    if protocols is None:
        protocols = default_protocols(t)
    pattern = FailurePattern.failure_free(n)
    labelled = [
        ("one agent prefers 0", (single_zero(n), pattern)),
        ("all agents prefer 1", (all_ones(n), pattern)),
    ]
    results = Sweep.of(*protocols).on([scenario for _, scenario in labelled], n=n).run(executor, store=store)
    measurements: List[BitsMeasurement] = []
    for protocol in protocols:
        for index, (label, _scenario) in enumerate(labelled):
            trace = results.trace(protocol.name, index)
            bits = trace.total_bits(include_self=True)
            bound = paper_bit_bound(protocol.name, n, t)
            measurements.append(BitsMeasurement(
                protocol=protocol.name,
                n=n,
                t=t,
                scenario=label,
                bits=bits,
                bits_excluding_self=trace.total_bits(include_self=False),
                messages=trace.total_messages(include_self=True),
                paper_bound=bound,
                within_bound=bits <= bound,
            ))
    return measurements


def sweep_bits(settings: Sequence[Tuple[int, int]],
               include_fip: bool = True,
               executor: Optional[Executor] = None,
               store: StoreLike = None) -> List[BitsMeasurement]:
    """Measure bits for a sweep of ``(n, t)`` settings.

    ``include_fip=False`` drops the full-information protocol (its per-run cost
    grows as ``n⁴ t²`` and simulation slows down accordingly for large ``n``).
    """
    results: List[BitsMeasurement] = []
    for n, t in settings:
        protocols: List[ActionProtocol] = [MinProtocol(t), BasicProtocol(t)]
        if include_fip:
            protocols.append(OptimalFipProtocol(t))
        results.extend(measure_bits(n, t, protocols, executor=executor, store=store))
    return results


def report(settings: Sequence[Tuple[int, int]] = ((5, 1), (10, 3), (20, 6)),
           include_fip: bool = True,
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the Proposition 8.1 comparison as a table."""
    measurements = sweep_bits(settings, include_fip=include_fip, executor=executor,
                              store=store)
    table = format_table([m.as_row() for m in measurements],
                         title="E1 / Proposition 8.1 — bits sent per failure-free run")
    notes = [
        "",
        "Paper: P_min sends exactly n^2 bits; P_basic sends O(n^2 t) bits;",
        "a communication-graph FIP sends O(n^4 t^2) bits per run.",
    ]
    return table + "\n" + "\n".join(notes)
