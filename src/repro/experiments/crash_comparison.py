"""Experiment E9 — crash failures versus sending omissions (ablation).

The paper motivates its 0-chain machinery by contrasting the two failure
models: with *crash* failures an agent can only hear about a 0 via what is in
effect a 0-chain, so the classical 0-biased rule "decide 0 as soon as you hear
about a 0" is a correct (and optimal) EBA protocol [Castañeda et al.]; with
*sending omissions* the introduction's counterexample shows that the same rule
breaks Agreement, and the chain-based ``P0`` discipline is needed.

This experiment makes that contrast concrete:

* under the crash model, the naive 0-biased baseline satisfies the EBA
  specification on every tested run and is never later than ``P_min``;
* under the omissions model, the same baseline violates Agreement (E6), while
  ``P_min`` / ``P_basic`` / ``P_opt`` remain correct under both models (crash
  patterns are a special case of omission patterns).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.dominance import compare_traces
from ..api import Executor, StoreLike, Sweep
from ..failures.adversaries import crash_staircase_adversary
from ..failures.models import CrashModel
from ..protocols.base import ActionProtocol
from ..protocols.baselines import NaiveZeroBiasedProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..reporting.tables import format_table
from ..simulation.runner import Scenario
from ..workloads.preferences import random_preferences
from ..workloads.scenarios import intro_counterexample


@dataclass(frozen=True)
class CrashComparisonRow:
    """Spec conformance and decision timing of one protocol under one failure model."""

    protocol: str
    failure_model: str
    n: int
    t: int
    runs: int
    spec_violations: int
    worst_decision_round: int
    never_later_than_pmin: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "failure model": self.failure_model,
            "n": self.n,
            "t": self.t,
            "runs": self.runs,
            "spec violations": self.spec_violations,
            "worst decision round": self.worst_decision_round,
            "never later than P_min": self.never_later_than_pmin,
        }


def crash_workload(n: int, t: int, count: int = 20, seed: int = 17,
                   horizon: Optional[int] = None) -> List[Scenario]:
    """Random crash adversaries plus the staircase worst case, with random preferences."""
    if horizon is None:
        horizon = t + 3
    model = CrashModel(n=n, t=t)
    rng = random.Random(seed)
    preferences = random_preferences(n, count + 1, seed=seed + 1)
    scenarios: List[Scenario] = []
    for index in range(count):
        scenarios.append((preferences[index], model.sample(rng, horizon)))
    scenarios.append((preferences[count], crash_staircase_adversary(n, t, horizon)))
    return scenarios


def omission_workload(n: int, t: int) -> List[Scenario]:
    """The omission scenario that separates the models: the introduction's counterexample."""
    return [intro_counterexample(n=n, t=t)]


def measure_model(n: int, t: int, scenarios: Sequence[Scenario], model_label: str,
                  protocols: Optional[Sequence[ActionProtocol]] = None,
                  executor: Optional[Executor] = None,
                  store: StoreLike = None) -> List[CrashComparisonRow]:
    """Check every protocol against the EBA specification over ``scenarios``."""
    if protocols is None:
        protocols = [NaiveZeroBiasedProtocol(t), MinProtocol(t), BasicProtocol(t)]
    reference = MinProtocol(t)
    results = Sweep.of(*protocols).on(scenarios, n=n).run(executor, store=store)
    # The baseline column is always MinProtocol(t): reuse its traces from the
    # sweep only when the caller's protocol really is that configuration.
    if any(isinstance(p, MinProtocol) and p.t == t and p.name == reference.name
           for p in protocols):
        reference_traces = results[reference.name]
    else:
        reference_traces = Sweep.of(reference).on(scenarios, n=n).run(
            executor, store=store)[reference.name]
    violation_counts = results.spec_violations()
    rows: List[CrashComparisonRow] = []
    for protocol in protocols:
        traces = results[protocol.name]
        violations = violation_counts[protocol.name]
        worst = 0
        for trace in traces:
            last = trace.last_decision_round(nonfaulty_only=True)
            if last is not None:
                worst = max(worst, last)
        comparison = compare_traces(traces, reference_traces)
        rows.append(CrashComparisonRow(
            protocol=protocol.name,
            failure_model=model_label,
            n=n,
            t=t,
            runs=len(scenarios),
            spec_violations=violations,
            worst_decision_round=worst,
            never_later_than_pmin=comparison.first_dominates,
        ))
    return rows


def measure(n: int = 6, t: int = 2, count: int = 20, seed: int = 17,
            executor: Optional[Executor] = None,
            store: StoreLike = None) -> List[CrashComparisonRow]:
    """The full E9 comparison: crash workload and the separating omission scenario."""
    rows = measure_model(n, t, crash_workload(n, t, count=count, seed=seed), f"Crash({t})",
                         executor=executor, store=store)
    rows.extend(measure_model(n, t, omission_workload(n, t), f"SO({t}) counterexample",
                              executor=executor, store=store))
    return rows


def report(n: int = 6, t: int = 2, count: int = 20, seed: int = 17,
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the crash-vs-omissions comparison as a table."""
    rows = measure(n=n, t=t, count=count, seed=seed, executor=executor, store=store)
    table = format_table(
        [row.as_row() for row in rows],
        title=f"E9 — crash failures vs sending omissions (n={n}, t={t})",
    )
    notes = [
        "",
        "Paper (introduction / Section 6): with crash failures a 0 can only be learned via",
        "a 0-chain, so the naive hear-about-0 rule is correct and fast; with sending",
        "omissions it violates Agreement, which is why P0 insists on 0-chains.",
    ]
    return table + "\n" + "\n".join(notes)
