"""Experiment E8 — how much does full information actually buy? (Section 8 discussion).

Section 8 observes that for failure-free runs the basic exchange already decides
as fast as the full-information exchange, and conjectures that "even in runs
with failures, ``P_basic`` may not be much worse than ``P_fip``".  This
experiment quantifies the gap: over random ``SO(t)`` adversaries (and over the
structured silent-faulty scenarios where the FIP shines), it measures the
distribution of the per-agent decision-round difference between ``P_basic`` /
``P_min`` and ``P_opt``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..api import Executor, StoreLike, Sweep
from ..protocols.base import ActionProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..simulation.runner import Scenario
from ..workloads.scenarios import random_scenarios, silent_fault_sweep


@dataclass(frozen=True)
class GapMeasurement:
    """Decision-round gap of one limited-information protocol versus ``P_opt``."""

    protocol: str
    n: int
    t: int
    runs: int
    agents_compared: int
    mean_gap: float
    max_gap: int
    fraction_equal: float

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "runs": self.runs,
            "agents compared": self.agents_compared,
            "mean extra rounds vs P_opt": round(self.mean_gap, 3),
            "max extra rounds": self.max_gap,
            "fraction no slower": round(self.fraction_equal, 3),
        }


def measure_gap(n: int, t: int, scenarios: Sequence[Scenario],
                protocols: Optional[Sequence[ActionProtocol]] = None,
                executor: Optional[Executor] = None,
                store: StoreLike = None) -> List[GapMeasurement]:
    """Per-agent decision-round gap between each limited protocol and ``P_opt``."""
    if protocols is None:
        protocols = [BasicProtocol(t), MinProtocol(t)]
    reference = OptimalFipProtocol(t)
    results = Sweep.of(reference, *protocols).on(scenarios, n=n).run(executor, store=store)
    gaps: Dict[str, List[int]] = {protocol.name: [] for protocol in protocols}
    run_count = len(results)
    for index in range(len(results)):
        traces = results.corresponding(index)
        reference_trace = traces[reference.name]
        pattern = reference_trace.pattern
        for protocol in protocols:
            trace = traces[protocol.name]
            for agent in sorted(pattern.nonfaulty):
                reference_round = reference_trace.decision_round(agent)
                other_round = trace.decision_round(agent)
                if reference_round is None or other_round is None:
                    continue
                gaps[protocol.name].append(other_round - reference_round)
    measurements: List[GapMeasurement] = []
    for protocol in protocols:
        values = gaps[protocol.name]
        measurements.append(GapMeasurement(
            protocol=protocol.name,
            n=n,
            t=t,
            runs=run_count,
            agents_compared=len(values),
            mean_gap=statistics.fmean(values) if values else 0.0,
            max_gap=max(values) if values else 0,
            fraction_equal=(sum(1 for v in values if v <= 0) / len(values)) if values else 1.0,
        ))
    return measurements


def random_gap_study(n: int = 6, t: int = 2, count: int = 25, seed: int = 11,
                     omission_probability: float = 0.4,
                     executor: Optional[Executor] = None,
                     store: StoreLike = None) -> List[GapMeasurement]:
    """The gap over random omission adversaries (the "typical" case of the conjecture)."""
    scenarios = random_scenarios(n, t, count=count, seed=seed,
                                 omission_probability=omission_probability)
    return measure_gap(n, t, scenarios, executor=executor, store=store)


def worst_case_gap_study(n: int = 8, t: int = 3,
                         executor: Optional[Executor] = None,
                         store: StoreLike = None) -> List[GapMeasurement]:
    """The gap over the silent-faulty sweep (the case Example 7.1 highlights)."""
    scenarios = [scenario for _, scenario in silent_fault_sweep(n, t)]
    return measure_gap(n, t, scenarios, executor=executor, store=store)


def report(n: int = 6, t: int = 2, count: int = 25, seed: int = 11,
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the FIP-gap study as two tables (random and worst-case workloads)."""
    random_rows = [m.as_row() for m in random_gap_study(n, t, count=count, seed=seed,
                                                        executor=executor, store=store)]
    worst_rows = [m.as_row() for m in worst_case_gap_study(n, t, executor=executor,
                                                           store=store)]
    table_random = format_table(
        random_rows, title=f"E8 — extra decision rounds vs P_opt, random SO({t}) adversaries (n={n})")
    table_worst = format_table(
        worst_rows, title=f"E8 — extra decision rounds vs P_opt, silent-faulty sweep (n={n}, t={t})")
    notes = [
        "",
        "Paper (Section 8): for failure-free runs P_basic matches the FIP; the conjecture is",
        "that with failures P_basic is usually not much worse — the random-adversary table",
        "quantifies 'usually', and the silent-faulty sweep shows the worst case.",
    ]
    return table_random + "\n\n" + table_worst + "\n" + "\n".join(notes)
