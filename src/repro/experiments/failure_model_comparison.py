"""Experiment E12 — the paper's protocols across failure models (SO / RO / GO).

The paper's optimality results (Theorems 6.5 / 6.6) are proved over the
sending-omissions model ``SO(t)`` of Section 3.  The failure-model registry
(:mod:`repro.failures.models`) makes the whole pipeline parametric over the
model family, so this experiment asks the natural follow-up questions for the
receive-omission model ``RO(t)`` and the general-omission model ``GO(t)``:

1. **Behaviour** — sweep ``P_min`` / ``P_basic`` / ``P_opt`` over a workload of
   random and named adversaries of each model and report, per (model,
   protocol): Agreement/Validity/Termination violations and the worst/mean
   decision round among nonfaulty agents.
2. **Theorems** — re-run the Theorem 6.5 / 6.6 implementation checks with the
   model checker, swapping the context's failure model, and report whether the
   claims survive or where the counterexamples are.

Observed at ``n = 3, t = 1`` (and encoded in the tests): Theorem 6.5 survives
both new models — ``P_min`` still implements ``P0`` — but Theorem 6.6 does
*not*: under ``RO(1)`` and ``GO(1)`` the basic exchange gives agents enough
information that ``P0`` prescribes deciding strictly earlier than ``P_basic``
does, so ``P_basic`` stops being an implementation (it noops where the
knowledge-based program prescribes ``decide(1)``).  Intuitively: under receive
omissions an agent that fails to hear from someone learns that *it* is the
faulty one — ``SO(t)``'s ambiguity about who dropped the message disappears,
and with it the extra waiting ``P_basic`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import Executor, StoreLike, Sweep
from ..failures.models import FailureModel, make_model, model_class
from ..kbp.implementation import check_implements
from ..kbp.programs import make_p0
from ..protocols.base import ActionProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..simulation.runner import Scenario
from ..spec.eba import check_agreement, check_termination, check_validity
from ..systems.contexts import gamma_basic, gamma_min
from ..workloads.scenarios import (
    mixed_chain_scenario,
    partition_scenario,
    random_model_scenarios,
    silent_receiver_scenario,
)
from .crash_comparison import crash_workload

#: The models this experiment compares by default (canonical registry names).
DEFAULT_MODELS: Tuple[str, ...] = (
    "sending-omission",
    "receive-omission",
    "general-omission",
)


@dataclass(frozen=True)
class ModelBehaviourRow:
    """Spec conformance and decision timing of one protocol under one failure model."""

    model: str
    protocol: str
    n: int
    t: int
    runs: int
    agreement_violations: int
    validity_violations: int
    termination_violations: int
    worst_decision_round: int

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "runs": self.runs,
            "agreement": self.agreement_violations,
            "validity": self.validity_violations,
            "termination": self.termination_violations,
            "worst decision round": self.worst_decision_round,
        }


@dataclass(frozen=True)
class TheoremCheckRow:
    """One implementation-theorem check under one failure model."""

    model: str
    claim: str
    context: str
    n: int
    t: int
    states_checked: int
    holds: bool
    mismatches: int

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "claim": self.claim,
            "context": self.context,
            "n": self.n,
            "t": self.t,
            "states checked": self.states_checked,
            "holds": self.holds,
            "counterexamples": self.mismatches,
        }


def model_workload(model: "FailureModel | str", n: int, t: int,
                   count: int = 12, seed: int = 23,
                   horizon: Optional[int] = None) -> List[Scenario]:
    """Random adversaries of the model plus its named worst cases.

    Every model gets ``count`` seeded random scenarios; on top of that the
    model's characteristic adversaries are appended — deaf agents for
    ``RO(t)``, the partition and the mixed send/receive chain for ``GO(t)``,
    the crash staircase for ``crash`` (all with exactly ``t`` faulty agents,
    so they stay admissible).
    """
    if isinstance(model, str):
        model = make_model(model, n, t)
    if horizon is None:
        horizon = t + 3
    kwargs = {"omission_probability": 0.4} if model.samples_per_edge else {}
    scenarios = random_model_scenarios(n, t, count, model=model, seed=seed,
                                       horizon=horizon, **kwargs)
    cls = type(model)
    if cls is model_class("receive-omission"):
        scenarios.append(silent_receiver_scenario(n, t, horizon=horizon))
    elif cls is model_class("general-omission"):
        scenarios.append(partition_scenario(n, t, horizon=horizon))
        scenarios.append(mixed_chain_scenario(n, t, horizon=horizon))
    elif cls is model_class("crash"):
        scenarios.extend(crash_workload(n, t, count=0, seed=seed, horizon=horizon))
    return scenarios


def measure_behaviour(n: int = 4, t: int = 1,
                      models: Sequence["FailureModel | str"] = DEFAULT_MODELS,
                      count: int = 12, seed: int = 23,
                      protocols: Optional[Sequence[ActionProtocol]] = None,
                      executor: Optional[Executor] = None,
                      store: StoreLike = None) -> List[ModelBehaviourRow]:
    """Sweep the protocols over each model's workload and score the EBA clauses.

    Runs are simulated for a fixed ``t + 4`` rounds so that a protocol that
    fails to decide under an unfamiliar model shows up as a Termination
    violation instead of hanging the sweep.
    """
    if protocols is None:
        protocols = [MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)]
    rows: List[ModelBehaviourRow] = []
    for model in models:
        resolved = make_model(model, n, t) if isinstance(model, str) else model
        scenarios = model_workload(resolved, n, t, count=count, seed=seed)
        results = (Sweep.of(*protocols).on(scenarios, n=n)
                   .with_horizon(t + 4).run(executor, store=store))
        for protocol in protocols:
            traces = results[protocol.name]
            agreement = validity = termination = 0
            worst = 0
            for trace in traces:
                # The spec checkers return lists of violation messages.
                if check_agreement(trace):
                    agreement += 1
                if check_validity(trace):
                    validity += 1
                if check_termination(trace, deadline=t + 2):
                    termination += 1
                last = trace.last_decision_round(nonfaulty_only=True)
                if last is not None:
                    worst = max(worst, last)
            rows.append(ModelBehaviourRow(
                model=resolved.name,
                protocol=protocol.name,
                n=n,
                t=t,
                runs=len(scenarios),
                agreement_violations=agreement,
                validity_violations=validity,
                termination_violations=termination,
                worst_decision_round=worst,
            ))
    return rows


def check_theorems(model: "FailureModel | str", n: int = 3, t: int = 1,
                   executor: Optional[Executor] = None,
                   store: StoreLike = None) -> List[TheoremCheckRow]:
    """Run the Theorem 6.5 / 6.6 implementation checks with the given failure model.

    Each check enumerates the full system of the (model-swapped) context with
    the bitset model checker and compares the concrete protocol against
    ``P0`` at every reachable local state; a failed check reports the number
    of counterexample states.
    """
    if isinstance(model, str):
        model = make_model(model, n, t)
    elif model.n != n or model.t != t:
        # The behaviour sweep and the theorem checks run at different sizes;
        # re-instantiate the caller's model at the theorem-check (n, t).
        cls = type(model)
        model = cls(n) if cls is model_class("failure-free") else cls(n=n, t=t)
    model_name = model.name
    rows: List[TheoremCheckRow] = []
    for claim, protocol, gamma, context_name in (
        ("Theorem 6.5: P_min implements P0", MinProtocol(t), gamma_min, "gamma_min"),
        ("Theorem 6.6: P_basic implements P0", BasicProtocol(t), gamma_basic, "gamma_basic"),
    ):
        context = gamma(n, t, failure_model=model)
        report = check_implements(protocol, make_p0(n), context, executor=executor,
                                  store=store)
        rows.append(TheoremCheckRow(
            model=model_name,
            claim=claim,
            context=context_name,
            n=n,
            t=t,
            states_checked=report.checked_states,
            holds=report.ok,
            mismatches=len(report.mismatches),
        ))
    return rows


def measure(n: int = 4, t: int = 1,
            models: Sequence["FailureModel | str"] = DEFAULT_MODELS,
            count: int = 12, seed: int = 23,
            include_theorems: bool = True,
            theorem_n: int = 3, theorem_t: int = 1,
            executor: Optional[Executor] = None,
            store: StoreLike = None,
            ) -> Tuple[List[ModelBehaviourRow], List[TheoremCheckRow]]:
    """The full E12 comparison: behaviour sweep plus per-model theorem checks."""
    behaviour = measure_behaviour(n, t, models=models, count=count, seed=seed,
                                  executor=executor, store=store)
    theorems: List[TheoremCheckRow] = []
    if include_theorems:
        for model in models:
            theorems.extend(check_theorems(model, n=theorem_n, t=theorem_t,
                                           executor=executor, store=store))
    return behaviour, theorems


def report(n: int = 4, t: int = 1,
           models: Sequence["FailureModel | str"] = DEFAULT_MODELS,
           count: int = 12, seed: int = 23,
           include_theorems: bool = True,
           theorem_n: int = 3, theorem_t: int = 1,
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the failure-model comparison as tables."""
    behaviour, theorems = measure(n=n, t=t, models=models, count=count, seed=seed,
                                  include_theorems=include_theorems,
                                  theorem_n=theorem_n, theorem_t=theorem_t,
                                  executor=executor, store=store)
    parts = [format_table(
        [row.as_row() for row in behaviour],
        title=f"E12 — protocol behaviour per failure model (n={n}, t={t})",
    )]
    if theorems:
        parts.append("")
        parts.append(format_table(
            [row.as_row() for row in theorems],
            title=("E12 — Theorem 6.5 / 6.6 implementation checks per model "
                   f"(n={theorem_n}, t={theorem_t})"),
        ))
        parts.extend([
            "",
            "The paper proves Theorems 6.5/6.6 for the sending-omissions model SO(t);",
            "swapping the context's failure model shows which halves are SO-specific.",
        ])
        broken = [row for row in theorems if not row.holds]
        if broken:
            for row in broken:
                parts.append(f"Under {row.model} the check '{row.claim}' fails with "
                             f"{row.mismatches} counterexample state(s).")
            parts.extend([
                "At those states the knowledge-based program decides strictly earlier",
                "than the concrete protocol (a missed message incriminates the faulty",
                "*receiver*, removing the ambiguity the SO-calibrated rule waits out).",
            ])
        else:
            parts.append("Every checked claim holds under the compared models.")
    return "\n".join(parts)
