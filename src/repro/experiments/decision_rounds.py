"""Experiment E2 — failure-free decision rounds (Proposition 8.2).

Proposition 8.2: in a failure-free run,

(a) if at least one agent prefers 0, all agents decide by round 2 with
    ``P_min``, ``P_basic``, and the FIP;
(b) if every agent prefers 1, all agents decide by round ``t + 2`` with
    ``P_min`` and by round 2 with ``P_basic`` and the FIP.

The experiment simulates the failure-free scenarios for a sweep of ``(n, t)``
and records the round by which the *last* agent decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import Executor, StoreLike, Sweep
from ..protocols.base import ActionProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..workloads.scenarios import failure_free_scenarios


@dataclass(frozen=True)
class DecisionRoundMeasurement:
    """Last decision round of one protocol on one failure-free scenario."""

    protocol: str
    n: int
    t: int
    scenario: str
    last_decision_round: int
    decided_value: int
    paper_round: int
    matches_paper: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "scenario": self.scenario,
            "all decided by round": self.last_decision_round,
            "value": self.decided_value,
            "paper round": self.paper_round,
            "matches": self.matches_paper,
        }


def paper_decision_round(protocol_name: str, t: int, scenario: str) -> int:
    """The exact round implied by Proposition 8.2 for the given protocol and scenario.

    Proposition 8.2 states "by round 2" / "by round ``t + 2``" bounds; for the
    deterministic failure-free scenarios used here the bounds are attained
    exactly, except in the all-zeros run where every agent already decides in
    round 1 (still within the paper's bound).
    """
    if scenario == "all agents prefer 0":
        return 1
    if scenario == "all agents prefer 1" and protocol_name == "P_min":
        return t + 2
    return 2


def measure_decision_rounds(n: int, t: int,
                            protocols: Optional[Sequence[ActionProtocol]] = None,
                            executor: Optional[Executor] = None,
                            store: StoreLike = None,
                            ) -> List[DecisionRoundMeasurement]:
    """Run the failure-free scenarios and record when the last agent decides."""
    if protocols is None:
        protocols = [MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)]
    labelled = failure_free_scenarios(n)
    results = Sweep.of(*protocols).on([scenario for _, scenario in labelled], n=n).run(executor, store=store)
    measurements: List[DecisionRoundMeasurement] = []
    for index, (label, _scenario) in enumerate(labelled):
        for protocol in protocols:
            trace = results.trace(protocol.name, index)
            last_round = trace.last_decision_round()
            value = trace.decision_value(0)
            expected = paper_decision_round(protocol.name, t, label)
            measurements.append(DecisionRoundMeasurement(
                protocol=protocol.name,
                n=n,
                t=t,
                scenario=label,
                last_decision_round=last_round if last_round is not None else -1,
                decided_value=value if value is not None else -1,
                paper_round=expected,
                matches_paper=last_round == expected,
            ))
    return measurements


def sweep_decision_rounds(settings: Sequence[Tuple[int, int]],
                          executor: Optional[Executor] = None,
                          store: StoreLike = None,
                          ) -> List[DecisionRoundMeasurement]:
    """Measure failure-free decision rounds for several ``(n, t)`` settings."""
    results: List[DecisionRoundMeasurement] = []
    for n, t in settings:
        results.extend(measure_decision_rounds(n, t, executor=executor, store=store))
    return results


def report(settings: Sequence[Tuple[int, int]] = ((5, 1), (8, 3), (12, 4)),
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the Proposition 8.2 comparison as a table."""
    measurements = sweep_decision_rounds(settings, executor=executor, store=store)
    return format_table(
        [m.as_row() for m in measurements],
        title="E2 / Proposition 8.2 — failure-free decision rounds",
    )
