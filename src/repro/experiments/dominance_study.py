"""Experiment E4 — dominance relations between the implemented protocols.

Corollary 6.7 and Corollary 7.8 state that ``P_min``, ``P_basic``, and the
full-information protocol are *optimal* with respect to their own contexts: no
EBA protocol (for the same information exchange) strictly dominates them.
Optimality quantifies over all protocols, which only the proofs can cover; the
empirically checkable consequences exercised here are:

* no protocol in our library strictly dominates ``P_min``, ``P_basic``, or
  ``P_opt`` over any workload of corresponding runs;
* ``P_min`` strictly dominates the deliberately weakened ``P_min_delayed``
  baseline (so the comparison machinery can tell protocols apart);
* the cross-exchange comparison of Section 8: the full-information protocol is
  never later than ``P_basic`` or ``P_min``, and is strictly earlier exactly in
  the heavy-failure scenarios of Example 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.dominance import DominanceResult
from ..api import Executor, StoreLike, Sweep
from ..protocols.base import ActionProtocol
from ..protocols.baselines import DelayedMinProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..simulation.runner import Scenario
from ..workloads.scenarios import example_7_1, failure_free_scenarios, random_scenarios


@dataclass(frozen=True)
class DominanceRow:
    """A rendered pairwise dominance verdict."""

    first: str
    second: str
    scenarios: int
    verdict: str
    first_strictly_earlier: int
    second_strictly_earlier: int

    def as_row(self) -> Dict[str, object]:
        return {
            "first": self.first,
            "second": self.second,
            "scenarios": self.scenarios,
            "verdict": self.verdict,
            "#first earlier": self.first_strictly_earlier,
            "#second earlier": self.second_strictly_earlier,
        }


def default_workload(n: int, t: int, random_count: int = 20, seed: int = 7) -> List[Scenario]:
    """The mixed workload used by the dominance study.

    Failure-free runs, the Example 7.1 scenario, and a batch of random
    ``SO(t)`` adversaries with random preferences.
    """
    scenarios: List[Scenario] = [scenario for _, scenario in failure_free_scenarios(n)]
    scenarios.append(example_7_1(n=n, t=t))
    scenarios.extend(random_scenarios(n, t, count=random_count, seed=seed))
    return scenarios


def study(n: int = 6, t: int = 2, random_count: int = 20, seed: int = 7,
          protocols: Optional[Sequence[ActionProtocol]] = None,
          executor: Optional[Executor] = None,
          store: StoreLike = None) -> Dict[Tuple[str, str], DominanceResult]:
    """Run the pairwise dominance comparison over the default workload."""
    if protocols is None:
        protocols = [
            OptimalFipProtocol(t),
            BasicProtocol(t),
            MinProtocol(t),
            DelayedMinProtocol(t, delay=2),
        ]
    workload = default_workload(n, t, random_count=random_count, seed=seed)
    return Sweep.of(*protocols).on(workload, n=n).with_seed(seed).run(
        executor, store=store).pairwise()


def _verdict(result: DominanceResult) -> str:
    if result.equivalent:
        return "identical decision times"
    if result.first_strictly_dominates:
        return f"{result.first_name} strictly dominates"
    if result.second_strictly_dominates:
        return f"{result.second_name} strictly dominates"
    return "incomparable"


def rows_from_results(results: Dict[Tuple[str, str], DominanceResult]) -> List[DominanceRow]:
    """Flatten pairwise results into table rows."""
    rows: List[DominanceRow] = []
    for (first, second), result in results.items():
        rows.append(DominanceRow(
            first=first,
            second=second,
            scenarios=result.scenarios,
            verdict=_verdict(result),
            first_strictly_earlier=result.first_strictly_earlier,
            second_strictly_earlier=result.second_strictly_earlier,
        ))
    return rows


def report(n: int = 6, t: int = 2, random_count: int = 20, seed: int = 7,
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the dominance study as a table."""
    results = study(n=n, t=t, random_count=random_count, seed=seed, executor=executor,
                    store=store)
    table = format_table(
        [row.as_row() for row in rows_from_results(results)],
        title=f"E4 — pairwise dominance over corresponding runs (n={n}, t={t})",
    )
    notes = [
        "",
        "Paper (Corollaries 6.7, 7.8): P_min, P_basic, and the FIP are optimal for their",
        "own information exchanges, so nothing should strictly dominate them; the",
        "delayed baseline exists to show a strict domination the machinery can detect.",
    ]
    return table + "\n" + "\n".join(notes)
