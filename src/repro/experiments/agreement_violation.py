"""Experiment E6 — the introduction's counterexample to naive 0-biased protocols.

The paper's introduction argues that, under sending-omission failures, no EBA
protocol can decide 0 as soon as it merely *hears about* a 0: a faulty agent
with initial preference 0 can stay silent until the round in which the
remaining agents must decide 1 and then reveal its preference to a single
agent, which splits the nonfaulty decisions.  The fix is to decide 0 only on a
*0-chain* — which is exactly what ``P_min`` / ``P_basic`` / ``P_opt`` do.

The experiment runs the counterexample scenario against the naive 0-biased
baseline (which must violate Agreement) and against the paper's protocols
(which must not), for a sweep of system sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import Executor, StoreLike, Sweep
from ..protocols.base import ActionProtocol
from ..protocols.baselines import NaiveZeroBiasedProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..workloads.scenarios import intro_counterexample


@dataclass(frozen=True)
class AgreementMeasurement:
    """Outcome of one protocol on the introduction's counterexample scenario."""

    protocol: str
    n: int
    t: int
    agreement_holds: bool
    nonfaulty_values: Tuple[int, ...]
    expected_to_break: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "agreement holds": self.agreement_holds,
            "nonfaulty decisions": "/".join(str(v) for v in self.nonfaulty_values),
            "paper expectation": "violates Agreement" if self.expected_to_break else "satisfies EBA",
        }


def measure_agreement(n: int = 4, t: int = 1,
                      protocols: Optional[Sequence[ActionProtocol]] = None,
                      executor: Optional[Executor] = None,
                      store: StoreLike = None) -> List[AgreementMeasurement]:
    """Run the counterexample scenario against the naive baseline and the paper's protocols."""
    if protocols is None:
        protocols = [NaiveZeroBiasedProtocol(t), MinProtocol(t), BasicProtocol(t),
                     OptimalFipProtocol(t)]
    results = Sweep.of(*protocols).on([intro_counterexample(n=n, t=t)], n=n).run(executor, store=store)
    reports = results.check_eba()
    measurements: List[AgreementMeasurement] = []
    for protocol in protocols:
        trace = results.trace(protocol.name)
        report_ = reports[protocol.name][0]
        values = tuple(
            trace.decision_value(agent) for agent in sorted(trace.nonfaulty)
            if trace.decision_value(agent) is not None
        )
        measurements.append(AgreementMeasurement(
            protocol=protocol.name,
            n=n,
            t=t,
            agreement_holds=not report_.agreement,
            nonfaulty_values=values,
            expected_to_break=isinstance(protocol, NaiveZeroBiasedProtocol),
        ))
    return measurements


def sweep(sizes: Sequence[Tuple[int, int]] = ((3, 1), (4, 1), (6, 2), (8, 3)),
          executor: Optional[Executor] = None,
          store: StoreLike = None) -> List[AgreementMeasurement]:
    """Run the counterexample across several system sizes."""
    results: List[AgreementMeasurement] = []
    for n, t in sizes:
        results.extend(measure_agreement(n=n, t=t, executor=executor, store=store))
    return results


def report(sizes: Sequence[Tuple[int, int]] = ((3, 1), (4, 1), (6, 2)),
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the agreement-violation experiment as a table."""
    measurements = sweep(sizes, executor=executor, store=store)
    table = format_table(
        [m.as_row() for m in measurements],
        title="E6 — the introduction's counterexample: hear-about-0 vs 0-chains",
    )
    notes = [
        "",
        "Paper (introduction): deciding 0 upon hearing about a 0 cannot satisfy EBA under",
        "omission failures; deciding 0 only via a 0-chain (P_min / P_basic / P_opt) can.",
    ]
    return table + "\n" + "\n".join(notes)
