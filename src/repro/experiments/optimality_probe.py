"""Experiment E10 — probing optimality through one-step deviations (Corollary 6.7).

The paper proves that no EBA decision protocol for the same information
exchange strictly dominates ``P_min`` (in ``γ_min``) or ``P_basic`` (in
``γ_basic``).  Simulation cannot quantify over all protocols, but it can
exhaustively try every protocol at Hamming distance one from the candidate on
its reachable local states — flipping a single "wait" into an earlier decision
or a decision into the opposite value — and verify that each such deviation
either breaks the EBA specification or fails to dominate the original.

This covers, in particular, the "decide 1 before the deadline" and "decide 0 on
a rumour" speed-ups that the paper's counterexamples are built around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.optimality import OptimalityProbeReport, probe_optimality
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..reporting.tables import format_table
from ..systems.contexts import gamma_basic, gamma_min


@dataclass(frozen=True)
class ProbeRow:
    """Summary of one optimality probe."""

    protocol: str
    context: str
    n: int
    t: int
    scenarios: int
    deviations: int
    spec_breaking: int
    dominated_or_incomparable: int
    refuting: int

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "context": self.context,
            "n": self.n,
            "t": self.t,
            "scenarios": self.scenarios,
            "deviations tried": self.deviations,
            "break the spec": self.spec_breaking,
            "correct but not dominating": self.dominated_or_incomparable,
            "refute optimality": self.refuting,
        }


def summarize(report: OptimalityProbeReport, n: int, t: int) -> ProbeRow:
    """Collapse a probe report into one table row."""
    spec_breaking = sum(1 for outcome in report.outcomes if outcome.violates_spec)
    refuting = len(report.counterexamples())
    return ProbeRow(
        protocol=report.protocol_name,
        context=report.context_name,
        n=n,
        t=t,
        scenarios=report.scenarios,
        deviations=report.deviations_tried,
        spec_breaking=spec_breaking,
        dominated_or_incomparable=report.deviations_tried - spec_breaking - refuting,
        refuting=refuting,
    )


def probe_pmin(n: int = 3, t: int = 1,
               max_deviations: Optional[int] = None) -> OptimalityProbeReport:
    """Probe ``P_min`` in the exhaustively enumerated ``γ_min(n, t)``."""
    return probe_optimality(MinProtocol(t), gamma_min(n, t), max_deviations=max_deviations)


def probe_pbasic(n: int = 3, t: int = 1,
                 max_deviations: Optional[int] = None) -> OptimalityProbeReport:
    """Probe ``P_basic`` in the exhaustively enumerated ``γ_basic(n, t)``."""
    return probe_optimality(BasicProtocol(t), gamma_basic(n, t), max_deviations=max_deviations)


def measure(n: int = 3, t: int = 1) -> List[ProbeRow]:
    """Run both probes and summarize."""
    return [
        summarize(probe_pmin(n, t), n, t),
        summarize(probe_pbasic(n, t), n, t),
    ]


def report(n: int = 3, t: int = 1, executor=None, store=None) -> str:
    """Render the optimality probe as a table.

    ``executor`` and ``store`` are accepted for CLI uniformity with the
    sweep-shaped experiments but unused: the probe enumerates one-step
    deviations over an exhaustively built context in-process, and every
    deviation is a distinct throwaway protocol, so there is nothing reusable
    to cache.
    """
    del executor, store
    rows = measure(n, t)
    table = format_table(
        [row.as_row() for row in rows],
        title=f"E10 — one-step deviation probe of optimality (n={n}, t={t}, exhaustive SO({t}))",
    )
    notes = [
        "",
        "Paper (Corollary 6.7): P_min and P_basic are optimal for their exchanges.  Every",
        "one-step speed-up of their decision tables must therefore either violate EBA on",
        "some run or fail to dominate the original protocol; 'refute optimality' must be 0.",
    ]
    return table + "\n" + "\n".join(notes)
