"""Experiment E3 — Example 7.1: the full-information advantage under heavy failures.

The paper's Example 7.1: ``n = 20``, ``t = 10``, agents 1–10 are faulty and
never send a message, and every agent prefers 1.  With ``P_min`` or ``P_basic``
the nonfaulty agents cannot rule out a hidden 0-chain and wait until round
``t + 2 = 12``; with the full-information protocol it becomes common knowledge
after two rounds who the faulty agents are, so everyone decides 1 in round 3.

The experiment reproduces the example at its original size (``n=20, t=10``;
this is slow in pure Python because every full-information message carries an
``O(n² t)``-label graph) and at scaled-down sizes that keep the same shape,
and sweeps the number of silent faulty agents: the common-knowledge rule only
fires once all ``t`` faulty agents have exposed themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..api import Executor, StoreLike, Sweep
from ..protocols.base import ActionProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..simulation.trace import RunTrace
from ..workloads.scenarios import example_7_1, silent_fault_sweep


@dataclass(frozen=True)
class ExampleMeasurement:
    """Decision timing of one protocol on an Example 7.1-style scenario."""

    protocol: str
    n: int
    t: int
    silent_faulty: int
    nonfaulty_decide_by_round: int
    decided_value: int
    paper_round: Optional[int]

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "silent faulty": self.silent_faulty,
            "nonfaulty decide by": self.nonfaulty_decide_by_round,
            "value": self.decided_value,
            "paper round": self.paper_round,
        }


def paper_round_for(protocol_name: str, t: int, silent_faulty: int) -> Optional[int]:
    """The paper's prediction for the last nonfaulty decision round.

    Example 7.1 covers the case ``silent_faulty = t``: round 3 for the FIP,
    ``t + 2`` for ``P_min`` and ``P_basic``.  ``P_min`` also waits ``t + 2``
    rounds for any smaller number of silent agents (no 0-chain ever appears, so
    its deadline is the only exit).  For the other protocols with fewer silent
    agents the paper makes no claim, so the prediction is ``None``: ``P_basic``
    decides once enough ``(init, 1)`` heartbeats arrive, and the FIP decides as
    soon as it can rule out a hidden 0-chain.
    """
    if protocol_name == "P_min":
        return t + 2
    if silent_faulty == t:
        return t + 2 if protocol_name == "P_basic" else 3
    return None


def _measurement(trace: RunTrace, n: int, t: int, silent: int) -> ExampleMeasurement:
    """Summarise one trace as an :class:`ExampleMeasurement`."""
    last = trace.last_decision_round(nonfaulty_only=True)
    values = {trace.decision_value(agent) for agent in trace.nonfaulty}
    return ExampleMeasurement(
        protocol=trace.protocol_name,
        n=n,
        t=t,
        silent_faulty=silent,
        nonfaulty_decide_by_round=last if last is not None else -1,
        decided_value=values.pop() if len(values) == 1 else -1,
        paper_round=paper_round_for(trace.protocol_name, t, silent),
    )


def measure_example(n: int = 20, t: int = 10,
                    protocols: Optional[Sequence[ActionProtocol]] = None,
                    executor: Optional[Executor] = None,
                    store: StoreLike = None) -> List[ExampleMeasurement]:
    """Reproduce Example 7.1 for the given system size."""
    if protocols is None:
        protocols = [MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)]
    results = Sweep.of(*protocols).on([example_7_1(n=n, t=t)], n=n).run(executor, store=store)
    return [_measurement(results.trace(protocol.name), n, t, silent=t)
            for protocol in protocols]


def sweep_silent_faulty(n: int, t: int,
                        protocols: Optional[Sequence[ActionProtocol]] = None,
                        executor: Optional[Executor] = None,
                        store: StoreLike = None) -> List[ExampleMeasurement]:
    """Vary the number of silent faulty agents from 0 to ``t`` (all preferences 1)."""
    if protocols is None:
        protocols = [MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)]
    labelled = silent_fault_sweep(n, t)
    results = Sweep.of(*protocols).on([scenario for _, scenario in labelled], n=n).run(executor, store=store)
    return [
        _measurement(results.trace(protocol.name, index), n, t, silent=silent)
        for index, (silent, _scenario) in enumerate(labelled)
        for protocol in protocols
    ]


def report(n: int = 10, t: int = 5, include_sweep: bool = True,
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the Example 7.1 reproduction (scaled size by default) as tables."""
    main = format_table(
        [m.as_row() for m in measure_example(n=n, t=t, executor=executor, store=store)],
        title=f"E3 / Example 7.1 — {t} silent faulty agents, all prefer 1 (n={n}, t={t})",
    )
    if not include_sweep:
        return main
    sweep = format_table(
        [m.as_row() for m in sweep_silent_faulty(n, t, executor=executor, store=store)],
        title=f"E3 sweep — varying the number of silent faulty agents (n={n}, t={t})",
    )
    return main + "\n\n" + sweep
