"""Experiment E7 — implementation theorems checked by explicit model checking.

Theorem 6.5: ``P_min`` implements the knowledge-based program ``P0`` in the
context ``γ_min,n,t`` (for ``t ≤ n - 2``).  Theorem 6.6: ``P_basic`` implements
``P0`` in ``γ_basic,n,t``.  Section 7 additionally observes that ``P1`` is
equivalent to ``P0`` in those limited-information contexts (agents never learn
who is faulty, so the common-knowledge clauses never fire).

For small systems we can *verify* these statements directly: enumerate every
run of the context (all ``SO(t)`` failure patterns and all preference vectors
up to the horizon ``t + 2``), evaluate the knowledge-based program's guards
with the model checker, and compare its prescriptions with the concrete
protocol's actions at every reachable local state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..kbp.implementation import ImplementationReport, check_implements, programs_equivalent
from ..kbp.programs import make_p0, make_p1
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..systems.contexts import gamma_basic, gamma_fip, gamma_min


@dataclass(frozen=True)
class ImplementationMeasurement:
    """One implementation-check result."""

    claim: str
    context: str
    n: int
    t: int
    states_checked: int
    holds: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "claim": self.claim,
            "context": self.context,
            "n": self.n,
            "t": self.t,
            "states checked": self.states_checked,
            "holds": self.holds,
        }


def check_theorem_6_5(n: int = 3, t: int = 1,
                      max_faulty_enumerated: Optional[int] = None,
                      executor=None, store=None) -> ImplementationReport:
    """Theorem 6.5: ``P_min`` implements ``P0`` in ``γ_min,n,t``."""
    context = gamma_min(n, t, max_faulty_enumerated=max_faulty_enumerated)
    return check_implements(MinProtocol(t), make_p0(n), context, executor=executor,
                            store=store)


def check_theorem_6_6(n: int = 3, t: int = 1,
                      max_faulty_enumerated: Optional[int] = None,
                      executor=None, store=None) -> ImplementationReport:
    """Theorem 6.6: ``P_basic`` implements ``P0`` in ``γ_basic,n,t``."""
    context = gamma_basic(n, t, max_faulty_enumerated=max_faulty_enumerated)
    return check_implements(BasicProtocol(t), make_p0(n), context, executor=executor,
                            store=store)


def check_theorem_a21(n: int = 3, t: int = 1,
                      max_faulty_enumerated: Optional[int] = None,
                      executor=None, store=None) -> ImplementationReport:
    """Theorem A.21 / Proposition 7.9: ``P_opt`` implements ``P1`` in ``γ_fip,n,t``.

    This is the paper's polynomial-time-implementation claim checked against the
    knowledge-based program itself: the concrete communication-graph tests
    (``common_v`` / ``cond0`` / ``cond1``) must agree with the model-checked
    knowledge and common-knowledge conditions at every reachable local state.
    """
    context = gamma_fip(n, t, max_faulty_enumerated=max_faulty_enumerated)
    return check_implements(OptimalFipProtocol(t), make_p1(n, t), context, executor=executor,
                            store=store)


def check_p0_p1_equivalence(n: int = 3, t: int = 1, executor=None,
                            store=None) -> Dict[str, bool]:
    """Section 7: ``P0`` and ``P1`` prescribe the same actions in the limited contexts."""
    results: Dict[str, bool] = {}
    system_min = gamma_min(n, t).build_system(MinProtocol(t), executor=executor, store=store)
    results["gamma_min"] = programs_equivalent(make_p0(n), make_p1(n, t), system_min)
    system_basic = gamma_basic(n, t).build_system(BasicProtocol(t), executor=executor,
                                                  store=store)
    results["gamma_basic"] = programs_equivalent(make_p0(n), make_p1(n, t), system_basic)
    return results


def measure(n: int = 3, t: int = 1, include_equivalence: bool = True,
            include_fip: bool = True, executor=None,
            store=None) -> List[ImplementationMeasurement]:
    """Run every implementation check at the given system size."""
    measurements: List[ImplementationMeasurement] = []
    if include_fip:
        report_fip = check_theorem_a21(n, t, executor=executor, store=store)
        measurements.append(ImplementationMeasurement(
            claim="Theorem A.21: P_opt implements P1",
            context="gamma_fip",
            n=n,
            t=t,
            states_checked=report_fip.checked_states,
            holds=report_fip.ok,
        ))
    report_min = check_theorem_6_5(n, t, executor=executor, store=store)
    measurements.append(ImplementationMeasurement(
        claim="Theorem 6.5: P_min implements P0",
        context="gamma_min",
        n=n,
        t=t,
        states_checked=report_min.checked_states,
        holds=report_min.ok,
    ))
    report_basic = check_theorem_6_6(n, t, executor=executor, store=store)
    measurements.append(ImplementationMeasurement(
        claim="Theorem 6.6: P_basic implements P0",
        context="gamma_basic",
        n=n,
        t=t,
        states_checked=report_basic.checked_states,
        holds=report_basic.ok,
    ))
    if include_equivalence:
        equivalences = check_p0_p1_equivalence(n, t, executor=executor, store=store)
        for context_name, holds in equivalences.items():
            measurements.append(ImplementationMeasurement(
                claim="Section 7: P1 ≡ P0",
                context=context_name,
                n=n,
                t=t,
                states_checked=0,
                holds=holds,
            ))
    return measurements


def report(n: int = 3, t: int = 1, executor=None, store=None) -> str:
    """Render the implementation checks as a table.

    ``executor`` (e.g. the CLI's ``--parallel --jobs N`` backend) parallelises
    the exhaustive run enumeration that builds each context's system; ``store``
    serves the system builds and the finished reports from the artifact cache
    (see :mod:`repro.store`).
    """
    measurements = measure(n, t, executor=executor, store=store)
    table = format_table(
        [m.as_row() for m in measurements],
        title=f"E7 — knowledge-based program implementation checks (n={n}, t={t})",
    )
    notes = [
        "",
        "The checks enumerate every run of the context (all SO(t) adversaries and all",
        "preference vectors up to horizon t + 2) and compare the protocol's action with",
        "the knowledge-based program's prescription at every reachable local state.",
    ]
    return table + "\n" + "\n".join(notes)
