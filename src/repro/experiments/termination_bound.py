"""Experiment E5 — the termination bound of Proposition 6.1.

Proposition 6.1: every implementation of ``P0`` terminates after at most
``t + 1`` rounds of message exchange — every agent decides by round ``t + 2``
— and Validity holds even for faulty agents.  ``P_opt`` (an implementation of
``P1``) satisfies the same bound (Proposition 7.3).

The experiment measures the worst (latest) decision round of each protocol over
an adversarial workload (exhaustive for small systems, randomized plus the
structured worst cases for larger ones) and checks the full EBA specification
on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import Executor, StoreLike, Sweep
from ..failures.models import SendingOmissionModel
from ..protocols.base import ActionProtocol
from ..protocols.pbasic import BasicProtocol
from ..protocols.pmin import MinProtocol
from ..protocols.popt import OptimalFipProtocol
from ..reporting.tables import format_table
from ..simulation.runner import Scenario
from ..workloads.preferences import enumerate_preferences
from ..workloads.scenarios import hidden_chain_scenario, random_scenarios


@dataclass(frozen=True)
class TerminationMeasurement:
    """Worst-case decision timing of one protocol over a workload."""

    protocol: str
    n: int
    t: int
    runs: int
    worst_decision_round: int
    paper_bound: int
    within_bound: bool
    spec_violations: int

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "runs": self.runs,
            "worst decision round": self.worst_decision_round,
            "paper bound (t+2)": self.paper_bound,
            "within bound": self.within_bound,
            "spec violations": self.spec_violations,
        }


def exhaustive_workload(n: int, t: int, horizon: Optional[int] = None) -> List[Scenario]:
    """Every (preference vector, SO(t) pattern) pair for a small system."""
    if horizon is None:
        horizon = t + 2
    model = SendingOmissionModel(n=n, t=t)
    scenarios: List[Scenario] = []
    for pattern in model.enumerate(horizon):
        for preferences in enumerate_preferences(n):
            scenarios.append((preferences, pattern))
    return scenarios


def symmetry_reduced_workload(n: int, t: int,
                              horizon: Optional[int] = None,
                              ) -> Tuple[List[Scenario], List[int]]:
    """The exhaustive ``SO(t)`` workload, reduced by agent-permutation symmetry.

    One scenario per (canonical pattern-orbit representative, preference
    vector), each annotated with its orbit size.  Because every preference
    vector is swept, each reduced scenario's run is an agent-relabelling of
    ``size`` full-enumeration runs, so *agent-symmetric* aggregates — run
    totals, specification-violation counts, worst decision rounds — computed
    with the returned weights match :func:`exhaustive_workload` exactly while
    simulating roughly ``1/n!`` of the runs (pass both to
    :func:`measure_termination`).
    """
    if horizon is None:
        horizon = t + 2
    model = SendingOmissionModel(n=n, t=t)
    scenarios: List[Scenario] = []
    weights: List[int] = []
    for orbit in model.enumerate_orbits(horizon):
        for preferences in enumerate_preferences(n):
            scenarios.append((preferences, orbit.representative))
            weights.append(orbit.size)
    return scenarios, weights


def adversarial_workload(n: int, t: int, random_count: int = 30, seed: int = 3) -> List[Scenario]:
    """Random ``SO(t)`` adversaries plus the structured hidden-chain worst cases."""
    scenarios = random_scenarios(n, t, count=random_count, seed=seed)
    for length in range(1, t + 1):
        scenarios.append(hidden_chain_scenario(n, chain_length=length))
    return scenarios


def measure_termination(n: int, t: int, scenarios: Sequence[Scenario],
                        protocols: Optional[Sequence[ActionProtocol]] = None,
                        executor: Optional[Executor] = None,
                        store: StoreLike = None,
                        weights: Optional[Sequence[int]] = None,
                        ) -> List[TerminationMeasurement]:
    """Worst decision round and specification violations of each protocol over ``scenarios``.

    ``weights`` (one multiplicity per scenario, from
    :func:`symmetry_reduced_workload`) makes the reported ``runs`` and
    ``spec_violations`` counts orbit-weighted, so a symmetry-reduced workload
    reports the exact counts of the full enumeration it stands for.
    """
    if protocols is None:
        protocols = [MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)]
    if weights is not None and len(weights) != len(scenarios):
        raise ValueError(f"{len(weights)} weights for {len(scenarios)} scenarios")
    results = Sweep.of(*protocols).on(scenarios, n=n).run(executor, store=store)
    reports = results.check_eba(deadline=t + 2, validity_for_faulty=True)
    total_runs = len(scenarios) if weights is None else sum(weights)
    measurements: List[TerminationMeasurement] = []
    for protocol in protocols:
        violations = 0
        for index, report in enumerate(reports[protocol.name]):
            if not report.ok:
                violations += 1 if weights is None else weights[index]
        worst = 0
        for trace in results[protocol.name]:
            last = trace.last_decision_round(nonfaulty_only=False)
            if last is not None:
                worst = max(worst, last)
        measurements.append(TerminationMeasurement(
            protocol=protocol.name,
            n=n,
            t=t,
            runs=total_runs,
            worst_decision_round=worst,
            paper_bound=t + 2,
            within_bound=worst <= t + 2,
            spec_violations=violations,
        ))
    return measurements


def report(n: int = 6, t: int = 2, random_count: int = 30, seed: int = 3,
           executor: Optional[Executor] = None,
           store: StoreLike = None) -> str:
    """Render the termination-bound experiment as a table."""
    scenarios = adversarial_workload(n, t, random_count=random_count, seed=seed)
    measurements = measure_termination(n, t, scenarios, executor=executor, store=store)
    table = format_table(
        [m.as_row() for m in measurements],
        title=f"E5 / Proposition 6.1 — worst-case decision round (n={n}, t={t})",
    )
    return table + "\n\nPaper: all agents decide by round t + 2 and every run satisfies EBA."
