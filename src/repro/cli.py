"""Command-line interface for the reproduction.

Two entry points matter in practice:

* ``repro-eba run`` — simulate a single scenario with one of the paper's
  protocols and print the round-by-round trace, decision timeline, and the EBA
  specification check;
* ``repro-eba experiment <id>`` — regenerate one of the paper's quantitative
  results (E1..E12) and print its table;
* ``repro-eba failure-models`` — compare the protocols (and the Theorem
  6.5/6.6 implementation checks) across the registered failure models
  (``SO(t)`` / ``RO(t)`` / ``GO(t)``);
* ``repro-eba cache`` — inspect (``stats``, optionally ``--json``; ``missing``
  for the resumable-state view), empty (``clear``), or pre-build (``warm``)
  the content-addressed artifact store that ``--cache`` / ``--cache-dir``
  switch on for the commands above;
* ``repro-eba serve`` / ``repro-eba submit`` — the job-server subsystem
  (:mod:`repro.service`): a long-running HTTP job API where concurrent
  identical submissions coalesce into one computation by content key, and a
  thin polling client.

Examples
--------
::

    repro-eba run --protocol opt --scenario example71 --n 10 --t 5
    repro-eba run --protocol min --n 5 --t 1 --preferences 0,1,1,1,1 --show-rounds
    repro-eba experiment e3 --n 12 --t 6
    repro-eba experiment e4 --n 8 --t 3 --parallel --jobs 4
    repro-eba experiment e7 --n 4 --t 1 --cache
    repro-eba cache warm --n 4 --t 1 && repro-eba cache stats --json
    repro-eba cache missing --n 4 --t 1
    repro-eba failure-models --model general-omission
    repro-eba failure-models --model receive-omission --skip-theorems
    repro-eba serve --port 8322 --workers 2 --cache
    repro-eba submit theorem --theorem 6.5 --n 3 --t 1 --wait
    repro-eba submit sweep --protocols min,basic,opt --n 4 --t 1 --count 8
    repro-eba list

Both commands execute through the :mod:`repro.api` orchestration layer;
``--parallel`` switches the sweep-shaped experiments to the process-pool
backend and parallelises the exhaustive system enumeration behind the
model-checking experiments (e7, e11).  ``--jobs N`` implies ``--parallel``
with ``N`` workers (``repro-eba experiment e4 --jobs 8`` runs on eight worker
processes; it used to fall back to a serial run silently).  ``--cache`` (optionally with
``--cache-dir PATH``) serves repeated runs, sweeps, system builds, and theorem
reports from the content-addressed artifact store (:mod:`repro.store`); the
two flags compose — cache misses still fan out over the process pool.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .api import Executor, RunSpec, executor_from_flags
from .core.errors import ReproError
from .experiments import (
    agreement_violation,
    crash_comparison,
    decision_rounds,
    dominance_study,
    example_7_1,
    failure_model_comparison,
    fip_gap,
    implementation_check,
    message_complexity,
    optimality_probe,
    safety_check,
    termination_bound,
)
from .failures.models import available_models
from .failures.pattern import FailurePattern
from .obs import trace as obs_trace
from .obs.bus import BUS
from .obs.logs import configure_logging
from .obs.metrics import REGISTRY, render_table
from .protocols.base import ActionProtocol
from .reporting.trace_view import render_decision_timeline, render_run
from .service.wire import PROTOCOL_FACTORIES, THEOREMS
from .spec.eba import check_eba
from .store import ArtifactStore, default_cache_dir, default_store
from .workloads import scenarios as scenario_lib

#: Protocol name -> constructor taking the failure bound t.  This *is* the
#: service wire format's protocol namespace (:mod:`repro.service.wire`), so a
#: name accepted by ``repro-eba run`` is accepted by ``repro-eba submit`` and
#: by any remote client, unchanged.
PROTOCOLS: Dict[str, Callable[[int], ActionProtocol]] = PROTOCOL_FACTORIES

#: Experiment id -> (description, report callable taking (n, t, executor, store)).
EXPERIMENTS: Dict[str, tuple] = {
    "e1": ("Proposition 8.1 — bits sent per failure-free run",
           lambda n, t, executor, store: message_complexity.report(
               settings=((n, t),), executor=executor, store=store)),
    "e2": ("Proposition 8.2 — failure-free decision rounds",
           lambda n, t, executor, store: decision_rounds.report(
               settings=((n, t),), executor=executor, store=store)),
    "e3": ("Example 7.1 — full-information advantage under silent failures",
           lambda n, t, executor, store: example_7_1.report(
               n=n, t=t, executor=executor, store=store)),
    "e4": ("Corollaries 6.7 / 7.8 — dominance over corresponding runs",
           lambda n, t, executor, store: dominance_study.report(
               n=n, t=t, executor=executor, store=store)),
    "e5": ("Proposition 6.1 — termination by round t + 2",
           lambda n, t, executor, store: termination_bound.report(
               n=n, t=t, executor=executor, store=store)),
    "e6": ("Introduction — the hear-about-0 counterexample",
           lambda n, t, executor, store: agreement_violation.report(
               sizes=((n, t),), executor=executor, store=store)),
    "e7": ("Theorems 6.5 / 6.6 — implementation of the knowledge-based program P0",
           lambda n, t, executor, store: implementation_check.report(
               n=n, t=t, executor=executor, store=store)),
    "e8": ("Section 8 — decision-round gap between limited exchanges and the FIP",
           lambda n, t, executor, store: fip_gap.report(
               n=n, t=t, executor=executor, store=store)),
    "e9": ("Crash failures vs sending omissions (0-bias ablation)",
           lambda n, t, executor, store: crash_comparison.report(
               n=n, t=t, executor=executor, store=store)),
    "e10": ("Optimality probe — one-step deviations of P_min / P_basic",
            lambda n, t, executor, store: optimality_probe.report(
                n=n, t=t, executor=executor, store=store)),
    "e11": ("Proposition 6.4 — the Definition 6.2 safety condition",
            lambda n, t, executor, store: safety_check.report(
                n=n, t=t, executor=executor, store=store)),
    "e12": ("Failure-model comparison — SO vs RO vs GO (see also 'failure-models')",
            lambda n, t, executor, store: failure_model_comparison.report(
                n=n, t=t, executor=executor, store=store)),
}


def _make_executor(args: argparse.Namespace) -> Optional[Executor]:
    """Build the execution backend requested on the command line."""
    return executor_from_flags(parallel=getattr(args, "parallel", False),
                               jobs=getattr(args, "jobs", None))


def _make_store(args: argparse.Namespace) -> Optional[ArtifactStore]:
    """Open the artifact store requested on the command line (``None`` = off).

    ``--cache`` switches caching on at the default location
    (``$REPRO_EBA_CACHE_DIR`` or ``~/.cache/repro-eba``); ``--cache-dir PATH``
    switches it on at ``PATH``.
    """
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        return default_store(cache_dir)
    if getattr(args, "cache", False):
        return default_store()
    return None


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--parallel", action="store_true",
                        help="execute runs on a process pool (repro.api.ParallelExecutor)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes; implies --parallel (with --parallel "
                             "alone: all cores)")
    parser.add_argument("--cache", action="store_true",
                        help="serve repeated work from the content-addressed artifact "
                             "store (repro.store) at its default location")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="PATH",
                        help="like --cache, but store artifacts under PATH")
    parser.add_argument("--trace", type=str, default=None, metavar="FILE",
                        help="record a span trace of the command to FILE "
                             "(JSONL; inspect with tools/trace_report.py)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the process metrics table to stderr when "
                             "the command finishes")


def _parse_preferences(text: str, n: int) -> List[int]:
    """Parse a comma-separated preference vector and validate its length."""
    try:
        values = [int(part) for part in text.split(",") if part != ""]
    except ValueError as exc:
        raise SystemExit(f"could not parse preferences {text!r}: {exc}")
    if len(values) != n:
        raise SystemExit(f"expected {n} preferences, got {len(values)}")
    return values


def _build_scenario(args: argparse.Namespace) -> tuple:
    """Build the (preferences, pattern) pair from the ``run`` arguments."""
    n, t = args.n, args.t
    if args.scenario == "failure-free":
        preferences = _parse_preferences(args.preferences, n) if args.preferences else [1] * n
        return preferences, FailurePattern.failure_free(n)
    if args.scenario == "example71":
        return scenario_lib.example_7_1(n=n, t=t)
    if args.scenario == "intro":
        return scenario_lib.intro_counterexample(n=n, t=t)
    if args.scenario == "hidden-chain":
        return scenario_lib.hidden_chain_scenario(n, chain_length=min(t, n - 1))
    if args.scenario == "random":
        scenarios = scenario_lib.random_scenarios(n, t, count=1, seed=args.seed)
        return scenarios[0]
    # custom: preferences required, optional silent faulty agents
    preferences = _parse_preferences(args.preferences, n) if args.preferences else [1] * n
    if args.silent:
        silent = [int(part) for part in args.silent.split(",") if part != ""]
        pattern = FailurePattern.silent(n, faulty=silent, horizon=t + 3)
    else:
        pattern = FailurePattern.failure_free(n)
    return preferences, pattern


def _cmd_run(args: argparse.Namespace) -> int:
    protocol = PROTOCOLS[args.protocol](args.t)
    preferences, pattern = _build_scenario(args)
    spec = RunSpec(protocol=protocol, n=args.n, preferences=tuple(preferences),
                   pattern=pattern)
    with _obs_flags(args):
        trace = spec.run(_make_executor(args), store=_make_store(args))
    if args.show_rounds:
        print(render_run(trace))
    else:
        print(f"run of {protocol.name}, n={args.n}, t={args.t}")
        print(f"preferences : {list(preferences)}")
        print(f"adversary   : {pattern.describe()}")
        print()
        print(render_decision_timeline(trace))
    print()
    report = check_eba(trace, deadline=args.t + 2)
    if report.ok:
        print(f"EBA specification: OK (all nonfaulty decide by round {args.t + 2})")
        return 0
    print("EBA specification violated:")
    for violation in report.violations():
        print(f"  - {violation}")
    return 1


def _report_resume(event: dict) -> None:
    """The sweep-resume notice ``--cache`` surfaces (subscribed per command)."""
    remaining, total = event["remaining"], event["total"]
    done = total - remaining
    print(f"cache: resuming {remaining} of {total} runs "
          f"({done} already cached)", file=sys.stderr)


class _resume_reporting:
    """Context manager: surface partial-sweep resumes while a command runs.

    Subscribed to the observer bus's ``sweep.resume`` events only when the
    command actually configured a store — the library itself never prints —
    and always unsubscribed on the way out so embedding callers (tests, the
    service) are unaffected.
    """

    def __init__(self, store: Optional[ArtifactStore]) -> None:
        self._active = store is not None

    def __enter__(self) -> "_resume_reporting":
        if self._active:
            BUS.subscribe("sweep.resume", _report_resume)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._active:
            BUS.unsubscribe("sweep.resume", _report_resume)


class _obs_flags:
    """Context manager: honour ``--trace FILE`` / ``--metrics`` for one command.

    Tracing is enabled for exactly the command's duration (and always disabled
    on the way out, even on error); the metrics table renders to stderr last,
    so it reflects everything the command did.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self._trace_path = getattr(args, "trace", None)
        self._metrics = getattr(args, "metrics", False)

    def __enter__(self) -> "_obs_flags":
        if self._trace_path:
            obs_trace.enable(self._trace_path)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._trace_path:
            obs_trace.disable()
        if self._metrics:
            print(render_table(REGISTRY.snapshot()), file=sys.stderr)


def _cmd_experiment(args: argparse.Namespace) -> int:
    key = args.id.lower()
    if key not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; use 'repro-eba list'", file=sys.stderr)
        return 2
    _description, runner = EXPERIMENTS[key]
    store = _make_store(args)
    with _obs_flags(args), _resume_reporting(store):
        print(runner(args.n, args.t, _make_executor(args), store))
    return 0


def _cmd_failure_models(args: argparse.Namespace) -> int:
    if args.model == "all":
        models = list(failure_model_comparison.DEFAULT_MODELS)
    else:
        # Always keep the paper's SO(t) baseline in the comparison.
        models = ["sending-omission"]
        if args.model not in models:
            models.append(args.model)
    store = _make_store(args)
    with _obs_flags(args), _resume_reporting(store):
        print(failure_model_comparison.report(
            n=args.n,
            t=args.t,
            models=models,
            count=args.count,
            seed=args.seed,
            include_theorems=not args.skip_theorems,
            executor=_make_executor(args),
            store=store,
        ))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand: inspect, empty, or pre-build the artifact store."""
    location = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    store = default_store(args.cache_dir)
    if args.cache_command == "stats":
        if args.json:
            payload = {"location": str(location), **store.stats().as_dict()}
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"artifact store at {location}")
        print(store.stats().describe())
        return 0
    if args.cache_command == "missing":
        return _cache_missing(args, store, location)
    if args.cache_command == "clear":
        deleted = store.clear()
        print(f"artifact store at {location}: deleted {deleted} entr"
              f"{'y' if deleted == 1 else 'ies'}")
        return 0
    # warm: pre-build the expensive model-checking artifacts for (n, t) so the
    # first real experiment/CI run starts hot.
    from .experiments import implementation_check, safety_check
    executor = _make_executor(args)
    print(f"warming artifact store at {location} for n={args.n}, t={args.t} ...")
    for label, check in (
        ("Theorem 6.5 (P_min implements P0 in gamma_min)",
         implementation_check.check_theorem_6_5),
        ("Theorem 6.6 (P_basic implements P0 in gamma_basic)",
         implementation_check.check_theorem_6_6),
    ):
        report = check(args.n, args.t, executor=executor, store=store)
        print(f"  {label}: {'ok' if report.ok else 'MISMATCHES'} "
              f"({report.checked_states} states)")
    if args.safety:
        for label, check in (
            ("Definition 6.2 safety in gamma_min", safety_check.check_gamma_min),
            ("Definition 6.2 safety in gamma_basic", safety_check.check_gamma_basic),
        ):
            report = check(args.n, args.t, executor=executor, store=store)
            print(f"  {label}: {'safe' if report.safe else 'VIOLATIONS'} "
                  f"({report.points_checked} points)")
    stats = store.stats()
    print(f"done: {stats.entries} entries, {stats.puts} written this run")
    return 0


def _cache_missing(args: argparse.Namespace, store: ArtifactStore, location) -> int:
    """``cache missing`` — the resumable-state inspection dual of ``warm``.

    Reports which of the (n, t) theorem/safety artifacts ``cache warm`` would
    build are already present, without computing anything.  Exit code 1 when
    at least one is missing, so scripts can gate a warm run on it.
    """
    from .kbp.programs import make_p0
    from .protocols.pbasic import BasicProtocol
    from .protocols.pmin import MinProtocol
    from .store import implementation_report_key, safety_report_key
    from .systems.contexts import gamma_basic, gamma_min
    n, t = args.n, args.t
    artifacts = [
        ("Theorem 6.5 report (P_min implements P0 in gamma_min)",
         implementation_report_key(MinProtocol(t), make_p0(n), gamma_min(n, t),
                                   None, 10)),
        ("Theorem 6.6 report (P_basic implements P0 in gamma_basic)",
         implementation_report_key(BasicProtocol(t), make_p0(n), gamma_basic(n, t),
                                   None, 10)),
    ]
    if args.safety:
        artifacts.extend([
            ("Definition 6.2 safety report in gamma_min",
             safety_report_key(MinProtocol(t), gamma_min(n, t), 10)),
            ("Definition 6.2 safety report in gamma_basic",
             safety_report_key(BasicProtocol(t), gamma_basic(n, t), 10)),
        ])
    print(f"artifact store at {location}, n={n}, t={t}:")
    missing = 0
    for label, key in artifacts:
        present = store.contains(key)
        missing += 0 if present else 1
        print(f"  [{'cached ' if present else 'MISSING'}] {label}")
    if missing:
        print(f"{missing} of {len(artifacts)} artifacts missing; "
              f"'repro-eba cache warm --n {n} --t {t}"
              f"{' --safety' if args.safety else ''}' builds them")
        return 1
    print(f"all {len(artifacts)} artifacts cached; a rerun is free")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the job server (:mod:`repro.service`) in the foreground."""
    from .service import JobServer
    configure_logging(args.log_level)
    store = _make_store(args)
    if store is None:
        # No cache flags: coalesce and re-serve within this server's lifetime,
        # but do not touch the user's on-disk cache unasked.
        store = ArtifactStore()
        location = "in-memory (per-server; --cache/--cache-dir persists across restarts)"
    else:
        location = str(args.cache_dir if args.cache_dir is not None
                       else default_cache_dir())
    server = JobServer(host=args.host, port=args.port, store=store,
                       workers=args.workers, executor=_make_executor(args),
                       verbose=args.verbose, journal=args.journal,
                       max_queue=args.max_queue, job_timeout=args.job_timeout,
                       task_retries=args.task_retries)
    host, port = server.address
    print(f"repro-eba job server on http://{host}:{port} ({args.workers} worker(s))")
    print(f"artifact store: {location}")
    if server.journal is not None:
        recovered = server.queue.recovered
        print(f"journal: {server.journal.path} (recovered "
              f"{recovered.get('done', 0)} done, {recovered.get('failed', 0)} failed, "
              f"{recovered.get('requeued', 0)} requeued)")
    print("endpoints: POST /jobs | GET /jobs/<id> | GET /jobs/<id>/result | "
          "POST /jobs/<id>/cancel | GET /healthz | GET /stats | GET /metrics")
    print("Ctrl-C stops the server gracefully")
    sys.stdout.flush()
    with _obs_flags(args):
        server.serve_until_interrupt()
    print("server stopped; goodbye")
    return 0


def _submit_body(args: argparse.Namespace) -> dict:
    """Build the wire-format request body for ``repro-eba submit``."""
    from .service import run_request, sweep_request, theorem_request
    if args.what == "run":
        preferences, pattern = _build_scenario(args)
        return run_request(args.protocol, args.t, args.n, preferences,
                           pattern=pattern, horizon=args.horizon)
    if args.what == "sweep":
        protocols = [(name.strip(), args.t)
                     for name in args.protocols.split(",") if name.strip()]
        workload = {"n": args.n, "t": args.t, "count": args.count, "seed": args.seed}
        if args.model is not None:
            workload["model"] = args.model
        return sweep_request(protocols, workload=workload, horizon=args.horizon)
    return theorem_request(args.theorem, args.n, args.t)


def _print_submit_result(payload: dict) -> int:
    """Render a fetched job payload the way the one-shot commands would."""
    if payload["kind"] == "run":
        print(payload["timeline"])
        print()
        if payload["eba_ok"]:
            print("EBA specification: OK (all nonfaulty decide by round "
                  f"{payload['eba_deadline']})")
            return 0
        print("EBA specification violated:")
        for violation in payload["violations"]:
            print(f"  - {violation}")
        return 1
    if payload["kind"] == "sweep":
        print(payload["table"])
        return 0
    status = "holds" if payload["holds"] else "FAILS"
    print(f"Theorem {payload['theorem']} at n={payload['n']}, t={payload['t']}: "
          f"{status} ({payload['checked_states']} states checked, "
          f"{payload['mismatches']} mismatch(es))")
    return 0 if payload["holds"] else 1


def _make_progress_printer() -> Callable[[dict], None]:
    """A ``ServiceClient.wait`` progress callback rendering to stderr.

    The server already throttles progress updates, but polling re-reads the
    same snapshot; only a *changed* line is printed.
    """
    last: List[str] = [""]

    def on_progress(status: dict) -> None:
        progress = status.get("progress") or {}
        parts = [f"progress: {progress.get('phase', 'working')}"]
        done, total = progress.get("done"), progress.get("total")
        if done is not None and total:
            parts.append(f"{done}/{total}")
            if progress.get("unit"):
                parts.append(str(progress["unit"]))
        eta = progress.get("eta")
        if eta is not None:
            parts.append(f"(eta {eta:.0f}s)")
        line = " ".join(parts)
        if line != last[0]:
            last[0] = line
            print(line, file=sys.stderr)

    return on_progress


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a job to a running server; optionally wait for the result."""
    from .service import ServiceClient
    client = ServiceClient(args.url, timeout=args.http_timeout)
    receipt = client.submit(_submit_body(args))
    how = ("coalesced onto an in-flight job" if receipt["coalesced"]
           else "served from the warm store" if receipt["hit"]
           else f"state: {receipt['state']}")
    print(f"job {receipt['job'][:16]}… submitted ({how})", file=sys.stderr)
    if not args.wait:
        print(receipt["job"])
        return 0
    payload = client.wait(receipt["job"], poll_interval=args.poll,
                          timeout=args.timeout,
                          on_progress=_make_progress_printer())
    return _print_submit_result(payload)


def _cmd_obs(args: argparse.Namespace) -> int:
    """Show the metrics registry — this process's, or a running server's."""
    if args.url is not None:
        from .service import ServiceClient
        snapshot = ServiceClient(args.url, timeout=args.http_timeout).metrics()
    else:
        # Importing the service layer registers its metric families, so a
        # fresh process still reports the complete registry (zeros included).
        from . import service as _service  # noqa: F401
        snapshot = REGISTRY.snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_table(snapshot))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST-based invariant linter (see docs/static-analysis.md)."""
    from .analysis.lint import run_lint_command
    return run_lint_command(args)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments (repro-eba experiment <id> [--n N --t T]):")
    for key, (description, _runner) in EXPERIMENTS.items():
        print(f"  {key:>4}  {description}")
    print()
    print("available protocols (repro-eba run --protocol <name>):")
    for name in PROTOCOLS:
        print(f"  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-eba",
        description="Reproduction of 'Optimal Eventual Byzantine Agreement Protocols "
                    "with Omission Failures' (PODC 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="simulate one scenario and check EBA")
    run_parser.add_argument("--protocol", choices=sorted(PROTOCOLS), default="min")
    run_parser.add_argument("--n", type=int, default=6, help="number of agents")
    run_parser.add_argument("--t", type=int, default=2, help="failure bound")
    run_parser.add_argument("--scenario",
                            choices=["custom", "failure-free", "example71", "intro",
                                     "hidden-chain", "random"],
                            default="custom")
    run_parser.add_argument("--preferences", type=str, default="",
                            help="comma-separated initial preferences (custom/failure-free)")
    run_parser.add_argument("--silent", type=str, default="",
                            help="comma-separated agents that stay silent (custom scenario)")
    run_parser.add_argument("--seed", type=int, default=0, help="seed for --scenario random")
    run_parser.add_argument("--show-rounds", action="store_true",
                            help="print the full round-by-round message view")
    _add_backend_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    experiment_parser = subparsers.add_parser("experiment",
                                              help="regenerate one of the paper's results")
    experiment_parser.add_argument("id", help="experiment id, e.g. e3 (see 'list')")
    experiment_parser.add_argument("--n", type=int, default=6)
    experiment_parser.add_argument("--t", type=int, default=2)
    _add_backend_arguments(experiment_parser)
    experiment_parser.set_defaults(handler=_cmd_experiment)

    models_parser = subparsers.add_parser(
        "failure-models",
        help="compare the protocols across failure models (SO / RO / GO)")
    models_parser.add_argument("--model",
                               # No failure-free here: a comparison over the
                               # model with no adversaries is meaningless, and
                               # its t must be 0.
                               choices=["all", *(name for name in available_models()
                                                 if name != "failure-free")],
                               default="all",
                               help="failure model to compare against the SO(t) baseline "
                                    "(default: all of SO/RO/GO)")
    models_parser.add_argument("--n", type=int, default=4, help="number of agents")
    models_parser.add_argument("--t", type=int, default=1, help="failure bound")
    models_parser.add_argument("--count", type=int, default=12,
                               help="random scenarios per model (plus named worst cases)")
    models_parser.add_argument("--seed", type=int, default=23, help="workload seed")
    models_parser.add_argument("--skip-theorems", action="store_true",
                               help="skip the model-checked Theorem 6.5/6.6 verification "
                                    "at n=3, t=1 (the exhaustive GO system takes ~30 s)")
    _add_backend_arguments(models_parser)
    models_parser.set_defaults(handler=_cmd_failure_models)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect, clear, or warm the content-addressed artifact store")
    cache_parser.add_argument("cache_command",
                              choices=["stats", "missing", "clear", "warm"],
                              help="stats: entries/sizes/kinds; missing: which (n, t) "
                                   "warm artifacts are absent (exit 1 if any); clear: "
                                   "delete every entry; warm: pre-build the (n, t) "
                                   "theorem-check artifacts")
    cache_parser.add_argument("--json", action="store_true",
                              help="with 'stats': print the machine-readable JSON "
                                   "document (the same schema the service's /stats "
                                   "endpoint embeds)")
    cache_parser.add_argument("--cache-dir", type=str, default=None, metavar="PATH",
                              help="store location (default: $REPRO_EBA_CACHE_DIR or "
                                   "~/.cache/repro-eba)")
    cache_parser.add_argument("--n", type=int, default=3,
                              help="system size for 'warm' (default 3)")
    cache_parser.add_argument("--t", type=int, default=1,
                              help="failure bound for 'warm' (default 1)")
    cache_parser.add_argument("--safety", action="store_true",
                              help="also warm the Definition 6.2 safety reports")
    cache_parser.add_argument("--parallel", action="store_true",
                              help="build systems on a process pool while warming")
    cache_parser.add_argument("--jobs", type=int, default=None,
                              help="worker processes; implies --parallel")
    cache_parser.set_defaults(handler=_cmd_cache)

    from .service.server import DEFAULT_PORT

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the HTTP job server (repro.service); submit with 'submit'")
    serve_parser.add_argument("--host", type=str, default="127.0.0.1",
                              help="interface to bind (default: loopback only)")
    serve_parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                              help=f"TCP port (default {DEFAULT_PORT}; 0 picks a "
                                   "free port)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="worker threads draining the job queue (default 2)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every HTTP request to stderr")
    serve_parser.add_argument("--journal", type=str, default=None, metavar="PATH",
                              help="append-only job journal at PATH; a restarted "
                                   "server on the same journal re-serves finished "
                                   "jobs and re-enqueues in-flight ones")
    serve_parser.add_argument("--max-queue", type=int, default=None, metavar="N",
                              help="backpressure bound on queued jobs: submissions "
                                   "beyond N get HTTP 503 + Retry-After "
                                   "(default: unbounded)")
    serve_parser.add_argument("--job-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-job wall-clock budget; a timed-out job is "
                                   "retried, then failed (default: unlimited)")
    serve_parser.add_argument("--task-retries", type=int, default=0, metavar="N",
                              help="retry budget for retryable job failures — "
                                   "timeouts, transient IO, dead worker processes "
                                   "(default 0: fail on the first error)")
    serve_parser.add_argument("--log-level", type=str, default="warning",
                              choices=["debug", "info", "warning", "error"],
                              help="threshold for the repro.* logging hierarchy "
                                   "on stderr (default: warning)")
    _add_backend_arguments(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit a run/sweep/theorem job to a running server")
    submit_parser.add_argument("what", choices=["run", "sweep", "theorem"],
                               help="which computation to submit")
    submit_parser.add_argument("--url", type=str,
                               default=f"http://127.0.0.1:{DEFAULT_PORT}",
                               help="server base URL (default: the local default port)")
    submit_parser.add_argument("--wait", action="store_true",
                               help="poll until the job finishes and print its result "
                                    "(without it: print the job id and exit)")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               help="overall --wait deadline in seconds (default 600)")
    submit_parser.add_argument("--poll", type=float, default=0.2,
                               help="--wait poll interval in seconds (default 0.2)")
    submit_parser.add_argument("--http-timeout", type=float, default=10.0,
                               help="per-request HTTP timeout in seconds (default 10)")
    submit_parser.add_argument("--protocol", choices=sorted(PROTOCOLS), default="min",
                               help="protocol for 'run'")
    submit_parser.add_argument("--protocols", type=str, default="min,basic,opt",
                               help="comma-separated protocols for 'sweep'")
    submit_parser.add_argument("--n", type=int, default=4, help="number of agents")
    submit_parser.add_argument("--t", type=int, default=1, help="failure bound")
    submit_parser.add_argument("--scenario",
                               choices=["custom", "failure-free", "example71", "intro",
                                        "hidden-chain", "random"],
                               default="custom", help="scenario for 'run'")
    submit_parser.add_argument("--preferences", type=str, default="",
                               help="comma-separated initial preferences ('run')")
    submit_parser.add_argument("--silent", type=str, default="",
                               help="comma-separated silent agents ('run' custom)")
    submit_parser.add_argument("--count", type=int, default=8,
                               help="random scenarios for 'sweep' (default 8)")
    submit_parser.add_argument("--seed", type=int, default=0,
                               help="workload seed ('sweep' / 'run --scenario random')")
    submit_parser.add_argument("--model", type=str, default=None,
                               help="failure model for the 'sweep' workload "
                                    "(default: sending omissions)")
    submit_parser.add_argument("--horizon", type=int, default=None,
                               help="simulation horizon override")
    submit_parser.add_argument("--theorem", choices=list(THEOREMS), default="6.5",
                               help="which implementation theorem for 'theorem'")
    submit_parser.set_defaults(handler=_cmd_submit)

    obs_parser = subparsers.add_parser(
        "obs",
        help="show the unified metrics registry (local or from a server)")
    obs_parser.add_argument("--url", type=str, default=None,
                            help="scrape a running server's /metrics instead of "
                                 "this process's registry")
    obs_parser.add_argument("--json", action="store_true",
                            help="print the JSON snapshot instead of the table")
    obs_parser.add_argument("--http-timeout", type=float, default=10.0,
                            help="per-request HTTP timeout for --url (default 10)")
    obs_parser.set_defaults(handler=_cmd_obs)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant linter (DET/LOCK/OBS/API rules)",
        description="Static analysis for the repo's determinism, lock-"
                    "discipline, observability, and API-surface conventions. "
                    "See docs/static-analysis.md.")
    from .analysis.lint import add_lint_arguments
    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=_cmd_lint)

    list_parser = subparsers.add_parser("list", help="list experiments and protocols")
    list_parser.set_defaults(handler=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
