"""Workload generators: preference vectors and named scenarios."""

from .preferences import (
    SeedLike,
    all_ones,
    all_zeros,
    enumerate_preferences,
    random_preferences,
    resolve_rng,
    single_one,
    single_zero,
    with_zero_fraction,
)
from .scenarios import (
    example_7_1,
    failure_free_scenarios,
    hidden_chain_scenario,
    intro_counterexample,
    mixed_chain_scenario,
    partition_scenario,
    random_model_scenarios,
    random_scenarios,
    silent_fault_sweep,
    silent_receiver_scenario,
)

__all__ = [
    "SeedLike",
    "all_ones",
    "all_zeros",
    "enumerate_preferences",
    "example_7_1",
    "failure_free_scenarios",
    "hidden_chain_scenario",
    "intro_counterexample",
    "mixed_chain_scenario",
    "partition_scenario",
    "random_model_scenarios",
    "random_preferences",
    "random_scenarios",
    "resolve_rng",
    "silent_fault_sweep",
    "silent_receiver_scenario",
    "single_one",
    "single_zero",
    "with_zero_fraction",
]
