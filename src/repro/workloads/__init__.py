"""Workload generators: preference vectors and named scenarios."""

from .preferences import (
    all_ones,
    all_zeros,
    enumerate_preferences,
    random_preferences,
    single_one,
    single_zero,
    with_zero_fraction,
)
from .scenarios import (
    example_7_1,
    failure_free_scenarios,
    hidden_chain_scenario,
    intro_counterexample,
    random_scenarios,
    silent_fault_sweep,
)

__all__ = [
    "all_ones",
    "all_zeros",
    "enumerate_preferences",
    "example_7_1",
    "failure_free_scenarios",
    "hidden_chain_scenario",
    "intro_counterexample",
    "random_preferences",
    "random_scenarios",
    "silent_fault_sweep",
    "single_one",
    "single_zero",
    "with_zero_fraction",
]
