"""Named scenarios from the paper and workload builders for the experiments.

A *scenario* is an initial global state: a preference vector plus a failure
pattern.  This module provides:

* :func:`example_7_1` — the exact scenario of Example 7.1 (``n = 20``,
  ``t = 10``, ten silent faulty agents, everyone prefers 1), plus a scaled-down
  variant used by the fast benchmarks;
* :func:`intro_counterexample` — the run ``r'`` of the introduction that breaks
  naive 0-biased protocols;
* :func:`failure_free_scenarios` — the two failure-free cases of
  Proposition 8.2;
* :func:`random_scenarios` — reproducible random workloads mixing preference
  vectors and ``SO(t)`` adversaries (used by the property tests, the dominance
  study, and the FIP-gap experiment);
* :func:`random_model_scenarios` — the same shape for *any* registered failure
  model (``"general-omission"``, ``"receive-omission"``, ``"crash"``, ...);
* :func:`silent_receiver_scenario`, :func:`partition_scenario`,
  :func:`mixed_chain_scenario` — the named receive-side/general-omission
  scenarios used by the failure-model comparison experiment.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..failures.adversaries import (
    hidden_chain_adversary,
    intro_counterexample_adversary,
    mixed_omission_chain_adversary,
    partition_adversary,
    silent_adversary,
    silent_receiver_adversary,
)
from ..failures.models import FailureModel, SendingOmissionModel, resolve_model
from ..failures.pattern import FailurePattern
from ..simulation.runner import Scenario
from .preferences import SeedLike, all_ones, all_zeros, random_preferences, single_zero


def example_7_1(n: int = 20, t: int = 10, horizon: Optional[int] = None) -> Scenario:
    """The scenario of Example 7.1: ``t`` silent faulty agents, all preferences 1.

    With the default parameters this is exactly the paper's example: agents
    ``0 .. 9`` are faulty and never send a message, everyone starts with 1.
    ``P_opt`` decides in round 3; ``P_min`` and ``P_basic`` wait until round
    ``t + 2 = 12``.  Smaller ``(n, t)`` keep the same shape (round 3 versus
    ``t + 2``) and are used by the fast benchmarks.
    """
    if horizon is None:
        horizon = t + 3
    preferences = all_ones(n)
    pattern = silent_adversary(n, faulty=range(t), horizon=horizon)
    return preferences, pattern


def intro_counterexample(n: int = 3, t: int = 1,
                         faulty_agent: int = 0, confidant: int = 2) -> Scenario:
    """The introduction's Agreement-breaking run for naive 0-biased protocols.

    The faulty agent starts with 0, stays silent, and reveals its preference to
    a single confidant in round ``t + 1`` — exactly when the other agents give
    up waiting and decide 1.
    """
    preferences = tuple(0 if agent == faulty_agent else 1 for agent in range(n))
    pattern = intro_counterexample_adversary(n, reveal_round=t + 1,
                                             faulty_agent=faulty_agent,
                                             confidant=confidant)
    return preferences, pattern


def hidden_chain_scenario(n: int, chain_length: int) -> Scenario:
    """A hidden 0-chain of the given length starting at agent 0.

    Agent 0 prefers 0 and talks only to agent 1, who talks only to agent 2, and
    so on; all other agents prefer 1.  This is the worst case that forces
    undecided agents to keep waiting (the "hidden path" of Castañeda et al.).
    """
    if chain_length + 1 > n:
        raise ValueError("chain cannot involve more agents than the system has")
    chain = tuple(range(chain_length + 1))
    preferences = single_zero(n, holder=0)
    pattern = hidden_chain_adversary(n, chain)
    return preferences, pattern


def failure_free_scenarios(n: int) -> List[Tuple[str, Scenario]]:
    """The two failure-free cases of Proposition 8.2, labelled for reporting."""
    pattern = FailurePattern.failure_free(n)
    return [
        ("some agent prefers 0", (single_zero(n), pattern)),
        ("all agents prefer 1", (all_ones(n), pattern)),
        ("all agents prefer 0", (all_zeros(n), pattern)),
    ]


def random_scenarios(n: int, t: int, count: int, seed: SeedLike = 0,
                     horizon: Optional[int] = None,
                     omission_probability: float = 0.5,
                     zero_probability: float = 0.5) -> List[Scenario]:
    """A reproducible random workload of (preferences, SO(t) pattern) pairs.

    ``seed`` may be an int (the historical behaviour: preferences come from an
    independent ``Random(seed + 1)`` stream, patterns from ``Random(seed)``) or
    a ``random.Random`` instance, in which case everything is drawn from that
    one stream.  The instance form is what parallel workers use to derive
    independent deterministic workloads without relying on ``numpy`` or global
    state: give each worker ``random.Random(worker_index)`` (or a stream
    spawned from a master instance) and its workload is a pure function of
    that stream's state.
    """
    return random_model_scenarios(n, t, count, model=SendingOmissionModel(n=n, t=t),
                                  seed=seed, horizon=horizon,
                                  zero_probability=zero_probability,
                                  omission_probability=omission_probability)


def random_model_scenarios(n: int, t: int, count: int,
                           model: "FailureModel | str" = "sending-omission",
                           seed: SeedLike = 0,
                           horizon: Optional[int] = None,
                           zero_probability: float = 0.5,
                           **sample_kwargs) -> List[Scenario]:
    """A reproducible random workload of (preferences, pattern) pairs for any model.

    The generalisation of :func:`random_scenarios` over the failure-model
    registry: ``model`` is a :class:`~repro.failures.models.FailureModel`
    instance or a registered name, and ``sample_kwargs`` are forwarded to the
    model's ``sample`` (e.g. ``omission_probability=0.3`` for the
    edge-omission models — rejected by ``crash``/``failure-free``, which do
    not sample per edge).  The random streams have the same structure as
    :func:`random_scenarios`, so for the sending-omissions model the two
    functions produce identical workloads from identical seeds.
    """
    if horizon is None:
        horizon = t + 3
    resolved = resolve_model(model, n, t)
    if isinstance(seed, random.Random):
        rng = seed
        preferences = random_preferences(n, count, seed=rng,
                                         zero_probability=zero_probability)
    else:
        rng = random.Random(seed)
        preferences = random_preferences(n, count, seed=seed + 1,
                                         zero_probability=zero_probability)
    scenarios: List[Scenario] = []
    for index in range(count):
        pattern = resolved.sample(rng, horizon, **sample_kwargs)
        scenarios.append((preferences[index], pattern))
    return scenarios


def silent_receiver_scenario(n: int, k: int, horizon: Optional[int] = None) -> Scenario:
    """``k`` deaf faulty agents in an otherwise all-ones run (``RO(k)``).

    Agents ``0 .. k - 1`` drop every incoming message; since everything they
    *send* is delivered, the nonfaulty majority still hears their preferences
    — the information asymmetry is the reverse of Example 7.1's silent
    senders.
    """
    if horizon is None:
        horizon = k + 3
    pattern = silent_receiver_adversary(n, faulty=range(k), horizon=horizon)
    return all_ones(n), pattern


def partition_scenario(n: int, k: int, horizon: Optional[int] = None) -> Scenario:
    """``k`` faulty agents partitioned off from the rest, holding the only 0s (``GO(k)``).

    The isolated group starts with preference 0; because the cut severs both
    directions, the rest of the system never hears about the 0s and the
    isolated agents never hear the 1s — the scenario that separates general
    omissions from both ``SO(t)`` (where the group would still hear) and
    ``RO(t)`` (where the group would still be heard).
    """
    if not 0 <= k < n:
        raise ValueError("need 0 <= k < n isolated agents")
    if horizon is None:
        horizon = k + 3
    preferences = tuple(0 if agent < k else 1 for agent in range(n))
    pattern = partition_adversary(n, isolated=range(k), horizon=horizon)
    return preferences, pattern


def mixed_chain_scenario(n: int, chain_length: int,
                         horizon: Optional[int] = None) -> Scenario:
    """A mixed send/receive omission chain starting at a 0-preferring agent (``GO``).

    Agent 0 prefers 0 and both talks only forward along the chain and listens
    only backward; all other agents prefer 1.  The general-omission analogue
    of :func:`hidden_chain_scenario`.
    """
    if chain_length > n:
        raise ValueError("chain cannot involve more agents than the system has")
    chain = tuple(range(chain_length))
    preferences = single_zero(n, holder=0)
    pattern = mixed_omission_chain_adversary(n, chain, horizon=horizon)
    return preferences, pattern


def silent_fault_sweep(n: int, t: int, horizon: Optional[int] = None) -> List[Tuple[int, Scenario]]:
    """For ``k = 0 .. t`` silent faulty agents: the all-ones scenario with ``k`` silent agents.

    Used by the Example 7.1 sweep: the FIP's common-knowledge rule triggers as
    soon as the silent agents pin down the full faulty set (``k = t``), while
    for ``k < t`` all three protocols wait.
    """
    if horizon is None:
        horizon = t + 3
    sweep: List[Tuple[int, Scenario]] = []
    for k in range(t + 1):
        pattern = silent_adversary(n, faulty=range(k), horizon=horizon)
        sweep.append((k, (all_ones(n), pattern)))
    return sweep
