"""Initial-preference vector generators.

EBA runs are parameterised by the vector of initial preferences; these helpers
produce the vectors used by the experiments:

* the two uniform vectors (all 0s / all 1s),
* "one dissenter" vectors,
* exhaustive enumeration (for the small systems fed to the model checker),
* reproducible random vectors.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Union

from ..core.types import PreferenceVector

#: Seed-like argument: an int seeds a fresh ``random.Random``; passing a
#: ``random.Random`` instance draws from that stream directly, which lets
#: parallel workers derive independent deterministic streams.
SeedLike = Union[int, random.Random]


def resolve_rng(seed: SeedLike) -> random.Random:
    """Turn a seed-like argument into a ``random.Random`` instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def all_zeros(n: int) -> PreferenceVector:
    """Every agent prefers 0."""
    return tuple(0 for _ in range(n))


def all_ones(n: int) -> PreferenceVector:
    """Every agent prefers 1."""
    return tuple(1 for _ in range(n))


def single_zero(n: int, holder: int = 0) -> PreferenceVector:
    """All agents prefer 1 except ``holder``, who prefers 0."""
    return tuple(0 if agent == holder else 1 for agent in range(n))


def single_one(n: int, holder: int = 0) -> PreferenceVector:
    """All agents prefer 0 except ``holder``, who prefers 1."""
    return tuple(1 if agent == holder else 0 for agent in range(n))


def with_zero_fraction(n: int, fraction: float) -> PreferenceVector:
    """The first ``round(fraction * n)`` agents prefer 0, the rest prefer 1."""
    zeros = round(fraction * n)
    return tuple(0 if agent < zeros else 1 for agent in range(n))


def enumerate_preferences(n: int) -> Iterator[PreferenceVector]:
    """All ``2^n`` preference vectors (smallest-index agent varies fastest last)."""
    for combo in itertools.product((0, 1), repeat=n):
        yield tuple(combo)


def random_preferences(n: int, count: int, seed: SeedLike = 0,
                       zero_probability: float = 0.5) -> List[PreferenceVector]:
    """``count`` random preference vectors drawn i.i.d. with the given 0-probability.

    ``seed`` may be an int or a ``random.Random`` instance (see :data:`SeedLike`).
    """
    rng = resolve_rng(seed)
    vectors: List[PreferenceVector] = []
    for _ in range(count):
        vectors.append(tuple(0 if rng.random() < zero_probability else 1 for _ in range(n)))
    return vectors
