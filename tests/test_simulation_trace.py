"""Unit tests for RunTrace bookkeeping."""

import pytest

from repro.core.errors import ReproError
from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol
from repro.simulation import simulate


@pytest.fixture
def trace():
    """A 4-agent run of P_min where agent 3 starts with 0 and agent 0 is silent-faulty."""
    pattern = FailurePattern.silent(4, faulty=[0], horizon=4)
    return simulate(MinProtocol(1), 4, [1, 1, 1, 0], pattern)


class TestStates:
    def test_state_of_time_zero_is_initial(self, trace):
        assert trace.state_of(2, 0) == trace.initial_states[2]

    def test_state_of_rejects_out_of_range(self, trace):
        with pytest.raises(ReproError):
            trace.state_of(0, trace.horizon + 1)

    def test_states_at_matches_state_of(self, trace):
        for time in range(trace.horizon + 1):
            assert trace.states_at(time) == tuple(trace.state_of(a, time) for a in range(4))


class TestDecisions:
    def test_decision_round_and_value(self, trace):
        assert trace.decision_round(3) == 1
        assert trace.decision_value(3) == 0
        assert trace.decision_value(1) == 0

    def test_decisions_mapping(self, trace):
        decisions = trace.decisions()
        assert decisions[3] == (1, 0)
        assert set(decisions) == {0, 1, 2, 3}

    def test_all_decided_flags(self, trace):
        assert trace.all_decided()
        assert trace.all_nonfaulty_decided()
        assert trace.decided_agents() == frozenset({0, 1, 2, 3})

    def test_last_decision_round(self, trace):
        assert trace.last_decision_round() == 2
        assert trace.last_decision_round(nonfaulty_only=True) == 2

    def test_undecided_agent_reports_none(self):
        trace = simulate(MinProtocol(1), 3, [1, 1, 1], horizon=1)
        assert trace.decision_round(0) is None
        assert trace.decision_value(0) is None
        assert trace.last_decision_round() is None
        assert not trace.all_decided()


class TestAccounting:
    def test_pmin_bits_equal_n_squared(self):
        trace = simulate(MinProtocol(1), 5, [0, 1, 1, 1, 1])
        assert trace.total_bits(include_self=True) == 25
        assert trace.total_bits(include_self=False) == 20

    def test_message_count_vs_bits_for_basic(self):
        trace = simulate(BasicProtocol(1), 4, [1, 1, 1, 1])
        # Heartbeats are 2 bits, decide notifications 1 bit, so bits > messages.
        assert trace.total_bits() > trace.total_messages()

    def test_delivered_message_lookup(self, trace):
        # Agent 3 decides 0 in round 1 and its message reaches agent 1.
        message = trace.delivered_message(0, 3, 1)
        assert message is not None
        # Agent 0 is silent: nothing is delivered from it.
        assert trace.delivered_message(0, 0, 1) is None


class TestSummary:
    def test_summary_mentions_protocol_and_decisions(self, trace):
        text = trace.summary()
        assert "P_min" in text
        assert "faulty=[0]" in text
        assert "→0" in text
