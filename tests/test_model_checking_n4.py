"""The paper's implementation theorems checked exhaustively at n = 4.

These were quarantined behind ``pytest -m slow`` when the model checker
materialised ``frozenset[Point]`` sets (tens of seconds each); with the bitset
core and interned systems each check is build-dominated and runs in seconds,
so they are tier-1.  The remaining heavier exhaustive checks (program
equivalence, the Definition 6.2 safety condition at n = 4) stay in
``test_slow_model_checking.py``.
"""

from repro.kbp import check_implements, make_p0
from repro.protocols import BasicProtocol, MinProtocol
from repro.systems import gamma_basic, gamma_min


class TestTheorem65AtN4:
    def test_pmin_implements_p0_in_gamma_min_4_1(self):
        report = check_implements(MinProtocol(1), make_p0(4), gamma_min(4, 1))
        assert report.ok, report.mismatches
        assert report.checked_states > 0


class TestTheorem66AtN4:
    def test_pbasic_implements_p0_in_gamma_basic_4_1(self):
        report = check_implements(BasicProtocol(1), make_p0(4), gamma_basic(4, 1))
        assert report.ok, report.mismatches
        assert report.checked_states > 0
