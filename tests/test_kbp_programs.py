"""Unit tests for the knowledge-based programs P0 and P1."""

import pytest

from repro.core.types import DECIDE_0, DECIDE_1, NOOP
from repro.kbp import make_p0, make_p1
from repro.logic import Knows, ModelChecker
from repro.protocols import MinProtocol
from repro.systems import Point, gamma_min


@pytest.fixture(scope="module")
def min_system():
    return gamma_min(3, 1).build_system(MinProtocol(1))


class TestStructure:
    def test_p0_has_three_clauses_per_agent(self):
        program = make_p0(3)
        assert program.n == 3
        for agent in range(3):
            local = program.local(agent)
            assert len(local.clauses) == 3
            assert local.default == NOOP
            assert local.clauses[0].action == NOOP
            assert local.clauses[1].action == DECIDE_0
            assert local.clauses[2].action == DECIDE_1

    def test_p1_has_five_clauses_per_agent(self):
        program = make_p1(4, 2)
        for agent in range(4):
            clauses = program.local(agent).clauses
            assert len(clauses) == 5
            assert [clause.action for clause in clauses] == [
                NOOP, DECIDE_0, DECIDE_1, DECIDE_0, DECIDE_1]

    def test_guards_are_agent_local(self):
        # Every epistemic guard of agent i's program must be of the form K_i(...)
        # or a test on i's own state; spot-check the knowledge clauses.
        program = make_p1(3, 1)
        for agent in range(3):
            for clause in program.local(agent).clauses[1:3]:
                assert isinstance(clause.guard, Knows)
                assert clause.guard.agent == agent

    def test_repr(self):
        assert "P0" in repr(make_p0(2))


class TestPrescriptions:
    def test_initial_zero_prescribes_decide_zero(self, min_system):
        program = make_p0(3)
        checker = ModelChecker(min_system)
        for run_index, run in enumerate(min_system.runs):
            for agent in range(3):
                if run.preferences[agent] == 0:
                    action = program.prescribed_action(checker, agent, Point(run_index, 0))
                    assert action == DECIDE_0
                    break
            else:
                continue
            break
        else:
            pytest.fail("no run with an initial 0 found")

    def test_prescriptions_depend_only_on_local_state(self, min_system):
        program = make_p0(3)
        checker = ModelChecker(min_system)
        classes = min_system.equivalence_classes(0)
        # Pick a few classes and check all members get the same prescription.
        for points in list(classes.values())[:10]:
            actions = {program.prescribed_action(checker, 0, point) for point in points}
            assert len(actions) == 1

    def test_prescribed_actions_bulk(self, min_system):
        program = make_p0(3)
        table = program.prescribed_actions(min_system, max_time=1)
        assert all(point.time <= 1 for (point, _agent) in table)
        assert all(action in (NOOP, DECIDE_0, DECIDE_1) for action in table.values())
