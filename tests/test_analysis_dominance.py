"""Unit tests for the dominance comparison machinery."""

import pytest

from repro.analysis import compare_protocols, compare_traces, pairwise_comparison
from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, DelayedMinProtocol, MinProtocol
from repro.simulation import simulate
from repro.workloads import all_ones, failure_free_scenarios, random_scenarios


class TestCompareTraces:
    def test_identical_protocols_are_equivalent(self):
        scenarios = random_scenarios(4, 1, count=5, seed=5)
        first = [simulate(MinProtocol(1), 4, prefs, pattern) for prefs, pattern in scenarios]
        second = [simulate(MinProtocol(1), 4, prefs, pattern) for prefs, pattern in scenarios]
        result = compare_traces(first, second)
        assert result.equivalent
        assert result.first_dominates and result.second_dominates
        assert result.first_strictly_earlier == 0

    def test_mismatched_scenarios_rejected(self):
        a = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        b = simulate(MinProtocol(1), 4, [1, 1, 1, 1])
        with pytest.raises(ValueError):
            compare_traces([a], [b])

    def test_length_mismatch_rejected(self):
        a = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        with pytest.raises(ValueError):
            compare_traces([a], [])


class TestCompareProtocols:
    def test_pmin_strictly_dominates_delayed_variant(self):
        scenarios = [scenario for _, scenario in failure_free_scenarios(5)]
        result = compare_protocols(MinProtocol(1), DelayedMinProtocol(1, delay=2), 5, scenarios)
        assert result.first_dominates
        assert not result.second_dominates
        assert result.first_strictly_dominates
        assert result.counterexamples_to_second
        assert "strictly dominates" in result.summary()

    def test_delayed_variant_does_not_dominate_back(self):
        scenarios = random_scenarios(5, 1, count=8, seed=3)
        result = compare_protocols(DelayedMinProtocol(1, delay=1), MinProtocol(1), 5, scenarios)
        assert not result.first_strictly_dominates

    def test_nobody_strictly_dominates_pbasic_in_its_context(self):
        # P_basic versus a slower protocol over the same exchange cannot be
        # dominated; this is the checkable consequence of Corollary 6.7.
        scenarios = random_scenarios(5, 1, count=8, seed=4)
        result = compare_protocols(BasicProtocol(1), MinProtocol(1), 5, scenarios)
        assert not result.second_strictly_dominates

    def test_equivalent_summary_wording(self):
        # A zero-delay DelayedMin behaves exactly like P_min, so the comparison
        # must report identical decision times.
        scenarios = [(all_ones(4), FailurePattern.failure_free(4))]
        result = compare_protocols(MinProtocol(1), DelayedMinProtocol(1, delay=0), 4, scenarios)
        assert "identical" in result.summary()


class TestPairwise:
    def test_pairwise_produces_all_pairs(self):
        protocols = [MinProtocol(1), BasicProtocol(1), DelayedMinProtocol(1)]
        scenarios = random_scenarios(4, 1, count=4, seed=6)
        results = pairwise_comparison(protocols, 4, scenarios)
        assert len(results) == 3
        assert ("P_min", "P_basic") in results

    def test_pairwise_counterexamples_reference_scenarios(self):
        protocols = [MinProtocol(1), DelayedMinProtocol(1, delay=3)]
        scenarios = [(all_ones(4), FailurePattern.failure_free(4))]
        results = pairwise_comparison(protocols, 4, scenarios)
        result = results[("P_min", "P_min_delayed(3)")]
        assert result.counterexamples_to_second
        example = result.counterexamples_to_second[0]
        assert example.scenario_index == 0
        assert "round" in repr(example)
