"""Heavier exhaustive model-checking runs at n = 4 (marked slow).

Run them with ``pytest -m slow`` (CI runs them on a schedule and on manual
dispatch).  The Theorem 6.5 / 6.6 implementation checks at n = 4 used to live
here; the bitset model-checking core made them fast enough for tier-1, so they
moved to ``test_model_checking_n4.py``.  What remains are the checks that scan
every one of the ~131k points with per-point Python logic (program
equivalence over both limited contexts, the Definition 6.2 safety condition).
"""

import pytest

from repro.kbp import make_p0, make_p1, programs_equivalent
from repro.kbp.safety import check_safety
from repro.protocols import BasicProtocol, MinProtocol
from repro.systems import gamma_basic, gamma_min

pytestmark = pytest.mark.slow


class TestSection7EquivalenceAtN4:
    def test_p1_equivalent_to_p0_in_gamma_min_4_1(self):
        system = gamma_min(4, 1).build_system(MinProtocol(1))
        assert programs_equivalent(make_p0(4), make_p1(4, 1), system)

    def test_p1_equivalent_to_p0_in_gamma_basic_4_1(self):
        system = gamma_basic(4, 1).build_system(BasicProtocol(1))
        assert programs_equivalent(make_p0(4), make_p1(4, 1), system)


class TestSafetyConditionAtN4:
    def test_p0_safe_in_gamma_min_4_1(self):
        report = check_safety(MinProtocol(1), gamma_min(4, 1))
        assert report.safe, report.violations

    def test_p0_safe_in_gamma_basic_4_1(self):
        report = check_safety(BasicProtocol(1), gamma_basic(4, 1))
        assert report.safe, report.violations


class TestGeneralOmissionTheoremsAtN3:
    """The GO(1) halves of experiment E12's theorem table (98 312-run system)."""

    def test_6_5_holds_and_6_6_breaks_under_general_omissions(self):
        from repro.experiments.failure_model_comparison import check_theorems

        rows = check_theorems("general-omission", n=3, t=1)
        by_claim = {row.claim: row for row in rows}
        assert by_claim["Theorem 6.5: P_min implements P0"].holds
        basic = by_claim["Theorem 6.6: P_basic implements P0"]
        assert not basic.holds
        assert basic.mismatches > 0
