"""Exhaustive model-checking tests at n = 4 (marked slow).

Run them with ``pytest -m slow`` (they take tens of seconds to minutes because
the number of runs in the enumerated systems grows as 2^(n * horizon)).
"""

import pytest

from repro.kbp import check_implements, make_p0, make_p1, programs_equivalent
from repro.protocols import BasicProtocol, MinProtocol
from repro.systems import gamma_basic, gamma_min

pytestmark = pytest.mark.slow


class TestTheorem65AtN4:
    def test_pmin_implements_p0_in_gamma_min_4_1(self):
        report = check_implements(MinProtocol(1), make_p0(4), gamma_min(4, 1))
        assert report.ok, report.mismatches


class TestTheorem66AtN4:
    def test_pbasic_implements_p0_in_gamma_basic_4_1(self):
        report = check_implements(BasicProtocol(1), make_p0(4), gamma_basic(4, 1))
        assert report.ok, report.mismatches


class TestSection7EquivalenceAtN4:
    def test_p1_equivalent_to_p0_in_gamma_min_4_1(self):
        system = gamma_min(4, 1).build_system(MinProtocol(1))
        assert programs_equivalent(make_p0(4), make_p1(4, 1), system)
