"""Heavier exhaustive model-checking runs at n = 4 and n = 5 (marked slow).

Run them with ``pytest -m slow`` (CI runs them on a schedule and on manual
dispatch).  The Theorem 6.5 / 6.6 implementation checks at n = 4 used to live
here; the bitset model-checking core made them fast enough for tier-1, so they
moved to ``test_model_checking_n4.py``.  The tier now covers, at n = 5
(655 392-run / 2 621 568-point systems that the batched round-major
construction engine made reachable at all):

* **Theorem 6.5** — ``P_min`` implements ``P0`` in γ_min(5, 1);
* **Theorem 6.6** — ``P_basic`` implements ``P0`` in γ_basic(5, 1); and
* the **Definition 6.2 safety condition** for both canonical
  implementations, via the vectorized word-array scan
  (``check_safety(scan="vector")``) — the per-point scan extrapolates to
  hours at this size, the vectorized one finishes in about a minute.

The n = 4 remainder (program equivalence over both limited contexts, the
safety condition under the default scan) and the n = 3 general-omission
theorem table round out the tier.
"""

import pytest

from repro.kbp import check_implements, make_p0, make_p1, programs_equivalent
from repro.kbp.safety import check_safety
from repro.protocols import BasicProtocol, MinProtocol
from repro.systems import gamma_basic, gamma_min

pytestmark = pytest.mark.slow


class TestSection7EquivalenceAtN4:
    def test_p1_equivalent_to_p0_in_gamma_min_4_1(self):
        system = gamma_min(4, 1).build_system(MinProtocol(1))
        assert programs_equivalent(make_p0(4), make_p1(4, 1), system)

    def test_p1_equivalent_to_p0_in_gamma_basic_4_1(self):
        system = gamma_basic(4, 1).build_system(BasicProtocol(1))
        assert programs_equivalent(make_p0(4), make_p1(4, 1), system)


class TestSafetyConditionAtN4:
    def test_p0_safe_in_gamma_min_4_1(self):
        report = check_safety(MinProtocol(1), gamma_min(4, 1))
        assert report.safe, report.violations

    def test_p0_safe_in_gamma_basic_4_1(self):
        report = check_safety(BasicProtocol(1), gamma_basic(4, 1))
        assert report.safe, report.violations


class TestTheorem65AtN5:
    """Theorem 6.5 over the full γ_min system at n = 5, t = 1.

    The largest exhaustive check in the repo: 20 481 SO(1) patterns × 32
    preference vectors = 655 392 runs (2 621 568 points).  On the development
    container the batched build takes ~8 s and the implementation check ~40 s
    in ~0.3 GB — out of reach for the per-run engine's sequential simulate()
    loop at any comfortable budget (the build alone extrapolates to ~2 min,
    and historically n = 4 was the practical ceiling).
    """

    def test_p_min_implements_p0_in_gamma_min_5_1(self):
        context = gamma_min(5, 1)
        system = context.build_system(MinProtocol(1))
        assert len(system.runs) == 655_392
        report = check_implements(MinProtocol(1), make_p0(5), context, system=system)
        assert report.ok, report.mismatches
        assert report.checked_states > 0


class TestTheorem66AtN5:
    """Theorem 6.6 over the full γ_basic system at n = 5, t = 1.

    Open until the word-array model-checker backend landed: the check anchors
    one ``K_i`` evaluation per interned class, and the vectorized class-mask
    sweeps bring the whole check (build + guard evaluation over 655 392 runs)
    to under a minute on the development container.
    """

    def test_p_basic_implements_p0_in_gamma_basic_5_1(self):
        context = gamma_basic(5, 1)
        system = context.build_system(BasicProtocol(1))
        assert len(system.runs) == 655_392
        report = check_implements(BasicProtocol(1), make_p0(5), context, system=system)
        assert report.ok, report.mismatches
        assert report.checked_states > 0


class TestSafetyConditionAtN5:
    """The Definition 6.2 safety scan at n = 5, t = 1 (Proposition 6.4's regime).

    Open until the vectorized scan landed: the per-point scan walks 2.6M
    points × 5 agents through nested class sweeps (extrapolating to hours),
    while the word-array scan reduces each clause to shift pipelines and
    per-class ``bincount`` reductions over the whole system at once.
    """

    def test_p0_safe_in_gamma_min_5_1(self):
        report = check_safety(MinProtocol(1), gamma_min(5, 1), scan="vector")
        assert report.safe, report.violations
        assert report.points_checked == 2_621_568

    def test_p0_safe_in_gamma_basic_5_1(self):
        report = check_safety(BasicProtocol(1), gamma_basic(5, 1), scan="vector")
        assert report.safe, report.violations
        assert report.points_checked == 2_621_568


class TestGeneralOmissionTheoremsAtN3:
    """The GO(1) halves of experiment E12's theorem table (98 312-run system)."""

    def test_6_5_holds_and_6_6_breaks_under_general_omissions(self):
        from repro.experiments.failure_model_comparison import check_theorems

        rows = check_theorems("general-omission", n=3, t=1)
        by_claim = {row.claim: row for row in rows}
        assert by_claim["Theorem 6.5: P_min implements P0"].holds
        basic = by_claim["Theorem 6.6: P_basic implements P0"]
        assert not basic.holds
        assert basic.mismatches > 0
