"""Tests for the observer bus and progress reporting (:mod:`repro.obs.bus`).

The bus is the generalization of the old ``set_resume_notifier`` hook, so
this file also pins the compatibility contract: the shim still works (with a
``DeprecationWarning``) and ``SweepSpec.run`` emits ``sweep.resume`` on the
bus for partial cache resumes.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.bus import BUS, EventBus, ProgressReporter
from repro.obs.metrics import REGISTRY


# ------------------------------------------------------------------ event bus


class TestEventBus:
    def test_emit_delivers_kind_and_thread(self):
        bus = EventBus()
        seen = []
        bus.subscribe("demo", seen.append)
        delivered = bus.emit("demo", value=7)
        assert delivered == 1
        (event,) = seen
        assert event["value"] == 7
        assert event["kind"] == "demo"
        assert event["thread"] == threading.get_ident()

    def test_emit_without_subscribers_is_a_cheap_noop(self):
        bus = EventBus()
        assert not bus.has_subscribers("demo")
        assert bus.emit("demo", value=1) == 0

    def test_subscribe_returns_the_callback_for_unsubscribe(self):
        bus = EventBus()
        seen = []

        def record(event):
            seen.append(event)

        handle = bus.subscribe("demo", record)
        assert handle is record
        assert bus.has_subscribers("demo")
        bus.unsubscribe("demo", handle)
        assert not bus.has_subscribers("demo")
        assert bus.emit("demo") == 0 and seen == []
        # Unsubscribing something never subscribed is ignored.
        bus.unsubscribe("demo", record)
        bus.unsubscribe("never", record)

    def test_kinds_are_independent(self):
        bus = EventBus()
        alpha, beta = [], []
        bus.subscribe("alpha", alpha.append)
        bus.subscribe("beta", beta.append)
        bus.emit("alpha")
        assert len(alpha) == 1 and beta == []

    def test_raising_callback_is_counted_and_skipped(self):
        bus = EventBus()
        errors = REGISTRY.counter("repro_obs_callback_errors_total")
        before = errors.value
        seen = []

        def boom(event):
            raise RuntimeError("observer bug")

        bus.subscribe("demo", boom)
        bus.subscribe("demo", seen.append)
        delivered = bus.emit("demo", value=1)  # must not raise
        assert delivered == 2
        assert len(seen) == 1  # the healthy subscriber still ran
        assert errors.value == before + 1


# ------------------------------------------------------------------ progress


class TestProgressReporter:
    def test_silent_when_nobody_subscribed(self):
        bus = EventBus()
        reporter = ProgressReporter("phase", total=3, bus=bus)
        reporter.advance(3)
        reporter.finish()  # nothing to assert beyond "does not blow up"

    def test_throttles_to_min_interval(self):
        bus = EventBus()
        seen = []
        bus.subscribe("progress", seen.append)
        reporter = ProgressReporter("scan", total=1000, unit="runs",
                                    min_interval=10.0, bus=bus)
        for _ in range(50):
            reporter.advance()
        assert len(seen) == 1  # the first advance; the rest were throttled
        assert seen[0]["phase"] == "scan"
        assert seen[0]["unit"] == "runs"
        assert seen[0]["total"] == 1000

    def test_completion_bypasses_the_throttle(self):
        bus = EventBus()
        seen = []
        bus.subscribe("progress", seen.append)
        reporter = ProgressReporter("scan", total=3, min_interval=10.0, bus=bus)
        reporter.advance()      # emits (first event)
        reporter.advance()      # throttled
        reporter.advance()      # done == total: final, bypasses throttle
        assert [event["done"] for event in seen] == [1, 3]
        assert seen[-1]["eta"] is None  # nothing left to estimate

    def test_finish_always_emits(self):
        bus = EventBus()
        seen = []
        bus.subscribe("progress", seen.append)
        reporter = ProgressReporter("load", min_interval=10.0, bus=bus)
        reporter.update(5)
        reporter.finish()
        assert [event["done"] for event in seen] == [5, 5]
        assert seen[-1]["total"] is None  # open-ended phase

    def test_eta_extrapolates_from_the_rate(self):
        bus = EventBus()
        seen = []
        bus.subscribe("progress", seen.append)
        reporter = ProgressReporter("scan", total=4, min_interval=0.0, bus=bus)
        reporter._started -= 1.0  # pretend one second already elapsed
        reporter.advance()  # 1 of 4 after ~1s -> ~3s to go
        event = seen[-1]
        assert event["elapsed"] == pytest.approx(1.0, abs=0.25)
        assert event["eta"] == pytest.approx(3.0, rel=0.3)

    def test_events_flow_through_the_global_bus_by_default(self):
        seen = []
        BUS.subscribe("progress", seen.append)
        try:
            reporter = ProgressReporter("global", total=1, min_interval=0.0)
            reporter.advance()
        finally:
            BUS.unsubscribe("progress", seen.append)
        assert seen and seen[-1]["phase"] == "global"


# ------------------------------------------------------- resume compatibility


class TestResumeNotifierShim:
    def test_install_warns_and_returns_previous(self):
        from repro.api import set_resume_notifier

        def observer(spec, remaining, total):
            pass

        with pytest.warns(DeprecationWarning, match="sweep.resume"):
            previous = set_resume_notifier(observer)
        try:
            assert previous is None
            with pytest.warns(DeprecationWarning):
                assert set_resume_notifier(observer) is observer
        finally:
            # Uninstalling is silent (no way to pytest.warns-not, so just
            # assert no warning escapes as an error under -W error).
            import warnings
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert set_resume_notifier(None) is observer

    def test_sweep_resume_event_reaches_bus_and_legacy_callback(self, tmp_path):
        from repro.api import Sweep, set_resume_notifier
        from repro.api.executors import execute_task
        from repro.failures import FailurePattern
        from repro.protocols import MinProtocol
        from repro.store import default_store, run_task_key

        pattern = FailurePattern.failure_free(3)
        scenarios = [(tuple(int(bit) for bit in f"{index:03b}"), pattern)
                     for index in range(4)]
        spec = Sweep.of(MinProtocol(1)).on(scenarios, n=3).build()
        store = default_store(tmp_path / "cache")
        # Simulate an interrupted sweep: one of four runs already cached.
        task = spec.tasks()[0]
        store.put(run_task_key(task), execute_task(task), kind="run")

        bus_events = []
        legacy_calls = []
        BUS.subscribe("sweep.resume", bus_events.append)
        with pytest.warns(DeprecationWarning):
            set_resume_notifier(
                lambda spec, remaining, total:
                legacy_calls.append((remaining, total)))
        try:
            spec.run(store=store)
        finally:
            BUS.unsubscribe("sweep.resume", bus_events.append)
            set_resume_notifier(None)

        assert legacy_calls == [(3, 4)]
        (event,) = bus_events
        assert event["kind"] == "sweep.resume"
        assert event["remaining"] == 3 and event["total"] == 4
        assert event["spec"] is spec

    def test_no_event_on_cold_or_fully_warm_store(self, tmp_path):
        from repro.api import Sweep
        from repro.failures import FailurePattern
        from repro.protocols import MinProtocol
        from repro.store import default_store

        pattern = FailurePattern.failure_free(3)
        scenarios = [(tuple(int(bit) for bit in f"{index:03b}"), pattern)
                     for index in range(3)]
        spec = Sweep.of(MinProtocol(1)).on(scenarios, n=3).build()
        store = default_store(tmp_path / "cache")
        events = []
        BUS.subscribe("sweep.resume", events.append)
        try:
            spec.run(store=store)   # cold: everything missing, no "resume"
            spec.run(store=store)   # warm: sweep-level hit, no resume either
        finally:
            BUS.unsubscribe("sweep.resume", events.append)
        assert events == []
