"""The invariant linter: rule fixtures, suppressions, baseline, CLI, and the
repo-wide clean-run guarantee."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    BaselineEntry,
    LintConfig,
    all_rule_codes,
    lint_paths,
    load_baseline,
    main as lint_main,
    parse_suppressions,
    render_json,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent
SRC = REPO_ROOT / "src" / "repro"


def rules_in(result):
    return {finding.rule for finding in result.findings}


def lint_fixture(name):
    return lint_paths([FIXTURES / name], config=LintConfig())


# --------------------------------------------------------------------- rules


class TestDeterminismRules:
    def test_positive_fixture_fires_every_rule(self):
        result = lint_fixture("det_positive.py")
        assert rules_in(result) == {"DET001", "DET002", "DET003"}
        # Both sink shapes (json.dumps and str.join) are caught.
        det1 = [f for f in result.findings if f.rule == "DET001"]
        assert len(det1) == 2
        # Both random call shapes, both enumeration shapes.
        assert len([f for f in result.findings if f.rule == "DET002"]) == 2
        assert len([f for f in result.findings if f.rule == "DET003"]) == 2

    def test_negative_fixture_is_clean(self):
        result = lint_fixture("det_negative.py")
        assert result.findings == []
        assert result.suppressed == []


class TestLockRules:
    def test_positive_fixture_fires(self):
        result = lint_fixture("lock_positive.py")
        assert rules_in(result) == {"LOCK001"}
        messages = [f.message for f in result.findings]
        # Declared via _GUARDED_BY: the unlocked increment and read.
        assert any("Cache._bytes" in m for m in messages)
        assert any("Cache._entries" in m for m in messages)
        # The closure defined under the lock still counts as unlocked.
        closure = [f for f in result.findings if "clear" in
                   (FIXTURES / "lock_positive.py").read_text()
                   .splitlines()[f.line - 1]]
        assert closure, "lambda body access must be flagged"
        # Built-in contract by class name (EventBus).
        assert any("EventBus._subscribers" in m for m in messages)

    def test_negative_fixture_is_clean(self):
        result = lint_fixture("lock_negative.py")
        assert result.findings == []


class TestObsRules:
    def test_positive_fixture_fires(self):
        result = lint_fixture("obs_positive.py")
        assert rules_in(result) == {"OBS001", "OBS002"}
        assert len([f for f in result.findings if f.rule == "OBS001"]) == 3
        assert len([f for f in result.findings if f.rule == "OBS002"]) == 4

    def test_negative_fixture_is_clean(self):
        result = lint_fixture("obs_negative.py")
        assert result.findings == []


class TestApiRules:
    def test_positive_fixture_fires(self):
        result = lint_fixture("api_positive.py")
        assert rules_in(result) == {"API001", "API002"}
        messages = [f.message for f in result.findings if f.rule == "API001"]
        assert any("runner.simulate" in m for m in messages)
        assert any("runner.run_batch" in m for m in messages)
        assert any("per-run" in m for m in messages)
        api2 = [f for f in result.findings if f.rule == "API002"]
        assert len(api2) == 1
        assert "run_measurement" in api2[0].message

    def test_negative_fixture_is_clean(self):
        # Critically: simulate imported from simulation.engine (the real
        # implementation) must not be mistaken for the deprecated shim.
        result = lint_fixture("api_negative.py")
        assert result.findings == []


# --------------------------------------------------------------- suppressions


class TestSuppressions:
    def test_fixture_findings_are_all_suppressed(self):
        result = lint_fixture("suppressed.py")
        assert result.findings == []
        rules = {f.rule for f in result.suppressed}
        assert rules == {"DET001", "LOCK001"}
        assert len(result.suppressed) == 3

    def test_trailing_and_standalone_placement(self):
        source = (
            "import json\n"
            "a = json.dumps(list({1}))  # repro-lint: disable=DET001\n"
            "# repro-lint: disable=DET001\n"
            "b = json.dumps(list({2}))\n"
        )
        suppressions = parse_suppressions(source)
        assert suppressions
        from repro.analysis.lint import Finding
        assert suppressions.is_suppressed(Finding("x", 2, 1, "DET001", "m"))
        assert suppressions.is_suppressed(Finding("x", 4, 1, "DET001", "m"))
        assert not suppressions.is_suppressed(Finding("x", 4, 1, "OBS001", "m"))

    def test_family_and_all_selectors(self):
        source = (
            "x = 1  # repro-lint: disable=DET\n"
            "y = 2  # repro-lint: disable=all\n"
        )
        suppressions = parse_suppressions(source)
        from repro.analysis.lint import Finding
        assert suppressions.is_suppressed(Finding("x", 1, 1, "DET003", "m"))
        assert not suppressions.is_suppressed(Finding("x", 1, 1, "LOCK001", "m"))
        assert suppressions.is_suppressed(Finding("x", 2, 1, "LOCK001", "m"))


# ------------------------------------------------------------------ baseline


class TestBaseline:
    def test_round_trip(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        first = lint_fixture("det_positive.py")
        assert first.new, "fixture must produce findings"

        write_baseline(baseline_path, first.findings, Baseline([]))
        reloaded = load_baseline(baseline_path)
        assert len(reloaded.entries) == len(first.findings)

        second = lint_paths([FIXTURES / "det_positive.py"],
                            config=LintConfig(), baseline=reloaded)
        assert second.new == []
        assert len(second.baselined) == len(first.findings)
        assert second.stale == []
        assert second.exit_code(strict=True) == 0

    def test_justifications_survive_rewrite(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        result = lint_fixture("det_positive.py")
        write_baseline(baseline_path, result.findings, Baseline([]))
        data = json.loads(baseline_path.read_text())
        data["entries"][0]["justification"] = "grandfathered: fixture demo"
        baseline_path.write_text(json.dumps(data))

        previous = load_baseline(baseline_path)
        write_baseline(baseline_path, result.findings, previous)
        rewritten = load_baseline(baseline_path)
        assert any(e.justification == "grandfathered: fixture demo"
                   for e in rewritten.entries)

    def test_stale_entries_fail_strict(self):
        stale_entry = BaselineEntry(
            path="tests/data/lint_fixtures/det_negative.py", rule="DET001",
            message="never matches", justification="obsolete")
        result = lint_paths([FIXTURES / "det_negative.py"],
                            config=LintConfig(),
                            baseline=Baseline([stale_entry]))
        assert result.new == []
        assert result.stale == [stale_entry]
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1

    def test_baseline_is_a_multiset(self):
        result = lint_fixture("det_positive.py")
        det1 = [f for f in result.findings if f.rule == "DET001"]
        assert len(det1) == 2
        # Cover only ONE of the two identical-rule findings: the other must
        # stay new (entries are consumed, not wildcards).
        one = BaselineEntry(path=det1[0].path, rule=det1[0].rule,
                            message=det1[0].message, justification="one")
        partial = lint_paths([FIXTURES / "det_positive.py"],
                             config=LintConfig(), baseline=Baseline([one]))
        assert len([f for f in partial.baselined if f.rule == "DET001"]) == 1


# ----------------------------------------------------------------- framework


class TestFramework:
    def test_rule_registry_covers_the_four_families(self):
        codes = all_rule_codes()
        families = {code.rstrip("0123456789") for code in codes}
        assert {"DET", "LOCK", "OBS", "API"} <= families

    def test_syntax_errors_become_parse_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([bad], config=LintConfig())
        assert [f.rule for f in result.findings] == ["PARSE001"]

    def test_json_report_shape(self):
        result = lint_fixture("obs_positive.py")
        report = render_json(result)
        assert report["version"] == 1
        assert report["counts"]["new"] == len(result.new)
        assert all({"path", "line", "col", "rule", "message"}
                   <= set(entry) for entry in report["findings"])

    def test_cli_list_rules_and_fixture_failure(self, tmp_path, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "LOCK001" in out

        exit_code = lint_main([str(FIXTURES / "det_positive.py"),
                               "--baseline", str(tmp_path / "none.json")])
        assert exit_code == 1

    def test_cli_write_baseline(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        assert lint_main([str(FIXTURES / "det_positive.py"),
                          "--baseline", str(baseline_path),
                          "--write-baseline"]) == 0
        assert baseline_path.exists()
        assert lint_main([str(FIXTURES / "det_positive.py"),
                          "--baseline", str(baseline_path)]) == 0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "does-not-exist")]) == 2


# -------------------------------------------------------------- repo hygiene


class TestRepoHygiene:
    """The linter's own verdict on the production tree is part of the suite:
    a regression that reintroduces a violation fails here, not just in CI."""

    def test_repo_is_clean_under_the_committed_baseline(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        result = lint_paths([SRC], config=LintConfig(), baseline=baseline,
                            root=REPO_ROOT)
        assert result.new == [], "\n".join(f.render() for f in result.new)
        assert result.exit_code(strict=True) == 0, (
            "stale baseline entries: " + repr(result.stale))

    @pytest.mark.parametrize("module", [
        "service/jobs.py", "store/store.py"])
    def test_jobs_and_store_pin_zero_lock_det_findings(self, module):
        """PR satellite: jobs.py and store.py carry no LOCK/DET findings at
        all — not even baselined or suppressed ones."""
        result = lint_paths([SRC / module], config=LintConfig())
        flagged = [f for f in result.findings + result.suppressed
                   if f.family in {"LOCK", "DET"}]
        assert flagged == [], "\n".join(f.render() for f in flagged)
