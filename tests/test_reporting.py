"""Unit tests for the plain-text reporting helpers."""

from repro.reporting import format_comparison, format_histogram, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [{"protocol": "P_min", "bits": 25}, {"protocol": "P_basic", "bits": 120}]
        text = format_table(rows, title="bits")
        lines = text.splitlines()
        assert lines[0] == "bits"
        assert "protocol" in lines[2]
        assert "P_min" in text and "P_basic" in text
        # Header and rows have the same width.
        assert len(lines[2]) == len(lines[4])

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows)
        assert "b" in text.splitlines()[0]

    def test_column_order_override(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_floats_rendered_compactly(self):
        text = format_table([{"x": 1.5}])
        assert "1.5" in text

    def test_none_renders_blank(self):
        text = format_table([{"x": None, "y": 1}])
        assert "None" not in text


class TestComparisonAndHistogram:
    def test_format_comparison(self):
        line = format_comparison("bits", 25, 25, matches=True)
        assert line.startswith("[OK]")
        line = format_comparison("bits", 25, 26, matches=False)
        assert line.startswith("[MISMATCH]")

    def test_format_histogram(self):
        text = format_histogram({2: 5, 1: 1})
        lines = text.splitlines()
        assert lines[0].startswith("round   1")
        assert "#" in lines[1]

    def test_empty_histogram(self):
        assert format_histogram({}) == "(empty)"
