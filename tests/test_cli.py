"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, PROTOCOLS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "min"
        assert args.n == 6
        assert args.t == 2

    def test_every_registered_protocol_is_constructible(self):
        for name, factory in PROTOCOLS.items():
            protocol = factory(1)
            assert protocol.t == 1, name


class TestRunCommand:
    def test_failure_free_run_exits_zero(self, capsys):
        code = main(["run", "--protocol", "min", "--n", "4", "--t", "1",
                     "--preferences", "0,1,1,1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "EBA specification: OK" in captured.out
        assert "decided 0 in round 1" in captured.out

    def test_example71_scenario_with_fip(self, capsys):
        code = main(["run", "--protocol", "opt", "--scenario", "example71",
                     "--n", "8", "--t", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "decided 1 in round 3" in captured.out

    def test_intro_scenario_with_naive_protocol_reports_violation(self, capsys):
        code = main(["run", "--protocol", "naive0", "--scenario", "intro",
                     "--n", "4", "--t", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "violated" in captured.out

    def test_silent_agents_option(self, capsys):
        code = main(["run", "--protocol", "basic", "--n", "5", "--t", "2",
                     "--preferences", "1,1,1,1,1", "--silent", "0,1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "agent 0*" in captured.out

    def test_show_rounds_prints_message_matrix(self, capsys):
        code = main(["run", "--protocol", "min", "--n", "4", "--t", "1",
                     "--preferences", "0,1,1,1", "--show-rounds"])
        captured = capsys.readouterr()
        assert code == 0
        assert "round 1:" in captured.out
        assert "->" in captured.out

    def test_bad_preferences_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "min", "--n", "4", "--t", "1",
                  "--preferences", "0,1"])

    def test_random_scenario_is_reproducible(self, capsys):
        main(["run", "--protocol", "min", "--scenario", "random", "--n", "5",
              "--t", "1", "--seed", "3"])
        first = capsys.readouterr().out
        main(["run", "--protocol", "min", "--scenario", "random", "--n", "5",
              "--t", "1", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestExperimentCommand:
    def test_experiment_e2_prints_table(self, capsys):
        code = main(["experiment", "e2", "--n", "5", "--t", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Proposition 8.2" in captured.out

    def test_experiment_e6_prints_table(self, capsys):
        code = main(["experiment", "e6", "--n", "4", "--t", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "counterexample" in captured.out

    def test_unknown_experiment_fails(self, capsys):
        code = main(["experiment", "e99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_every_experiment(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 13)}


class TestBackendFlags:
    """Regression: ``repro-eba experiment e4 --jobs 4`` used to run serially."""

    def test_jobs_without_parallel_selects_the_process_pool(self):
        from repro.api import ParallelExecutor
        from repro.cli import _make_executor

        args = build_parser().parse_args(["experiment", "e4", "--jobs", "4"])
        assert not args.parallel  # the flag itself was never given...
        executor = _make_executor(args)
        assert isinstance(executor, ParallelExecutor)  # ...yet --jobs implies it
        assert executor.max_workers == 4

    def test_jobs_imply_parallel_on_every_backend_flagged_command(self):
        from repro.api import ParallelExecutor
        from repro.cli import _make_executor

        for argv in (["run", "--jobs", "2"],
                     ["experiment", "e4", "--jobs", "2"],
                     ["failure-models", "--jobs", "2"],
                     ["cache", "warm", "--jobs", "2"]):
            executor = _make_executor(build_parser().parse_args(argv))
            assert isinstance(executor, ParallelExecutor), argv
            assert executor.max_workers == 2, argv

    def test_non_positive_jobs_is_a_clean_cli_error(self, capsys):
        code = main(["experiment", "e4", "--n", "3", "--t", "1", "--jobs", "0"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err


class TestListCommand:
    def test_list_prints_everything(self, capsys):
        code = main(["list"])
        captured = capsys.readouterr()
        assert code == 0
        for key in EXPERIMENTS:
            assert key in captured.out
        for protocol in PROTOCOLS:
            assert protocol in captured.out


class TestCacheInspection:
    """``cache stats --json`` (schema-pinned) and ``cache missing``."""

    def test_cache_stats_json_schema(self, tmp_path, capsys):
        """The JSON document is an interface: the service's /stats endpoint
        embeds it and external tooling parses it, so its keys are pinned."""
        import json as json_module
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "warm", "--n", "3", "--t", "1",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", "--cache-dir", cache_dir]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert set(payload) == {"location", "entries", "total_bytes",
                                "by_kind", "session"}
        assert set(payload["session"]) == {"hits", "memory_hits", "misses",
                                           "puts", "corrupted", "io_errors"}
        assert payload["location"] == cache_dir
        assert payload["entries"] == 4
        assert payload["by_kind"]["implementation-report"] == 2
        assert payload["total_bytes"] > 0

    def test_service_stats_embeds_the_same_document(self, tmp_path):
        from repro.service import JobServer
        from repro.store import default_store
        store = default_store(tmp_path / "cache")
        stats = JobServer(port=0, workers=1, store=store).describe_stats()
        assert set(stats["store"]) == {"entries", "total_bytes", "by_kind",
                                       "session"}

    def test_cache_missing_cold_then_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "missing", "--n", "3", "--t", "1",
                     "--cache-dir", cache_dir]) == 1
        out = capsys.readouterr().out
        assert out.count("MISSING") == 2 and "cache warm" in out
        assert main(["cache", "warm", "--n", "3", "--t", "1",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "missing", "--n", "3", "--t", "1",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "MISSING" not in out and "all 2 artifacts cached" in out
        # --safety widens the artifact list; those reports were not warmed.
        assert main(["cache", "missing", "--n", "3", "--t", "1", "--safety",
                     "--cache-dir", cache_dir]) == 1
        out = capsys.readouterr().out
        assert out.count("MISSING") == 2 and out.count("cached ") == 2


class TestSweepResumeMessage:
    """``--cache`` surfaces partial-sweep resumes on stderr (satellite of the
    resumable-sweep machinery; the library itself stays silent)."""

    def _e2_spec(self, n, t):
        """The exact sweep ``experiment e2`` builds at (n, t)."""
        from repro.api import Sweep
        from repro.protocols import BasicProtocol, MinProtocol
        from repro.protocols.popt import OptimalFipProtocol
        from repro.workloads.scenarios import failure_free_scenarios
        labelled = failure_free_scenarios(n)
        return (Sweep.of(MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t))
                .on([scenario for _, scenario in labelled], n=n).build())

    def test_partial_cache_prints_resume_line(self, tmp_path, capsys):
        from repro.api.executors import execute_task
        from repro.store import default_store, run_task_key
        cache_dir = tmp_path / "cache"
        spec = self._e2_spec(3, 1)
        tasks = spec.tasks()
        # Simulate an interrupted sweep: exactly one run already cached.
        store = default_store(cache_dir)
        store.put(run_task_key(tasks[0]), execute_task(tasks[0]), kind="run")
        assert main(["experiment", "e2", "--n", "3", "--t", "1",
                     "--cache-dir", str(cache_dir)]) == 0
        err = capsys.readouterr().err
        assert (f"cache: resuming {len(tasks) - 1} of {len(tasks)} runs "
                "(1 already cached)") in err
        # Now fully warm: the rerun is silent (sweep-level hit, no resume).
        assert main(["experiment", "e2", "--n", "3", "--t", "1",
                     "--cache-dir", str(cache_dir)]) == 0
        assert "cache: resuming" not in capsys.readouterr().err

    def test_cold_and_uncached_runs_print_nothing(self, tmp_path, capsys):
        # Cold store: nothing to resume, no message.
        assert main(["experiment", "e2", "--n", "3", "--t", "1",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "cache: resuming" not in capsys.readouterr().err
        # No store configured: the notifier is never installed.
        assert main(["experiment", "e2", "--n", "3", "--t", "1"]) == 0
        assert "cache: resuming" not in capsys.readouterr().err

    def test_notifier_is_uninstalled_after_the_command(self, tmp_path):
        from repro.api import specs as specs_module
        from repro.obs.bus import BUS
        assert main(["experiment", "e2", "--n", "3", "--t", "1",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert specs_module._RESUME_NOTIFIER is None
        # The bus subscription the command installed is gone too.
        assert not BUS.has_subscribers("sweep.resume")
