"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, PROTOCOLS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "min"
        assert args.n == 6
        assert args.t == 2

    def test_every_registered_protocol_is_constructible(self):
        for name, factory in PROTOCOLS.items():
            protocol = factory(1)
            assert protocol.t == 1, name


class TestRunCommand:
    def test_failure_free_run_exits_zero(self, capsys):
        code = main(["run", "--protocol", "min", "--n", "4", "--t", "1",
                     "--preferences", "0,1,1,1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "EBA specification: OK" in captured.out
        assert "decided 0 in round 1" in captured.out

    def test_example71_scenario_with_fip(self, capsys):
        code = main(["run", "--protocol", "opt", "--scenario", "example71",
                     "--n", "8", "--t", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "decided 1 in round 3" in captured.out

    def test_intro_scenario_with_naive_protocol_reports_violation(self, capsys):
        code = main(["run", "--protocol", "naive0", "--scenario", "intro",
                     "--n", "4", "--t", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "violated" in captured.out

    def test_silent_agents_option(self, capsys):
        code = main(["run", "--protocol", "basic", "--n", "5", "--t", "2",
                     "--preferences", "1,1,1,1,1", "--silent", "0,1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "agent 0*" in captured.out

    def test_show_rounds_prints_message_matrix(self, capsys):
        code = main(["run", "--protocol", "min", "--n", "4", "--t", "1",
                     "--preferences", "0,1,1,1", "--show-rounds"])
        captured = capsys.readouterr()
        assert code == 0
        assert "round 1:" in captured.out
        assert "->" in captured.out

    def test_bad_preferences_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "min", "--n", "4", "--t", "1",
                  "--preferences", "0,1"])

    def test_random_scenario_is_reproducible(self, capsys):
        main(["run", "--protocol", "min", "--scenario", "random", "--n", "5",
              "--t", "1", "--seed", "3"])
        first = capsys.readouterr().out
        main(["run", "--protocol", "min", "--scenario", "random", "--n", "5",
              "--t", "1", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestExperimentCommand:
    def test_experiment_e2_prints_table(self, capsys):
        code = main(["experiment", "e2", "--n", "5", "--t", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Proposition 8.2" in captured.out

    def test_experiment_e6_prints_table(self, capsys):
        code = main(["experiment", "e6", "--n", "4", "--t", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "counterexample" in captured.out

    def test_unknown_experiment_fails(self, capsys):
        code = main(["experiment", "e99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_every_experiment(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 13)}


class TestBackendFlags:
    """Regression: ``repro-eba experiment e4 --jobs 4`` used to run serially."""

    def test_jobs_without_parallel_selects_the_process_pool(self):
        from repro.api import ParallelExecutor
        from repro.cli import _make_executor

        args = build_parser().parse_args(["experiment", "e4", "--jobs", "4"])
        assert not args.parallel  # the flag itself was never given...
        executor = _make_executor(args)
        assert isinstance(executor, ParallelExecutor)  # ...yet --jobs implies it
        assert executor.max_workers == 4

    def test_jobs_imply_parallel_on_every_backend_flagged_command(self):
        from repro.api import ParallelExecutor
        from repro.cli import _make_executor

        for argv in (["run", "--jobs", "2"],
                     ["experiment", "e4", "--jobs", "2"],
                     ["failure-models", "--jobs", "2"],
                     ["cache", "warm", "--jobs", "2"]):
            executor = _make_executor(build_parser().parse_args(argv))
            assert isinstance(executor, ParallelExecutor), argv
            assert executor.max_workers == 2, argv

    def test_non_positive_jobs_is_a_clean_cli_error(self, capsys):
        code = main(["experiment", "e4", "--n", "3", "--t", "1", "--jobs", "0"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err


class TestListCommand:
    def test_list_prints_everything(self, capsys):
        code = main(["list"])
        captured = capsys.readouterr()
        assert code == 0
        for key in EXPERIMENTS:
            assert key in captured.out
        for protocol in PROTOCOLS:
            assert protocol in captured.out
