"""Tests for the extension experiments E9 (crash vs omission) and E10 (optimality probe)."""

import pytest

from repro.experiments import crash_comparison, optimality_probe


class TestCrashComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return crash_comparison.measure(n=5, t=2, count=12, seed=17)

    def test_naive_protocol_is_correct_under_crashes(self, rows):
        crash_rows = [row for row in rows if row.failure_model.startswith("Crash")]
        naive = next(row for row in crash_rows if row.protocol == "P_naive0")
        assert naive.spec_violations == 0
        assert naive.never_later_than_pmin

    def test_naive_protocol_breaks_under_omissions(self, rows):
        omission_rows = [row for row in rows if "counterexample" in row.failure_model]
        naive = next(row for row in omission_rows if row.protocol == "P_naive0")
        assert naive.spec_violations == 1

    def test_chain_protocols_correct_under_both_models(self, rows):
        for row in rows:
            if row.protocol in ("P_min", "P_basic"):
                assert row.spec_violations == 0, row

    def test_termination_bound_respected_under_crashes(self, rows):
        for row in rows:
            if row.protocol in ("P_min", "P_basic"):
                assert row.worst_decision_round <= 2 + 2

    def test_workload_contains_staircase(self):
        scenarios = crash_comparison.crash_workload(5, 2, count=3, seed=1)
        assert len(scenarios) == 4

    def test_report_renders(self):
        text = crash_comparison.report(n=4, t=1, count=5)
        assert "crash" in text.lower()
        assert "P_naive0" in text


class TestOptimalityProbe:
    def test_pmin_probe_summary(self):
        report = optimality_probe.probe_pmin(n=3, t=1, max_deviations=8)
        assert report.deviations_tried == 8
        assert report.consistent_with_optimality

    def test_summarize_row_accounting(self):
        report = optimality_probe.probe_pmin(n=3, t=1, max_deviations=5)
        row = optimality_probe.summarize(report, 3, 1)
        assert row.deviations == 5
        assert row.refuting == 0
        assert row.spec_breaking + row.dominated_or_incomparable + row.refuting == 5
        assert row.as_row()["protocol"] == "P_min"
