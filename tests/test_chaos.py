"""Chaos tests: the fault-injection harness driving the robustness layer.

Three escalating blast radii:

* **store chaos** — a :class:`~repro.testing.FaultyBackend` erroring,
  corrupting, and stalling under a real sweep: results stay identical to the
  uncached computation, the degradation is counted, and exactly one warning
  is emitted;
* **execution chaos** — a worker process dying mid-sweep *inside the
  service*: the job retries and completes;
* **process chaos** — the crash-recovery acceptance test: ``kill -9`` of a
  journaled ``repro-eba serve`` mid-sweep, then a restarted server on the
  same journal re-serves the finished job byte-identically (no
  recomputation) and re-runs the in-flight one to completion.
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path

import pytest

from repro.api import ParallelExecutor, Sweep
from repro.protocols import MinProtocol
from repro.service import ServiceClient, run_request, sweep_request
from repro.store import ArtifactStore
from repro.store.backends import MemoryBackend
from repro.testing import (
    CrashOnceProtocol,
    FaultPlan,
    FaultyBackend,
    InjectedFault,
    ServerHarness,
)

ROOT = Path(__file__).resolve().parent.parent


def tiny_spec(count=6, seed=5):
    return Sweep.of(MinProtocol(1)).on_random(4, 1, count=count, seed=seed).build()


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ------------------------------------------------------------------ store chaos


class TestStoreChaos:
    def test_dead_backend_degrades_to_uncached_with_one_warning(self, caplog):
        plan = FaultPlan(error_ops=("get", "put", "contains"))
        backend = FaultyBackend(MemoryBackend(), plan)
        store = ArtifactStore(backend)
        spec = tiny_spec()
        baseline = spec.run()  # no store at all
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            chaotic = spec.run(store=store)
            assert chaotic == baseline
            assert any("degrading to uncached" in record.message
                       for record in caplog.records)
            stats = store.stats()
            assert stats.io_errors > 0
            assert stats.puts == 0  # nothing persisted through a dead backend
            # A second chaotic run stays silent (one warning per store) and
            # still computes the right answer.
            caplog.clear()
            assert spec.run(store=store) == baseline
            assert not caplog.records

    def test_backend_recovers_after_transient_faults(self):
        plan = FaultPlan(error_ops=("get", "put"), fail_count=1)
        backend = FaultyBackend(MemoryBackend(), plan)
        store = ArtifactStore(backend)
        assert store.get("missing") is None  # injected fault -> miss
        store.put("k", {"v": 1})             # injected fault -> skipped
        store._memory.clear()  # drop the memory layer: force backend reads
        store.put("k", {"v": 1})                 # backend healthy again
        store._memory.clear()
        assert store.get("k") == {"v": 1}
        assert store.stats().io_errors == 2

    def test_corrupted_payloads_read_as_misses(self):
        plan = FaultPlan(corrupt_gets=1)
        backend = FaultyBackend(MemoryBackend(), plan)
        store = ArtifactStore(backend, memory_entries=0)
        store.put("k", {"v": 1})
        assert store.get("k") is None  # corrupted -> miss (and deleted)
        stats = store.stats()
        assert stats.corrupted == 1 and stats.io_errors == 0
        # The entry is gone; a re-put re-establishes it.
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}

    def test_latency_injection_does_not_change_results(self):
        backend = FaultyBackend(MemoryBackend(), FaultPlan(latency=0.001))
        store = ArtifactStore(backend)
        spec = tiny_spec(count=3)
        assert spec.run(store=store) == spec.run()
        assert backend.calls["put"] > 0  # the slow path really ran

    def test_fault_plan_validates(self):
        with pytest.raises(ValueError, match="unknown backend operation"):
            FaultPlan(error_ops=("frobnicate",))
        with pytest.raises(ValueError, match="exclusive"):
            FaultPlan(error_ops=("get",), corrupt_gets=1)


# ------------------------------------------------------------------ execution chaos


class TestExecutionChaos:
    def test_service_job_survives_worker_process_death(self, tmp_path,
                                                       monkeypatch):
        """A pool worker dying mid-job inside the service: the executor
        rebuilds the pool and the job completes — no retry even needed."""
        from repro.service import JobServer, wire
        sentinel = tmp_path / "crash-in-service"
        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "crashonce",
                            lambda t: CrashOnceProtocol(t, sentinel))
        body = sweep_request([("crashonce", 1)],
                             workload={"n": 4, "t": 1, "count": 12, "seed": 3})
        executor = ParallelExecutor(max_workers=2, chunksize=1)
        with JobServer(port=0, workers=1, executor=executor,
                       store=ArtifactStore()) as server:
            client = ServiceClient(server.url)
            payload = client.submit_and_wait(body, timeout=120.0)
        assert payload["kind"] == "sweep"
        assert sentinel.exists()  # a worker process really died

    def test_injected_fault_is_retryable_via_the_service(self):
        assert issubclass(InjectedFault, OSError)
        from repro.service.workers import RETRYABLE_EXCEPTIONS
        assert isinstance(InjectedFault("x"), RETRYABLE_EXCEPTIONS)


# ------------------------------------------------------------------ process chaos


class TestKillAndRestart:
    def test_kill9_midsweep_then_restart_recovers(self, tmp_path):
        """The crash-recovery acceptance test, through real processes.

        ``kill -9`` leaves no shutdown path at all: everything the second
        server knows, it knows from the journal.
        """
        journal = tmp_path / "journal.jsonl"
        cache = tmp_path / "cache"
        harness = ServerHarness(
            ROOT, workers=1,
            extra_args=["--journal", str(journal), "--cache-dir", str(cache)])
        quick = run_request("min", 1, 3, [1, 0, 1])
        slow = sweep_request([("min", 1), ("basic", 1)],
                             workload={"n": 6, "t": 1, "count": 400, "seed": 7})
        with harness:
            url = harness.start()
            client = ServiceClient(url, retries=5, backoff=0.1)
            payload_before = client.submit_and_wait(quick, timeout=120.0)
            quick_id = client.submit(quick)["job"]
            sweep_id = client.submit(slow)["job"]
            assert wait_for(lambda: client.status(sweep_id)["state"]
                            == "running")
            harness.kill()  # SIGKILL: a crash, not a shutdown

            url2 = harness.start()
            client2 = ServiceClient(url2, retries=5, backoff=0.1)
            recovered = client2.stats()["service"]["recovered"]
            assert recovered["done"] >= 1       # the finished quick job
            assert recovered["requeued"] == 1   # the mid-flight sweep

            # The finished job is re-served byte-identically, from the
            # journal, without re-executing anything.
            status = client2.status(quick_id)
            assert status["state"] == "done" and status.get("recovered") is True
            payload_after = client2.submit_and_wait(quick, timeout=120.0)
            assert (json.dumps(payload_after, sort_keys=True)
                    == json.dumps(payload_before, sort_keys=True))

            # The in-flight sweep was re-enqueued and completes for real.
            sweep_payload = client2.wait(sweep_id, timeout=300.0)
            assert sweep_payload["kind"] == "sweep"
            stats = client2.stats()["service"]
            assert stats["executed"] == 1  # the sweep; the quick job never re-ran
