"""Unit tests for the deprecated batch-runner shims (legacy entry points).

The real orchestration layer is :mod:`repro.api` (tested in
``test_api_specs.py`` / ``test_api_executors.py``); these tests pin down the
compatibility contract of the shims: same results as before, plus a
``DeprecationWarning`` naming the replacement.
"""

import pytest

from repro.core.errors import ConfigurationError
from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol
from repro.simulation import corresponding_runs, run_batch, run_protocol, sweep
from repro.simulation.runner import simulate as simulate_shim
from repro.workloads import random_scenarios


class TestRunProtocol:
    def test_thin_wrapper(self):
        with pytest.deprecated_call():
            trace = run_protocol(MinProtocol(1), 3, [0, 1, 1])
        assert trace.protocol_name == "P_min"
        assert trace.decision_value(0) == 0


class TestSimulateShim:
    def test_matches_the_engine(self):
        from repro.simulation.engine import simulate as engine_simulate
        with pytest.deprecated_call():
            trace = simulate_shim(MinProtocol(1), 3, [0, 1, 1])
        assert trace == engine_simulate(MinProtocol(1), 3, [0, 1, 1])


class TestRunBatch:
    def test_batch_runs_every_scenario(self):
        scenarios = random_scenarios(4, 1, count=5, seed=0)
        with pytest.deprecated_call():
            result = run_batch(MinProtocol(1), 4, scenarios)
        assert len(result) == 5
        assert result.protocol_name == "P_min"
        assert all(trace.n == 4 for trace in result)


class TestCorrespondingRuns:
    def test_same_initial_state_everywhere(self):
        pattern = FailurePattern.silent(4, faulty=[2], horizon=3)
        with pytest.deprecated_call():
            runs = corresponding_runs([MinProtocol(1), BasicProtocol(1)], 4,
                                      [1, 0, 1, 1], pattern)
        assert set(runs) == {"P_min", "P_basic"}
        for trace in runs.values():
            assert trace.preferences == (1, 0, 1, 1)
            assert trace.pattern == pattern

    def test_duplicate_names_rejected_with_the_collision_named(self):
        with pytest.deprecated_call(), \
             pytest.raises(ConfigurationError, match="P_min"):
            corresponding_runs([MinProtocol(1), MinProtocol(2)], 4, [1, 1, 1, 1],
                               FailurePattern.failure_free(4))


class TestSweep:
    def test_sweep_produces_batches_per_protocol(self):
        scenarios = random_scenarios(4, 1, count=3, seed=1)
        with pytest.deprecated_call():
            results = sweep([MinProtocol(1), BasicProtocol(1)], 4, scenarios)
        assert set(results) == {"P_min", "P_basic"}
        assert all(len(batch) == 3 for batch in results.values())
