"""Unit tests for batch runners and corresponding runs."""

import pytest

from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol
from repro.simulation import corresponding_runs, run_batch, run_protocol, sweep
from repro.workloads import random_scenarios


class TestRunProtocol:
    def test_thin_wrapper(self):
        trace = run_protocol(MinProtocol(1), 3, [0, 1, 1])
        assert trace.protocol_name == "P_min"
        assert trace.decision_value(0) == 0


class TestRunBatch:
    def test_batch_runs_every_scenario(self):
        scenarios = random_scenarios(4, 1, count=5, seed=0)
        result = run_batch(MinProtocol(1), 4, scenarios)
        assert len(result) == 5
        assert result.protocol_name == "P_min"
        assert all(trace.n == 4 for trace in result)


class TestCorrespondingRuns:
    def test_same_initial_state_everywhere(self):
        pattern = FailurePattern.silent(4, faulty=[2], horizon=3)
        runs = corresponding_runs([MinProtocol(1), BasicProtocol(1)], 4, [1, 0, 1, 1], pattern)
        assert set(runs) == {"P_min", "P_basic"}
        for trace in runs.values():
            assert trace.preferences == (1, 0, 1, 1)
            assert trace.pattern == pattern

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            corresponding_runs([MinProtocol(1), MinProtocol(2)], 4, [1, 1, 1, 1],
                               FailurePattern.failure_free(4))


class TestSweep:
    def test_sweep_produces_batches_per_protocol(self):
        scenarios = random_scenarios(4, 1, count=3, seed=1)
        results = sweep([MinProtocol(1), BasicProtocol(1)], 4, scenarios)
        assert set(results) == {"P_min", "P_basic"}
        assert all(len(batch) == 3 for batch in results.values())
