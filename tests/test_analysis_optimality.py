"""Unit tests for the one-step-deviation optimality probe."""

import pytest

from repro.analysis.optimality import (
    context_scenarios,
    earlier_decision_candidates,
    probe_optimality,
    reachable_states,
)
from repro.core.types import DECIDE_0, DECIDE_1, NOOP
from repro.protocols import DelayedMinProtocol, MinProtocol
from repro.systems import gamma_min
from repro.workloads import enumerate_preferences, random_scenarios


@pytest.fixture(scope="module")
def small_context():
    return gamma_min(3, 1)


@pytest.fixture(scope="module")
def small_workload(small_context):
    """A reduced workload: the failure-free pattern plus a few random adversaries."""
    scenarios = [(prefs, small_context.failure_model.failure_free())
                 for prefs in enumerate_preferences(3)]
    scenarios += random_scenarios(3, 1, count=10, seed=9, horizon=small_context.horizon)
    return scenarios


class TestHelpers:
    def test_earlier_decision_candidates(self):
        assert earlier_decision_candidates(NOOP) == (DECIDE_0, DECIDE_1)
        assert earlier_decision_candidates(DECIDE_0) == (DECIDE_1,)
        assert earlier_decision_candidates(DECIDE_1) == (DECIDE_0,)

    def test_context_scenarios_is_exhaustive(self, small_context):
        scenarios = context_scenarios(small_context)
        assert len(scenarios) == len(list(small_context.patterns())) * 8

    def test_reachable_states_are_undecided(self, small_context, small_workload):
        states = reachable_states(MinProtocol(1), 3, small_workload, small_context.horizon)
        assert states
        assert all(state.decided is None for state in states)
        assert all(state.time < small_context.horizon for state in states)


class TestProbe:
    def test_pmin_probe_is_consistent_with_optimality(self, small_context):
        # Soundness of the probe requires the *exhaustive* workload of the
        # context: with only a sample of adversaries a speed-up can look
        # correct simply because the run that breaks it was not sampled.  Cap
        # the number of deviations to keep the test fast; the benchmark runs
        # the full probe.
        report = probe_optimality(MinProtocol(1), small_context, max_deviations=8)
        assert report.deviations_tried == 8
        assert report.consistent_with_optimality
        assert report.counterexamples() == []

    def test_every_deviation_is_classified(self, small_context, small_workload):
        report = probe_optimality(MinProtocol(1), small_context, scenarios=small_workload,
                                  max_deviations=6)
        assert report.deviations_tried == 6
        for outcome in report.outcomes:
            assert outcome.violates_spec or not outcome.strictly_dominates or \
                outcome.refutes_optimality

    def test_probe_detects_improvable_protocols(self, small_workload):
        # The delayed baseline is *not* optimal: deciding 1 one round earlier at
        # its post-deadline waiting state is correct and strictly dominating,
        # so the probe must refuse to certify it.  The context horizon is
        # stretched to t + 2 + delay so the delayed protocol itself terminates
        # within the simulated window.
        delayed_context = gamma_min(3, 1, horizon=4)
        report = probe_optimality(DelayedMinProtocol(1, delay=1), delayed_context,
                                  scenarios=small_workload)
        assert not report.consistent_with_optimality
        refutation = report.counterexamples()[0]
        assert refutation.deviating_action == DECIDE_1
        assert not refutation.violates_spec
