"""Unit tests for repro.exchange.messages."""

import pytest

from repro.exchange import CommGraph
from repro.exchange.messages import (
    DecideNotification,
    GraphMessage,
    InitOneHeartbeat,
    is_decide_notification,
    message_bits,
)


class TestDecideNotification:
    def test_one_bit(self):
        assert DecideNotification(0).bit_size(10) == 1
        assert DecideNotification(1).bit_size(3) == 1

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            DecideNotification(2)

    def test_value_semantics(self):
        assert DecideNotification(0) == DecideNotification(0)
        assert DecideNotification(0) != DecideNotification(1)


class TestHeartbeat:
    def test_two_bits(self):
        assert InitOneHeartbeat().bit_size(10) == 2

    def test_heartbeats_are_interchangeable(self):
        assert InitOneHeartbeat() == InitOneHeartbeat()


class TestGraphMessage:
    def test_bit_size_delegates_to_graph(self):
        graph = CommGraph.initial(4, agent=0, init=1)
        message = GraphMessage(graph)
        assert message.bit_size(4) == graph.bit_size()


class TestHelpers:
    def test_message_bits_of_none_is_zero(self):
        assert message_bits(None, 5) == 0

    def test_message_bits_of_notification(self):
        assert message_bits(DecideNotification(1), 5) == 1

    def test_is_decide_notification(self):
        assert is_decide_notification(DecideNotification(0))
        assert is_decide_notification(DecideNotification(0), value=0)
        assert not is_decide_notification(DecideNotification(0), value=1)
        assert not is_decide_notification(InitOneHeartbeat())
        assert not is_decide_notification(None)
