"""Tests for the execution backends: serial/parallel equivalence and the ResultSet."""

import pytest

from repro.api import (
    Executor,
    ParallelExecutor,
    ResultSet,
    SerialExecutor,
    Sweep,
    corresponding,
    executor_from_flags,
    resolve_executor,
    run_sweep,
)
from repro.core.errors import ConfigurationError
from repro.protocols import BasicProtocol, MinProtocol, NaiveZeroBiasedProtocol, OptimalFipProtocol
from repro.workloads import example_7_1, intro_counterexample, random_scenarios


def example_7_1_spec(n=6, t=2):
    protocols = (MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t))
    return Sweep.of(*protocols).on([example_7_1(n=n, t=t)], n=n).build()


def intro_spec(n=4, t=1):
    protocols = (NaiveZeroBiasedProtocol(t), MinProtocol(t))
    return Sweep.of(*protocols).on([intro_counterexample(n=n, t=t)], n=n).build()


class TestExecutorEquivalence:
    def test_example_7_1_serial_equals_parallel(self):
        spec = example_7_1_spec()
        serial = spec.run(SerialExecutor())
        parallel = spec.run(ParallelExecutor(max_workers=2))
        assert serial == parallel
        assert serial.trace("P_opt").last_decision_round(nonfaulty_only=True) == 3

    def test_intro_counterexample_serial_equals_parallel(self):
        spec = intro_spec()
        serial = spec.run(SerialExecutor())
        parallel = spec.run(ParallelExecutor(max_workers=2))
        assert serial == parallel

    def test_fixed_seed_200_scenario_sweep_is_byte_identical_across_backends(self):
        import pickle
        spec = (Sweep.of(MinProtocol(1), BasicProtocol(1))
                .on_random(4, 1, count=200, seed=13).build())
        serial = spec.run(SerialExecutor())
        parallel = spec.run(ParallelExecutor(max_workers=3, chunksize=7))
        assert serial == parallel
        # Byte-identical contents: every trace serializes to the same bytes.
        # (Whole-ResultSet pickles can differ in memoization topology only:
        # the serial traces share scenario objects with the spec, the
        # parallel ones are worker-side copies.)
        for serial_row, parallel_row in zip(serial.traces, parallel.traces):
            for serial_trace, parallel_trace in zip(serial_row, parallel_row):
                assert pickle.dumps(serial_trace) == pickle.dumps(parallel_trace)

    def test_popt_traces_byte_identical_across_backends(self):
        import pickle
        spec = (Sweep.of(OptimalFipProtocol(2), MinProtocol(2))
                .on([example_7_1(n=6, t=2)], n=6).build())
        serial = spec.run(SerialExecutor())
        parallel = spec.run(ParallelExecutor(max_workers=2, chunksize=1))
        for name in spec.protocol_names:
            assert pickle.dumps(serial.trace(name)) == pickle.dumps(parallel.trace(name))

    def test_default_executor_is_serial(self):
        spec = intro_spec()
        assert spec.run() == spec.run(SerialExecutor())


class TestParallelExecutor:
    def test_order_is_scenario_order_not_completion_order(self):
        scenarios = random_scenarios(4, 1, count=10, seed=2)
        results = run_sweep([MinProtocol(1)], scenarios, n=4,
                            executor=ParallelExecutor(max_workers=2, chunksize=1))
        for scenario, trace in zip(scenarios, results["P_min"]):
            assert trace.preferences == tuple(scenario[0])
            assert trace.pattern == scenario[1]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(chunksize=0)

    def test_single_task_avoids_the_pool(self):
        trace = (Sweep.of(MinProtocol(1))
                 .on([intro_counterexample(n=4, t=1)], n=4)
                 .run(ParallelExecutor())).only()
        assert trace.protocol_name == "P_min"


class TestExecutorFromFlags:
    """Regression: ``--jobs N`` without ``--parallel`` used to silently run serially."""

    def test_jobs_alone_implies_the_parallel_backend(self):
        executor = executor_from_flags(parallel=False, jobs=4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 4

    def test_parallel_with_jobs_sets_the_worker_count(self):
        executor = executor_from_flags(parallel=True, jobs=2)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 2

    def test_parallel_alone_uses_all_cores(self):
        executor = executor_from_flags(parallel=True)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers is None

    def test_no_flags_stay_serial(self):
        assert isinstance(executor_from_flags(), SerialExecutor)

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_non_positive_jobs_rejected_at_the_flag_layer(self, jobs):
        with pytest.raises(ConfigurationError, match="--jobs"):
            executor_from_flags(parallel=False, jobs=jobs)
        with pytest.raises(ConfigurationError, match="--jobs"):
            executor_from_flags(parallel=True, jobs=jobs)


class TestResolveExecutor:
    def test_none_resolves_to_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_custom_executor_passes_through(self):
        class Recording:
            def __init__(self):
                self.calls = 0

            def run_tasks(self, tasks):
                self.calls += 1
                return SerialExecutor().run_tasks(tasks)

        recording = Recording()
        assert isinstance(recording, Executor)
        spec = intro_spec()
        spec.run(recording)
        assert recording.calls == 1

    def test_non_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor(object())


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        protocols = (MinProtocol(1), BasicProtocol(1))
        return run_sweep(protocols, random_scenarios(4, 1, count=3, seed=1), n=4)

    def test_batch_view_matches_legacy_shape(self, results):
        batch = results.batch("P_min")
        assert batch.protocol_name == "P_min"
        assert len(batch) == 3
        assert set(results.batches()) == {"P_min", "P_basic"}

    def test_corresponding_view(self, results):
        runs = results.corresponding(1)
        assert set(runs) == {"P_min", "P_basic"}
        assert runs["P_min"].preferences == runs["P_basic"].preferences
        assert runs["P_min"].pattern == runs["P_basic"].pattern

    def test_unknown_protocol_rejected(self, results):
        with pytest.raises(ConfigurationError, match="P_opt"):
            results["P_opt"]

    def test_compare_and_pairwise(self, results):
        comparison = results.compare("P_min", "P_basic")
        assert comparison.scenarios == 3
        assert set(results.pairwise()) == {("P_min", "P_basic")}

    def test_check_eba_and_violation_counts(self):
        results = (Sweep.of(NaiveZeroBiasedProtocol(1), MinProtocol(1))
                   .on([intro_counterexample(n=4, t=1)], n=4).run())
        violations = results.spec_violations()
        assert violations["P_naive0"] == 1
        assert violations["P_min"] == 0

    def test_rows_and_table_render(self, results):
        rows = results.rows()
        assert len(rows) == 6
        table = results.table(title="demo")
        assert "P_min" in table and "demo" in table

    def test_corresponding_helper(self):
        preferences, pattern = intro_counterexample(n=4, t=1)
        runs = corresponding([MinProtocol(1), BasicProtocol(1)], 4, preferences, pattern)
        assert set(runs) == {"P_min", "P_basic"}

    def test_mismatched_shape_rejected(self, results):
        with pytest.raises(ConfigurationError):
            ResultSet(protocol_names=("a", "b"), scenarios=results.scenarios,
                      traces=(results.traces[0],))
        with pytest.raises(ConfigurationError):
            ResultSet(protocol_names=("a",), scenarios=results.scenarios,
                      traces=(results.traces[0][:1],))


class TestPoolRebuild:
    """ParallelExecutor survives worker-process death (BrokenProcessPool)."""

    def crash_spec(self, sentinel, count=12):
        from repro.testing import CrashOnceProtocol
        return (Sweep.of(CrashOnceProtocol(1, sentinel))
                .on_random(4, 1, count=count, seed=3).build())

    def test_dead_worker_is_survived_and_results_match_serial(self, tmp_path):
        import pickle
        sentinel = tmp_path / "crash-once"
        spec = self.crash_spec(sentinel)
        # Parallel first: exactly one pool worker wins the sentinel race and
        # dies hard mid-chunk, breaking the pool; the executor rebuilds it and
        # retries only the unfinished chunks.
        parallel = spec.run(ParallelExecutor(max_workers=2, chunksize=1))
        assert sentinel.exists()  # the crash really happened
        # Serial afterwards: the sentinel now exists, so every act() is plain
        # P_min — the honest baseline the retried chunks must match.
        serial = spec.run(SerialExecutor())
        assert serial == parallel
        for serial_row, parallel_row in zip(serial.traces, parallel.traces):
            for serial_trace, parallel_trace in zip(serial_row, parallel_row):
                assert pickle.dumps(serial_trace) == pickle.dumps(parallel_trace)

    def test_exhausted_pool_retries_raises_broken_pool(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool
        sentinel = tmp_path / "crash-once-no-budget"
        spec = self.crash_spec(sentinel)
        with pytest.raises(BrokenProcessPool, match="giving up"):
            spec.run(ParallelExecutor(max_workers=2, chunksize=1,
                                      pool_retries=0))

    def test_ordinary_task_exceptions_are_not_retried(self, tmp_path):
        """A task *raising* (vs dying) is a real error: it propagates."""
        from repro.testing import FailOnceProtocol, InjectedFault
        sentinel = tmp_path / "fail-once"
        spec = (Sweep.of(FailOnceProtocol(1, sentinel))
                .on_random(4, 1, count=8, seed=3).build())
        with pytest.raises(InjectedFault):
            spec.run(ParallelExecutor(max_workers=2, chunksize=1))

    def test_negative_pool_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(pool_retries=-1)
