"""Unit tests for trace metrics and aggregation."""

import math

import pytest

from repro.analysis import (
    aggregate_metrics,
    decision_round_histogram,
    last_nonfaulty_decision_round,
    nonfaulty_decision_rounds,
    run_metrics,
)
from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol
from repro.simulation import run_batch, simulate
from repro.workloads import all_ones, random_scenarios


class TestRunMetrics:
    def test_basic_fields(self):
        trace = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        metrics = run_metrics(trace)
        assert metrics.protocol_name == "P_min"
        assert metrics.n == 4
        assert metrics.num_faulty == 0
        assert metrics.total_bits == 16
        assert metrics.decision_rounds[0] == 1
        assert metrics.decision_values[2] == 0
        assert metrics.last_nonfaulty_decision_round == 2
        assert metrics.earliest_decision_round == 1

    def test_metrics_with_faulty_agents(self):
        pattern = FailurePattern.silent(4, faulty=[0], horizon=4)
        trace = simulate(MinProtocol(1), 4, all_ones(4), pattern)
        metrics = run_metrics(trace)
        assert metrics.num_faulty == 1
        assert metrics.last_nonfaulty_decision_round == 3

    def test_nonfaulty_round_helpers(self):
        pattern = FailurePattern.silent(4, faulty=[0], horizon=4)
        trace = simulate(MinProtocol(1), 4, all_ones(4), pattern)
        assert nonfaulty_decision_rounds(trace) == [3, 3, 3]
        assert last_nonfaulty_decision_round(trace) == 3


class TestAggregation:
    def test_aggregate_over_batch(self):
        scenarios = random_scenarios(4, 1, count=6, seed=2)
        batch = run_batch(MinProtocol(1), 4, scenarios)
        aggregate = aggregate_metrics(list(batch))
        assert aggregate.runs == 6
        assert aggregate.protocol_name == "P_min"
        assert aggregate.max_last_decision_round <= 3
        assert not math.isnan(aggregate.mean_decision_round)
        row = aggregate.as_row()
        assert row["protocol"] == "P_min"
        assert row["runs"] == 6

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])

    def test_aggregate_rejects_mixed_protocols(self):
        a = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        b = simulate(BasicProtocol(1), 4, [0, 1, 1, 1])
        with pytest.raises(ValueError):
            aggregate_metrics([a, b])


class TestHistogram:
    def test_histogram_counts_rounds(self):
        traces = [simulate(MinProtocol(1), 4, [0, 1, 1, 1]),
                  simulate(MinProtocol(1), 4, all_ones(4))]
        histogram = decision_round_histogram(traces)
        assert histogram[1] == 1     # the init-0 agent
        assert histogram[2] == 3     # the other agents in the first run
        assert histogram[3] == 4     # the all-ones run decides at t + 2 = 3
        assert list(histogram) == sorted(histogram)
