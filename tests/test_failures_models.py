"""Unit tests for repro.failures.models."""

import random

import pytest

from repro.core.errors import ConfigurationError, FailureModelError
from repro.failures import CrashModel, FailureFreeModel, FailurePattern, SendingOmissionModel


class TestSendingOmissionModel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SendingOmissionModel(n=3, t=3)
        with pytest.raises(ConfigurationError):
            SendingOmissionModel(n=0, t=0)
        with pytest.raises(ConfigurationError):
            SendingOmissionModel(n=3, t=-1)

    def test_name(self):
        assert SendingOmissionModel(n=5, t=2).name == "SO(2)"

    def test_admits_failure_free(self):
        model = SendingOmissionModel(n=4, t=1)
        assert model.admits(model.failure_free())

    def test_rejects_too_many_faulty(self):
        model = SendingOmissionModel(n=4, t=1)
        pattern = FailurePattern(n=4, faulty=frozenset({0, 1}))
        assert not model.admits(pattern)
        with pytest.raises(FailureModelError):
            model.validate(pattern)

    def test_rejects_wrong_size(self):
        model = SendingOmissionModel(n=4, t=1)
        with pytest.raises(FailureModelError):
            model.validate(FailurePattern.failure_free(5))

    def test_sample_is_admissible_and_reproducible(self):
        model = SendingOmissionModel(n=5, t=2)
        first = model.sample(random.Random(7), horizon=3)
        second = model.sample(random.Random(7), horizon=3)
        assert first == second
        assert model.admits(first)

    def test_sample_respects_num_faulty(self):
        model = SendingOmissionModel(n=5, t=2)
        pattern = model.sample(random.Random(1), horizon=2, num_faulty=2)
        assert pattern.num_faulty == 2

    def test_enumeration_count_matches_formula(self):
        model = SendingOmissionModel(n=3, t=1)
        patterns = list(model.enumerate(horizon=1))
        # 1 failure-free + 3 choices of faulty agent * 2^(1 round * 2 receivers)
        assert len(patterns) == 1 + 3 * 4
        assert len(patterns) == model.count_patterns(horizon=1)
        assert len(set(patterns)) == len(patterns)

    def test_enumeration_respects_max_faulty(self):
        model = SendingOmissionModel(n=3, t=2)
        capped = list(model.enumerate(horizon=1, max_faulty=0))
        assert capped == [model.failure_free()]

    def test_enumerated_patterns_are_admissible(self):
        model = SendingOmissionModel(n=3, t=1)
        for pattern in model.enumerate(horizon=2):
            assert model.admits(pattern)


class TestCrashModel:
    def test_crash_pattern_structure(self):
        model = CrashModel(n=4, t=2)
        pattern = model.crash_pattern({1: (1, [2])}, horizon=3)
        # Before the crash round agent 1 sends normally.
        assert pattern.delivered(0, 1, 0)
        # In the crash round only agent 2 is reached.
        assert pattern.delivered(1, 1, 2)
        assert not pattern.delivered(1, 1, 0)
        # Afterwards nothing is delivered.
        assert not pattern.delivered(2, 1, 3)

    def test_validate_accepts_crash_patterns(self):
        model = CrashModel(n=4, t=1)
        pattern = model.crash_pattern({0: (0, [])}, horizon=3)
        assert model.admits(pattern)

    def test_validate_rejects_resumed_sender(self):
        model = CrashModel(n=3, t=1)
        # Agent 1 is silent in round 1 but reaches agent 2 again in round 2
        # (while still dropping its message to agent 0): not a crash.
        pattern = FailurePattern.from_blocked(3, [(0, 1, 0), (0, 1, 2), (1, 1, 0)])
        with pytest.raises(FailureModelError):
            model.validate(pattern)

    def test_too_many_crashes_rejected(self):
        model = CrashModel(n=4, t=1)
        with pytest.raises(FailureModelError):
            model.crash_pattern({0: (0, []), 1: (0, [])}, horizon=2)

    def test_sample_is_admissible(self):
        model = CrashModel(n=5, t=2)
        pattern = model.sample(random.Random(3), horizon=3)
        assert model.admits(pattern)

    def test_enumeration_contains_failure_free(self):
        model = CrashModel(n=3, t=1)
        patterns = list(model.enumerate(horizon=1))
        assert model.failure_free() in patterns
        assert all(model.admits(p) for p in patterns)


class TestFailureFreeModel:
    def test_only_empty_pattern(self):
        model = FailureFreeModel(4)
        assert list(model.enumerate(horizon=5)) == [FailurePattern.failure_free(4)]
        assert model.sample(random.Random(0), horizon=2) == FailurePattern.failure_free(4)

    def test_rejects_faulty_patterns(self):
        model = FailureFreeModel(4)
        with pytest.raises(FailureModelError):
            model.validate(FailurePattern(n=4, faulty=frozenset({1})))
