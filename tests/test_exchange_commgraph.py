"""Unit tests for the communication-graph representation (Appendix A.2.7)."""

import pytest

from repro.exchange import CommGraph, FullInformationExchange
from repro.failures import FailurePattern
from repro.protocols import OptimalFipProtocol
from repro.simulation import simulate


def graph_of(trace, agent, time):
    """Helper: the communication graph held by ``agent`` at ``time`` in a trace."""
    return trace.state_of(agent, time).graph


@pytest.fixture
def failure_free_trace():
    """A 4-agent failure-free run of the FIP (3 rounds)."""
    return simulate(OptimalFipProtocol(1), 4, [1, 0, 1, 1], horizon=3)


@pytest.fixture
def silent_trace():
    """A 4-agent run where agent 0 is faulty and silent."""
    pattern = FailurePattern.silent(4, faulty=[0], horizon=4)
    return simulate(OptimalFipProtocol(1), 4, [1, 1, 1, 1], pattern, horizon=3)


class TestInitialGraph:
    def test_knows_only_own_preference(self):
        graph = CommGraph.initial(4, agent=2, init=0)
        assert graph.time == 0
        assert graph.preference(2) == 0
        assert graph.preference(0) is None
        assert graph.known_preferences() == {2: 0}
        assert graph.labelled_edges() == frozenset()

    def test_bit_size_at_time_zero(self):
        graph = CommGraph.initial(5, agent=0, init=1)
        assert graph.bit_size() == 2 * 5


class TestAdvance:
    def test_direct_observations_are_recorded(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 1)
        for sender in range(4):
            assert graph.label(0, sender, 0) is True

    def test_omissions_are_recorded_as_blocked(self, silent_trace):
        graph = graph_of(silent_trace, 1, 1)
        assert graph.label(0, 0, 1) is False
        assert graph.label(0, 2, 1) is True

    def test_merge_learns_other_preferences(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 1)
        assert graph.known_preferences() == {0: 1, 1: 0, 2: 1, 3: 1}

    def test_second_round_merges_indirect_labels(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 2)
        # Agent 0 learns from agent 1's graph that agent 2's round-1 message to 1 arrived.
        assert graph.label(0, 2, 1) is True

    def test_wrong_received_length_rejected(self):
        graph = CommGraph.initial(3, agent=0, init=1)
        with pytest.raises(Exception):
            graph.advance(0, [None, None])

    def test_graphs_are_value_objects(self, failure_free_trace):
        a = graph_of(failure_free_trace, 0, 1)
        b = graph_of(failure_free_trace, 0, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != graph_of(failure_free_trace, 0, 2)

    def test_bit_size_grows_quadratically(self, failure_free_trace):
        g1 = graph_of(failure_free_trace, 0, 1)
        g2 = graph_of(failure_free_trace, 0, 2)
        assert g1.bit_size() == 2 * 16 + 8
        assert g2.bit_size() == 2 * 32 + 8


class TestHearsFrom:
    def test_failure_free_frontier_is_everything(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 2)
        frontier = graph.heard_frontier(0, 2)
        assert frontier[0] == 2
        assert frontier[1] == frontier[2] == frontier[3] == 1

    def test_silent_agent_is_never_heard(self, silent_trace):
        graph = graph_of(silent_trace, 1, 2)
        frontier = graph.heard_frontier(1, 2)
        assert frontier[0] == -1
        assert frontier[2] == 1

    def test_hears_from_predicate(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 2)
        assert graph.hears_from((1, 1), 0, 2)
        assert graph.hears_from((1, 0), 0, 2)
        assert not graph.hears_from((1, 2), 0, 2)


class TestRestriction:
    def test_restrict_reconstructs_other_agents_graph(self, failure_free_trace):
        graph_0 = graph_of(failure_free_trace, 0, 2)
        reconstructed = graph_0.restrict(1, 1)
        actual = graph_of(failure_free_trace, 1, 1)
        assert reconstructed == actual

    def test_restrict_reconstructs_under_failures(self, silent_trace):
        graph_1 = graph_of(silent_trace, 1, 2)
        reconstructed = graph_1.restrict(2, 1)
        actual = graph_of(silent_trace, 2, 1)
        assert reconstructed == actual

    def test_restrict_to_own_past(self, failure_free_trace):
        graph_0 = graph_of(failure_free_trace, 0, 2)
        reconstructed = graph_0.restrict(0, 1)
        actual = graph_of(failure_free_trace, 0, 1)
        assert reconstructed == actual


class TestFailureKnowledge:
    def test_known_faulty_detects_silent_agent(self, silent_trace):
        graph = graph_of(silent_trace, 1, 1)
        assert graph.known_faulty(1, 1) == frozenset({0})

    def test_known_faulty_empty_in_failure_free_run(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 2)
        assert graph.known_faulty(0, 2) == frozenset()

    def test_known_faulty_at_time_zero_is_empty(self, silent_trace):
        graph = graph_of(silent_trace, 1, 1)
        assert graph.known_faulty(1, 0) == frozenset()

    def test_distributed_faulty_unions_individual_knowledge(self, silent_trace):
        graph = graph_of(silent_trace, 1, 2)
        assert graph.distributed_faulty({1, 2, 3}, 1) == frozenset({0})
        assert graph.distributed_faulty({1, 2, 3}, 0) == frozenset()

    def test_possibly_nonfaulty_complements(self, silent_trace):
        graph = graph_of(silent_trace, 1, 1)
        assert graph.possibly_nonfaulty(1) == frozenset({1, 2, 3})


class TestValueKnowledge:
    def test_known_values_failure_free(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 2)
        assert graph.known_values(0, 1) == frozenset({0, 1})
        assert graph.known_values(0, 0) == frozenset({1})

    def test_known_values_of_other_agent(self, failure_free_trace):
        graph = graph_of(failure_free_trace, 0, 2)
        # What agent 0 knows agent 1 knew at time 1: everyone's preference.
        assert graph.known_values(1, 1) == frozenset({0, 1})


class TestFipExchange:
    def test_local_state_requires_graph(self):
        exchange = FullInformationExchange(3)
        state = exchange.initial_state(0, 1)
        assert state.graph.time == 0
        with pytest.raises(ValueError):
            type(state)(agent=0, n=3, time=0, init=1, decided=None, jd=None, graph=None)

    def test_graph_time_tracks_state_time(self, failure_free_trace):
        for time in range(failure_free_trace.horizon + 1):
            state = failure_free_trace.state_of(2, time)
            assert state.graph.time == state.time
