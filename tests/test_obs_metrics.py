"""Tests for the unified metrics registry (:mod:`repro.obs.metrics`) and its
HTTP export surface (``GET /metrics`` on the job server).

Registry semantics are tested on **fresh** :class:`MetricsRegistry` instances
so they cannot collide with the process-wide :data:`REGISTRY` other suites
increment.  The server tests scrape the real registry and therefore assert
*relative* monotonicity (scrape-to-scrape deltas), never absolute totals.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    render_table,
)


# ------------------------------------------------------------------ registry


class TestRegistrySemantics:
    def test_counters_are_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("demo_total", "a demo")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 4  # the rejected inc changed nothing

    def test_get_or_create_returns_the_same_handle(self):
        registry = MetricsRegistry()
        first = registry.counter("demo_total", "help text")
        second = registry.counter("demo_total")
        assert first is second
        assert first.help == "help text"  # first registration wins

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("demo_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("demo_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.histogram("demo_total")

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "9starts_with_digit", "has-dash", "has space"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad)

    def test_reset_for_tests_zeroes_in_place(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total")
        g = registry.gauge("g")
        h = registry.histogram("h_seconds")
        c.inc(5)
        g.set(7)
        h.observe(0.2)
        registry.reset_for_tests()
        # The handles other modules cached stay registered and live...
        assert registry.counter("c_total") is c
        assert registry.gauge("g") is g
        # ...but read zero again.
        assert c.value == 0
        assert g.value == 0
        assert h.count == 0 and h.sum == 0.0
        c.inc()
        assert registry.snapshot()["c_total"]["value"] == 1

    def test_gauge_set_function_with_error_fallback(self):
        g = Gauge("depth")
        g.set(3)
        g.set_function(lambda: 11)
        assert g.value == 11

        def boom():
            raise RuntimeError("sampler died")

        g.set_function(boom)
        assert g.value == 3  # falls back to the last set value
        g.set(4)  # plain set clears the callback
        assert g.value == 4

    def test_gauge_inc_dec(self):
        g = Gauge("inflight")
        g.inc()
        g.inc(2)
        g.dec()
        assert g.value == 2

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h._snapshot()
        assert snap["buckets"] == {"0.1": 2, "1": 3, "10": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(55.6)
        rendered = h._render()
        assert 'lat_seconds_bucket{le="+Inf"} 5' in rendered
        assert "lat_seconds_count 5" in rendered

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("empty_seconds", buckets=())

    def test_default_buckets_cover_the_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRendering:
    def test_prometheus_exposition_has_help_and_type_lines(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "counts b").inc(2)
        registry.gauge("a_depth").set(1.5)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        # Sorted by metric name: a_depth before b_total.
        assert lines[0] == "# TYPE a_depth gauge"
        assert lines[1] == "a_depth 1.5"
        assert lines[2] == "# HELP b_total counts b"
        assert lines[3] == "# TYPE b_total counter"
        assert lines[4] == "b_total 2"

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.gauge("g").set(2)
        registry.histogram("h_seconds").observe(0.01)
        snap = registry.snapshot()
        assert snap["c_total"] == {"type": "counter", "help": "", "value": 1}
        assert snap["g"]["type"] == "gauge" and snap["g"]["value"] == 2
        h = snap["h_seconds"]
        assert h["type"] == "histogram" and h["count"] == 1
        assert json.loads(json.dumps(snap)) == snap  # JSON-safe

    def test_render_table(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.histogram("h_seconds").observe(0.5)
        table = render_table(registry.snapshot())
        assert "c_total" in table and "3" in table
        assert "count=1" in table
        assert render_table({}) == "(no metrics recorded)"


# ------------------------------------------------------------------ /metrics


def parse_prometheus(text: str) -> dict:
    """Simple-value lines of a text exposition as ``{name: float}``."""
    values = {}
    for line in text.splitlines():
        if line.startswith("#") or "{" in line:
            continue
        name, _, raw = line.partition(" ")
        values[name] = float(raw)
    return values


class TestMetricsEndpoint:
    @pytest.fixture()
    def server(self):
        from repro.service import JobServer
        from repro.store import ArtifactStore
        with JobServer(port=0, workers=1, store=ArtifactStore()) as server:
            yield server

    def scrape(self, server, suffix="/metrics"):
        with urllib.request.urlopen(server.url + suffix, timeout=10.0) as resp:
            return resp.headers.get("Content-Type"), resp.read().decode("utf-8")

    def test_content_type_and_json_parity(self, server):
        content_type, body = self.scrape(server)
        assert content_type == PROMETHEUS_CONTENT_TYPE
        json_type, json_body = self.scrape(server, "/metrics?format=json")
        assert json_type.startswith("application/json")
        snapshot = json.loads(json_body)
        text_values = parse_prometheus(body)
        for name, entry in snapshot.items():
            if entry["type"] == "histogram":
                assert text_values[f"{name}_count"] == entry["count"]
            else:
                assert text_values[name] == pytest.approx(entry["value"])

    def test_counters_are_monotonic_across_scrapes(self, server):
        from repro.service import ServiceClient, run_request
        _, before_text = self.scrape(server)
        before = parse_prometheus(before_text)
        client = ServiceClient(server.url)
        body = run_request("min", 1, 3, [1, 0, 1])
        client.submit_and_wait(body, timeout=60.0)
        client.submit_and_wait(body, timeout=60.0)  # warm: a store hit
        _, after_text = self.scrape(server)
        after = parse_prometheus(after_text)
        for name, value in after.items():
            if name.endswith("_total") or name.endswith("_count"):
                assert value >= before.get(name, 0.0), name
        assert (after["repro_jobs_submitted_total"]
                >= before.get("repro_jobs_submitted_total", 0.0) + 2)
        assert (after["repro_jobs_executed_total"]
                >= before.get("repro_jobs_executed_total", 0.0) + 1)

    def test_stats_embeds_the_registry(self, server):
        from repro.service import ServiceClient
        stats = ServiceClient(server.url).stats()
        assert stats["uptime_seconds"] >= 0
        assert "started_at" in stats and "version" in stats
        metrics = stats["metrics"]
        assert "repro_jobs_submitted_total" in metrics
        assert metrics["repro_jobs_submitted_total"]["type"] == "counter"
