"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.failures import FailurePattern, SendingOmissionModel
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running exhaustive checks (deselect with -m 'not slow')")


@pytest.fixture
def failure_free_4():
    """The failure-free pattern for four agents."""
    return FailurePattern.failure_free(4)


@pytest.fixture
def so_model_4_1():
    """The sending-omissions model SO(1) for four agents."""
    return SendingOmissionModel(n=4, t=1)


@pytest.fixture(params=["min", "basic", "opt"])
def any_protocol_t1(request):
    """Each of the paper's three protocols with failure bound t=1."""
    return {
        "min": MinProtocol(1),
        "basic": BasicProtocol(1),
        "opt": OptimalFipProtocol(1),
    }[request.param]


@pytest.fixture(params=["min", "basic", "opt"])
def any_protocol_t2(request):
    """Each of the paper's three protocols with failure bound t=2."""
    return {
        "min": MinProtocol(2),
        "basic": BasicProtocol(2),
        "opt": OptimalFipProtocol(2),
    }[request.param]
