"""Unit tests for interpreted systems and context descriptors."""

import pytest

from repro.api import SerialExecutor
from repro.core.errors import ModelCheckingError
from repro.failures import SendingOmissionModel
from repro.protocols import BasicProtocol, MinProtocol
from repro.systems import (
    Point,
    PointSet,
    build_system,
    build_system_for_model,
    gamma_basic,
    gamma_fip,
    gamma_min,
)


class TestBuildSystem:
    def test_runs_cover_patterns_times_preferences(self):
        model = SendingOmissionModel(n=3, t=1)
        patterns = list(model.enumerate(horizon=1))
        system = build_system(MinProtocol(1), 3, horizon=1, patterns=patterns)
        assert len(system.runs) == len(patterns) * 8
        assert system.horizon == 1
        assert system.protocol_name == "P_min"

    def test_points_enumerate_all_times(self):
        model = SendingOmissionModel(n=3, t=0)
        system = build_system_for_model(MinProtocol(0), model, horizon=2)
        assert len(system.points) == len(system.runs) * 3
        assert Point(0, 0) in system.points

    def test_local_state_lookup(self):
        model = SendingOmissionModel(n=3, t=0)
        system = build_system_for_model(MinProtocol(0), model, horizon=2)
        state = system.local_state(Point(0, 1), 2)
        assert state.time == 1
        assert state.agent == 2

    def test_nonfaulty_lookup(self):
        model = SendingOmissionModel(n=3, t=1)
        system = build_system_for_model(MinProtocol(1), model, horizon=1)
        for run_index, run in enumerate(system.runs):
            assert system.nonfaulty(Point(run_index, 0)) == run.nonfaulty

    def test_wrong_length_preference_vector_rejected(self):
        model = SendingOmissionModel(n=3, t=1)
        patterns = [model.failure_free()]
        with pytest.raises(ModelCheckingError, match=r"\(0, 1\)"):
            build_system(MinProtocol(1), 3, horizon=1, patterns=patterns,
                         preference_vectors=[(0, 1, 1), (0, 1)])

    def test_executor_backend_builds_identical_systems(self):
        model = SendingOmissionModel(n=3, t=1)
        patterns = list(model.enumerate(horizon=1))
        serial = build_system(MinProtocol(1), 3, horizon=1, patterns=patterns)
        via_executor = build_system(MinProtocol(1), 3, horizon=1, patterns=patterns,
                                    executor=SerialExecutor())
        assert len(serial.runs) == len(via_executor.runs)
        for left, right in zip(serial.runs, via_executor.runs):
            assert left.preferences == right.preferences
            assert left.pattern == right.pattern
            assert left.rounds == right.rounds


class TestDenseIndexing:
    def test_point_index_round_trip(self):
        model = SendingOmissionModel(n=3, t=0)
        system = build_system_for_model(MinProtocol(0), model, horizon=2)
        for index, point in enumerate(system.points):
            assert system.point_index(point) == index
            assert system.point_at(index) == point
        assert system.num_points == len(system.points)
        assert system.full_mask == (1 << system.num_points) - 1

    def test_class_masks_partition_the_full_mask(self):
        model = SendingOmissionModel(n=3, t=1)
        system = build_system_for_model(MinProtocol(1), model, horizon=2)
        for agent in range(3):
            partition = system.partition(agent)
            union = 0
            for mask in partition.class_masks:
                assert union & mask == 0  # disjoint
                union |= mask
            assert union == system.full_mask
            # The first index is the lowest set bit of the class mask.
            for mask, first in zip(partition.class_masks, partition.class_first_indices):
                assert mask & -mask == 1 << first

    def test_atom_masks_match_pointwise_definitions(self):
        model = SendingOmissionModel(n=3, t=1)
        system = build_system_for_model(MinProtocol(1), model, horizon=2)
        for agent in range(3):
            nonfaulty = system.point_set(system.nonfaulty_mask(agent))
            init_zero = system.point_set(system.init_mask(agent, 0))
            undecided = system.point_set(system.decided_mask(agent, None))
            for point in system.points:
                assert (point in nonfaulty) == (agent in system.nonfaulty(point))
                assert (point in init_zero) == (system.run(point).preferences[agent] == 0)
                assert (point in undecided) == (
                    system.local_state(point, agent).decided is None)
        for time in range(system.horizon + 1):
            at_time = system.point_set(system.time_mask(time))
            assert at_time == frozenset(
                point for point in system.points if point.time == time)
        assert system.time_mask(system.horizon + 5) == 0

    def test_point_set_operators(self):
        model = SendingOmissionModel(n=3, t=0)
        system = build_system_for_model(MinProtocol(0), model, horizon=1)
        everything = system.point_set(system.full_mask)
        at_zero = system.point_set(system.time_mask(0))
        at_one = system.point_set(system.time_mask(1))
        assert isinstance(at_zero | at_one, PointSet)
        assert (at_zero | at_one) == everything
        assert (at_zero & at_one) == frozenset()
        assert at_zero.isdisjoint(at_one)
        assert (everything - at_one) == at_zero
        assert (at_zero ^ everything) == at_one
        assert at_zero <= everything
        assert at_zero < everything
        assert everything >= at_one
        assert everything > at_one
        assert not at_zero < at_zero
        assert hash(at_zero) == hash(frozenset(at_zero))
        assert "not a point" not in at_zero


class TestEquivalenceClasses:
    def test_classes_partition_points(self):
        model = SendingOmissionModel(n=3, t=1)
        system = build_system_for_model(MinProtocol(1), model, horizon=1)
        classes = system.equivalence_classes(0)
        covered = [point for points in classes.values() for point in points]
        assert sorted(covered) == sorted(system.points)

    def test_indistinguishable_points_share_local_state(self):
        model = SendingOmissionModel(n=3, t=1)
        system = build_system_for_model(MinProtocol(1), model, horizon=1)
        point = Point(3, 1)
        peers = system.indistinguishable(1, point)
        assert point in peers
        state = system.local_state(point, 1)
        assert all(system.local_state(peer, 1) == state for peer in peers)

    def test_synchrony_keeps_times_separate(self):
        model = SendingOmissionModel(n=3, t=1)
        system = build_system_for_model(MinProtocol(1), model, horizon=2)
        for agent in range(3):
            for points in system.equivalence_classes(agent).values():
                assert len({point.time for point in points}) == 1


class TestContexts:
    def test_gamma_min_defaults(self):
        context = gamma_min(4, 1)
        assert context.n == 4
        assert context.t == 1
        assert context.horizon == 3
        assert context.name == "gamma_min"
        assert "gamma_min" in repr(context)

    def test_gamma_basic_and_fip_names(self):
        assert gamma_basic(3, 1).name == "gamma_basic"
        assert gamma_fip(3, 1).name == "gamma_fip"

    def test_context_builds_system_for_protocol(self):
        context = gamma_basic(3, 1, horizon=2, max_faulty_enumerated=0)
        system = context.build_system(BasicProtocol(1))
        assert system.protocol_name == "P_basic"
        assert len(system.runs) == 8

    def test_max_faulty_cap_restricts_patterns(self):
        capped = gamma_min(3, 1, max_faulty_enumerated=0)
        assert len(list(capped.patterns())) == 1
        uncapped = gamma_min(3, 1)
        assert len(list(uncapped.patterns())) > 1

    def test_explicit_horizon_override(self):
        assert gamma_min(3, 1, horizon=5).horizon == 5
