"""Property-based tests (hypothesis) for the core invariants.

The EBA specification must hold for *every* admissible failure pattern and
preference vector, so it is a natural target for property-based testing: we
draw random sending-omission adversaries and preference vectors and check the
specification, the termination bound, 0-chain structure, and cross-protocol
dominance invariants on the resulting runs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compare_traces, zero_chains
from repro.exchange import CommGraph
from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol
from repro.simulation import simulate
from repro.spec import check_eba

# ---------------------------------------------------------------------------- strategies

#: Shared hypothesis settings: the FIP runs are comparatively slow, so keep the
#: example counts modest and silence the too-slow health check.
PROPERTY_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def eba_scenarios(draw, min_n=3, max_n=6, max_t=2):
    """A random (n, t, preferences, SO(t) failure pattern) quadruple."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    t = draw(st.integers(min_value=0, max_value=min(max_t, n - 2)))
    preferences = tuple(draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)))
    faulty = draw(st.sets(st.integers(0, n - 1), max_size=t))
    horizon = t + 2
    omissions = set()
    for sender in faulty:
        for round_index in range(horizon):
            for receiver in range(n):
                if receiver == sender:
                    continue
                if draw(st.booleans()):
                    omissions.add((round_index, sender, receiver))
    pattern = FailurePattern(n=n, faulty=frozenset(faulty), omissions=frozenset(omissions))
    return n, t, preferences, pattern


# ---------------------------------------------------------------------------- EBA invariants


class TestSpecificationProperties:
    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_pmin_satisfies_eba_with_deadline(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(MinProtocol(t), n, preferences, pattern)
        report = check_eba(trace, deadline=t + 2, validity_for_faulty=True,
                           termination_for_faulty=True)
        assert report.ok, report.violations()

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_pbasic_satisfies_eba_with_deadline(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(BasicProtocol(t), n, preferences, pattern)
        report = check_eba(trace, deadline=t + 2, validity_for_faulty=True,
                           termination_for_faulty=True)
        assert report.ok, report.violations()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_popt_satisfies_eba_with_deadline(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern)
        report = check_eba(trace, deadline=t + 2, validity_for_faulty=True,
                           termination_for_faulty=True)
        assert report.ok, report.violations()

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_unanimous_preferences_force_that_decision(self, scenario):
        n, t, preferences, pattern = scenario
        for value in (0, 1):
            unanimous = tuple(value for _ in range(n))
            trace = simulate(MinProtocol(t), n, unanimous, pattern)
            assert all(trace.decision_value(agent) == value for agent in range(n))


class TestChainProperties:
    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_every_zero_decision_is_backed_by_a_chain(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(MinProtocol(t), n, preferences, pattern)
        chains = zero_chains(trace)
        chain_endpoints = {(chain.last_agent, chain.length) for chain in chains}
        for agent in range(n):
            round_number = trace.decision_round(agent)
            if round_number is not None and trace.decision_value(agent) == 0:
                assert (agent, round_number - 1) in chain_endpoints

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_chains_start_with_an_initial_zero_and_are_distinct(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(MinProtocol(t), n, preferences, pattern)
        for chain in zero_chains(trace):
            assert preferences[chain.agents[0]] == 0
            assert len(set(chain.agents)) == len(chain.agents)


class TestDominanceProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=1))
    def test_popt_never_decides_later_than_pmin(self, scenario):
        n, t, preferences, pattern = scenario
        fast = simulate(OptimalFipProtocol(t), n, preferences, pattern)
        slow = simulate(MinProtocol(t), n, preferences, pattern)
        result = compare_traces([fast], [slow])
        assert result.first_dominates, result.summary()

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_pbasic_never_decides_later_than_pmin(self, scenario):
        n, t, preferences, pattern = scenario
        fast = simulate(BasicProtocol(t), n, preferences, pattern)
        slow = simulate(MinProtocol(t), n, preferences, pattern)
        result = compare_traces([fast], [slow])
        assert result.first_dominates, result.summary()


class TestCommGraphProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_graph_merge_is_monotone_and_truthful(self, scenario):
        """An agent's graph only grows over time and never records false deliveries."""
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern, horizon=t + 2)
        for agent in range(n):
            previous_labels: frozenset = frozenset()
            previous_prefs: dict = {}
            for time in range(trace.horizon + 1):
                graph: CommGraph = trace.state_of(agent, time).graph
                labels = graph.labelled_edges()
                assert previous_labels <= labels
                prefs = graph.known_preferences()
                assert set(previous_prefs) <= set(prefs)
                for other, value in prefs.items():
                    assert preferences[other] == value
                for (round_index, sender, receiver, delivered) in labels:
                    actually_delivered = (
                        trace.rounds[round_index].delivered[receiver][sender] is not None)
                    assert delivered == actually_delivered
                previous_labels, previous_prefs = labels, prefs

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_cone_restriction_reconstructs_true_states(self, scenario):
        """Full information really is full: whenever ``(j, τ)`` hears-into an
        observer's point, the observer's cone restriction of its own graph is
        *exactly* the graph agent ``j`` actually held at time ``τ`` in the run.
        This is the property the ``P_opt`` decision oracle relies on.
        """
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern, horizon=t + 2)
        final_time = trace.horizon
        for observer in range(n):
            observer_graph = trace.state_of(observer, final_time).graph
            frontier = observer_graph.heard_frontier(observer, final_time)
            for agent in range(n):
                for time in range(0, frontier[agent] + 1):
                    reconstructed = observer_graph.restrict(agent, time)
                    actual = trace.state_of(agent, time).graph
                    assert reconstructed == actual

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_known_faulty_agents_are_really_faulty(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern, horizon=t + 2)
        for agent in range(n):
            final = trace.state_of(agent, trace.horizon).graph
            known = final.known_faulty(agent, trace.horizon)
            assert known <= pattern.faulty


class TestFailurePatternProperties:
    @settings(max_examples=60, deadline=None)
    @given(scenario=eba_scenarios())
    def test_swap_roles_is_involutive(self, scenario):
        n, t, preferences, pattern = scenario
        if pattern.num_faulty == 0:
            return
        faulty_agent = min(pattern.faulty)
        other = min(set(range(n)) - pattern.faulty)
        swapped_twice = pattern.swap_roles(faulty_agent, other).swap_roles(faulty_agent, other)
        assert swapped_twice == pattern
