"""Property-based tests (hypothesis) for the core invariants.

The EBA specification must hold for *every* admissible failure pattern and
preference vector, so it is a natural target for property-based testing: we
draw random sending-omission adversaries and preference vectors and check the
specification, the termination bound, 0-chain structure, and cross-protocol
dominance invariants on the resulting runs.

The word-array kernel behind the vectorized model checker gets the same
treatment: arbitrary-width int-mask ↔ ``uint64``-word-array round-trips
(non-multiple-of-64 widths included — the tail bits of the last word are the
classic vectorization bug) and the ordering/limit contract of the vectorized
``counterexamples()`` scan.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compare_traces, zero_chains
from repro.exchange import CommGraph
from repro.failures import FailurePattern, SendingOmissionModel
from repro.logic import ModelChecker, words
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol
from repro.simulation import simulate
from repro.spec import check_eba
from repro.systems import build_system

# ---------------------------------------------------------------------------- strategies

#: Shared hypothesis settings: the FIP runs are comparatively slow, so keep the
#: example counts modest and silence the too-slow health check.
PROPERTY_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def eba_scenarios(draw, min_n=3, max_n=6, max_t=2):
    """A random (n, t, preferences, SO(t) failure pattern) quadruple."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    t = draw(st.integers(min_value=0, max_value=min(max_t, n - 2)))
    preferences = tuple(draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)))
    faulty = draw(st.sets(st.integers(0, n - 1), max_size=t))
    horizon = t + 2
    omissions = set()
    for sender in faulty:
        for round_index in range(horizon):
            for receiver in range(n):
                if receiver == sender:
                    continue
                if draw(st.booleans()):
                    omissions.add((round_index, sender, receiver))
    pattern = FailurePattern(n=n, faulty=frozenset(faulty), omissions=frozenset(omissions))
    return n, t, preferences, pattern


# ---------------------------------------------------------------------------- EBA invariants


class TestSpecificationProperties:
    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_pmin_satisfies_eba_with_deadline(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(MinProtocol(t), n, preferences, pattern)
        report = check_eba(trace, deadline=t + 2, validity_for_faulty=True,
                           termination_for_faulty=True)
        assert report.ok, report.violations()

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_pbasic_satisfies_eba_with_deadline(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(BasicProtocol(t), n, preferences, pattern)
        report = check_eba(trace, deadline=t + 2, validity_for_faulty=True,
                           termination_for_faulty=True)
        assert report.ok, report.violations()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_popt_satisfies_eba_with_deadline(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern)
        report = check_eba(trace, deadline=t + 2, validity_for_faulty=True,
                           termination_for_faulty=True)
        assert report.ok, report.violations()

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_unanimous_preferences_force_that_decision(self, scenario):
        n, t, preferences, pattern = scenario
        for value in (0, 1):
            unanimous = tuple(value for _ in range(n))
            trace = simulate(MinProtocol(t), n, unanimous, pattern)
            assert all(trace.decision_value(agent) == value for agent in range(n))


class TestChainProperties:
    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_every_zero_decision_is_backed_by_a_chain(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(MinProtocol(t), n, preferences, pattern)
        chains = zero_chains(trace)
        chain_endpoints = {(chain.last_agent, chain.length) for chain in chains}
        for agent in range(n):
            round_number = trace.decision_round(agent)
            if round_number is not None and trace.decision_value(agent) == 0:
                assert (agent, round_number - 1) in chain_endpoints

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_chains_start_with_an_initial_zero_and_are_distinct(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(MinProtocol(t), n, preferences, pattern)
        for chain in zero_chains(trace):
            assert preferences[chain.agents[0]] == 0
            assert len(set(chain.agents)) == len(chain.agents)


class TestDominanceProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=1))
    def test_popt_never_decides_later_than_pmin(self, scenario):
        n, t, preferences, pattern = scenario
        fast = simulate(OptimalFipProtocol(t), n, preferences, pattern)
        slow = simulate(MinProtocol(t), n, preferences, pattern)
        result = compare_traces([fast], [slow])
        assert result.first_dominates, result.summary()

    @settings(**PROPERTY_SETTINGS)
    @given(scenario=eba_scenarios())
    def test_pbasic_never_decides_later_than_pmin(self, scenario):
        n, t, preferences, pattern = scenario
        fast = simulate(BasicProtocol(t), n, preferences, pattern)
        slow = simulate(MinProtocol(t), n, preferences, pattern)
        result = compare_traces([fast], [slow])
        assert result.first_dominates, result.summary()


class TestCommGraphProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_graph_merge_is_monotone_and_truthful(self, scenario):
        """An agent's graph only grows over time and never records false deliveries."""
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern, horizon=t + 2)
        for agent in range(n):
            previous_labels: frozenset = frozenset()
            previous_prefs: dict = {}
            for time in range(trace.horizon + 1):
                graph: CommGraph = trace.state_of(agent, time).graph
                labels = graph.labelled_edges()
                assert previous_labels <= labels
                prefs = graph.known_preferences()
                assert set(previous_prefs) <= set(prefs)
                for other, value in prefs.items():
                    assert preferences[other] == value
                for (round_index, sender, receiver, delivered) in labels:
                    actually_delivered = (
                        trace.rounds[round_index].delivered[receiver][sender] is not None)
                    assert delivered == actually_delivered
                previous_labels, previous_prefs = labels, prefs

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_cone_restriction_reconstructs_true_states(self, scenario):
        """Full information really is full: whenever ``(j, τ)`` hears-into an
        observer's point, the observer's cone restriction of its own graph is
        *exactly* the graph agent ``j`` actually held at time ``τ`` in the run.
        This is the property the ``P_opt`` decision oracle relies on.
        """
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern, horizon=t + 2)
        final_time = trace.horizon
        for observer in range(n):
            observer_graph = trace.state_of(observer, final_time).graph
            frontier = observer_graph.heard_frontier(observer, final_time)
            for agent in range(n):
                for time in range(0, frontier[agent] + 1):
                    reconstructed = observer_graph.restrict(agent, time)
                    actual = trace.state_of(agent, time).graph
                    assert reconstructed == actual

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(scenario=eba_scenarios(max_n=5, max_t=2))
    def test_known_faulty_agents_are_really_faulty(self, scenario):
        n, t, preferences, pattern = scenario
        trace = simulate(OptimalFipProtocol(t), n, preferences, pattern, horizon=t + 2)
        for agent in range(n):
            final = trace.state_of(agent, trace.horizon).graph
            known = final.known_faulty(agent, trace.horizon)
            assert known <= pattern.faulty


# ---------------------------------------------------------------------------- word-array kernel


@st.composite
def masked_widths(draw, max_points=300):
    """A random ``(num_points, mask)`` pair, biased toward awkward widths.

    Widths straddle the 64-bit word boundaries (63, 64, 65, 127, 128, …) as
    well as arbitrary sizes, so the last word's tail bits are exercised in
    every alignment.
    """
    boundary = draw(st.booleans())
    if boundary:
        base = draw(st.sampled_from([1, 63, 64, 65, 127, 128, 129, 191, 192, 255, 256]))
        num_points = min(base, max_points)
    else:
        num_points = draw(st.integers(min_value=1, max_value=max_points))
    mask = draw(st.integers(min_value=0, max_value=(1 << num_points) - 1))
    return num_points, mask


class TestWordArrayRoundTrip:
    """int mask ↔ uint64 word array conversions are lossless at every width."""

    @settings(max_examples=120, deadline=None)
    @given(pair=masked_widths())
    def test_mask_words_round_trip_is_lossless(self, pair):
        num_points, mask = pair
        array = words.mask_to_words(mask, num_points)
        assert len(array) == words.word_count(num_points)
        assert words.words_to_mask(array) == mask
        # Canonical form: no garbage in the tail bits of the last word, so
        # masking with the full set is the identity.
        assert words.words_to_mask(array & words.full_words(num_points)) == mask

    @settings(max_examples=120, deadline=None)
    @given(pair=masked_widths())
    def test_bit_vector_round_trip_is_lossless(self, pair):
        num_points, mask = pair
        array = words.mask_to_words(mask, num_points)
        bits = words.unpack_words(array, num_points)
        assert len(bits) == num_points
        assert all(int(bits[i]) == ((mask >> i) & 1) for i in range(num_points))
        assert words.words_to_mask(words.pack_bits(bits)) == mask

    @settings(max_examples=120, deadline=None)
    @given(pair=masked_widths())
    def test_index_recovery_matches_int_bit_iteration(self, pair):
        num_points, mask = pair
        array = words.mask_to_words(mask, num_points)
        expected = [i for i in range(num_points) if (mask >> i) & 1]
        assert list(words.indices_of_words(array, num_points)) == expected
        assert list(words.indices_of_mask(mask)) == expected

    @settings(max_examples=120, deadline=None)
    @given(pair=masked_widths())
    def test_complement_and_shifts_agree_with_int_semantics(self, pair):
        num_points, mask = pair
        array = words.mask_to_words(mask, num_points)
        full_array = words.full_words(num_points)
        full_mask = (1 << num_points) - 1
        assert words.words_to_mask(full_array & ~array) == full_mask & ~mask
        assert words.words_to_mask(words.shift_down_words(array)) == mask >> 1
        assert words.words_to_mask(words.shift_up_words(array, full_array)) \
            == (mask << 1) & full_mask


@pytest.fixture(scope="module")
def counterexample_system():
    """One small system with both backend checkers, for the scan properties."""
    model = SendingOmissionModel(n=3, t=1)
    patterns = list(model.enumerate(2))[:8]
    system = build_system(MinProtocol(1), 3, 2, patterns)
    return (system,
            ModelChecker(system, backend="int"),
            ModelChecker(system, backend="words"))


class TestCounterexampleScanProperties:
    """Ordering/limit invariants of the vectorized ``counterexamples()``."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           limit=st.integers(min_value=0, max_value=80))
    def test_ordering_limit_and_backend_agreement(self, counterexample_system,
                                                  seed, limit):
        from test_logic_bitset_reference import random_formula

        system, int_checker, word_checker = counterexample_system
        formula = random_formula(random.Random(seed), system.n, system.horizon,
                                 depth=3)
        result = word_checker.counterexamples(formula, limit=limit)
        # Limit: never more than asked for, and exactly the failing-point
        # count when that is smaller.
        failing_total = system.num_points - bin(
            word_checker.satisfying_mask(formula)).count("1")
        assert len(result) == min(limit, failing_total)
        # Ordering: strictly increasing dense indices — sorted, no duplicates.
        indices = [system.point_index(point) for point in result]
        assert indices == sorted(set(indices))
        # Every reported point really fails, per both backends.
        assert all(not word_checker.holds(formula, point) for point in result)
        # The vectorized recovery agrees with the int-path extraction exactly.
        assert result == int_checker.counterexamples(formula, limit=limit)


class TestFailurePatternProperties:
    @settings(max_examples=60, deadline=None)
    @given(scenario=eba_scenarios())
    def test_swap_roles_is_involutive(self, scenario):
        n, t, preferences, pattern = scenario
        if pattern.num_faulty == 0:
            return
        faulty_agent = min(pattern.faulty)
        other = min(set(range(n)) - pattern.faulty)
        swapped_twice = pattern.swap_roles(faulty_agent, other).swap_roles(faulty_agent, other)
        assert swapped_twice == pattern
