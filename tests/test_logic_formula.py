"""Unit tests for the formula AST and derived constructors."""

from repro.logic import (
    And,
    CommonKnowledge,
    DecidedEquals,
    InitEquals,
    IsNonfaulty,
    Knows,
    NONFAULTY,
    Next,
    Not,
    Or,
    Previous,
    TRUE,
    common_knowledge_t_faulty,
    decided,
    deciding,
    exists_value,
    just_decided,
    no_nonfaulty_decided,
    nobody_deciding,
    someone_just_decided,
    undecided,
)


class TestValueSemantics:
    def test_atoms_are_hashable_value_objects(self):
        assert InitEquals(0, 1) == InitEquals(0, 1)
        assert InitEquals(0, 1) != InitEquals(0, 0)
        assert hash(DecidedEquals(1, None)) == hash(DecidedEquals(1, None))

    def test_connectives_compare_structurally(self):
        a = And((InitEquals(0, 1), IsNonfaulty(0)))
        b = And((InitEquals(0, 1), IsNonfaulty(0)))
        assert a == b
        assert a != And((IsNonfaulty(0), InitEquals(0, 1)))

    def test_operator_sugar(self):
        conjunction = InitEquals(0, 1) & IsNonfaulty(1)
        assert isinstance(conjunction, And)
        disjunction = InitEquals(0, 1) | IsNonfaulty(1)
        assert isinstance(disjunction, Or)
        negation = ~InitEquals(0, 1)
        assert isinstance(negation, Not)
        implication = InitEquals(0, 1).implies(IsNonfaulty(1))
        assert isinstance(implication, Or)


class TestDerivedConstructors:
    def test_decided_and_undecided(self):
        formula = decided(2)
        assert isinstance(formula, Or)
        assert DecidedEquals(2, 0) in formula.operands
        assert undecided(2) == DecidedEquals(2, None)

    def test_just_decided_uses_previous(self):
        formula = just_decided(1, 0)
        assert isinstance(formula, And)
        assert DecidedEquals(1, 0) in formula.operands
        assert Previous(DecidedEquals(1, None)) in formula.operands

    def test_deciding_uses_next(self):
        formula = deciding(1, 0)
        assert DecidedEquals(1, None) in formula.operands
        assert Next(DecidedEquals(1, 0)) in formula.operands

    def test_exists_value_ranges_over_agents(self):
        formula = exists_value(3, 0)
        assert formula.operands == (InitEquals(0, 0), InitEquals(1, 0), InitEquals(2, 0))

    def test_someone_just_decided_and_nobody_deciding(self):
        assert len(someone_just_decided(4, 0).operands) == 4
        negated = nobody_deciding(4, 0)
        assert len(negated.operands) == 4
        assert all(isinstance(op, Not) for op in negated.operands)

    def test_no_nonfaulty_decided_guards_with_membership(self):
        formula = no_nonfaulty_decided(2, 1)
        assert len(formula.operands) == 2

    def test_common_knowledge_t_faulty_enumerates_subsets(self):
        formula = common_knowledge_t_faulty(4, 2, TRUE)
        # C(4, 2) = 6 candidate faulty sets.
        assert len(formula.operands) == 6
        assert all(isinstance(op, CommonKnowledge) for op in formula.operands)
        assert all(op.group == NONFAULTY for op in formula.operands)

    def test_common_knowledge_t_faulty_with_t_zero(self):
        formula = common_knowledge_t_faulty(3, 0, InitEquals(0, 1))
        assert len(formula.operands) == 1


class TestKnowledgeOperators:
    def test_knows_wraps_operand(self):
        formula = Knows(2, exists_value(3, 0))
        assert formula.agent == 2
        assert isinstance(formula.operand, Or)

    def test_repr_is_informative(self):
        assert "K_1" in repr(Knows(1, TRUE))
        assert "C_N" in repr(CommonKnowledge(NONFAULTY, TRUE))
        assert "init_0=1" in repr(InitEquals(0, 1))
