"""Unit tests for repro.core.agents."""

import pytest

from repro.core.agents import (
    all_agents,
    complement,
    format_agent_set,
    validate_agent,
    validate_agent_set,
)
from repro.core.errors import ConfigurationError


class TestAllAgents:
    def test_enumerates_range(self):
        assert all_agents(4) == (0, 1, 2, 3)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            all_agents(0)


class TestValidation:
    def test_validate_agent_in_range(self):
        assert validate_agent(2, 4) == 2

    def test_validate_agent_out_of_range(self):
        with pytest.raises(ConfigurationError):
            validate_agent(4, 4)
        with pytest.raises(ConfigurationError):
            validate_agent(-1, 4)

    def test_validate_agent_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            validate_agent(True, 4)

    def test_validate_agent_set(self):
        assert validate_agent_set([0, 2], 4) == frozenset({0, 2})

    def test_validate_agent_set_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            validate_agent_set([0, 5], 4)


class TestComplement:
    def test_complement(self):
        assert complement({0, 2}, 4) == frozenset({1, 3})

    def test_complement_of_everything_is_empty(self):
        assert complement(range(3), 3) == frozenset()


def test_format_agent_set_sorts():
    assert format_agent_set(frozenset({3, 1})) == "{1, 3}"
