"""Unit tests for P_opt, the polynomial-time optimal full-information protocol."""

import pytest

from repro.core.errors import ProtocolError
from repro.exchange import FullInformationExchange
from repro.exchange.fip import FipLocalState
from repro.failures import FailurePattern, silent_adversary
from repro.protocols import DecisionOracle, OptimalFipProtocol, UNKNOWN
from repro.simulation import simulate
from repro.spec import check_eba
from repro.workloads import all_ones, example_7_1, hidden_chain_scenario


class TestBasicBehaviour:
    def test_decides_zero_immediately_with_initial_zero(self):
        trace = simulate(OptimalFipProtocol(1), 4, [0, 1, 1, 1])
        assert trace.decision_round(0) == 1
        assert trace.decision_value(0) == 0

    def test_failure_free_all_ones_decides_in_round_two(self):
        trace = simulate(OptimalFipProtocol(2), 6, all_ones(6))
        assert all(trace.decision_round(agent) == 2 for agent in range(6))
        assert all(trace.decision_value(agent) == 1 for agent in range(6))

    def test_zero_propagates_through_chain(self):
        preferences, pattern = hidden_chain_scenario(6, chain_length=2)
        trace = simulate(OptimalFipProtocol(3), 6, preferences, pattern)
        assert trace.decision_value(2) == 0
        assert trace.decision_round(2) == 3
        assert check_eba(trace).ok

    def test_exchange_is_full_information(self):
        assert isinstance(OptimalFipProtocol(1).make_exchange(4), FullInformationExchange)

    def test_rejects_non_fip_states(self):
        from repro.exchange.base import LocalState

        plain = LocalState(agent=0, n=4, time=0, init=1, decided=None, jd=None)
        with pytest.raises(ProtocolError):
            OptimalFipProtocol(1).act(plain)

    def test_rejects_inconsistent_graph_time(self):
        exchange = FullInformationExchange(3)
        state = exchange.initial_state(0, 1)
        broken = FipLocalState(agent=0, n=3, time=2, init=1, decided=None, jd=None,
                               graph=state.graph)
        with pytest.raises(ProtocolError):
            OptimalFipProtocol(1).act(broken)


class TestCommonKnowledgeRule:
    def test_example_7_1_decides_in_round_three(self):
        preferences, pattern = example_7_1(n=8, t=4)
        trace = simulate(OptimalFipProtocol(4), 8, preferences, pattern)
        for agent in sorted(pattern.nonfaulty):
            assert trace.decision_round(agent) == 3
            assert trace.decision_value(agent) == 1

    def test_without_common_knowledge_rule_waits_until_deadline(self):
        preferences, pattern = example_7_1(n=8, t=4)
        ablated = OptimalFipProtocol(4, use_common_knowledge=False)
        trace = simulate(ablated, 8, preferences, pattern)
        for agent in sorted(pattern.nonfaulty):
            assert trace.decision_round(agent) == 4 + 2

    def test_partial_exposure_uses_chain_counting_not_common_knowledge(self):
        # Only one of the t = 2 allowed faulty agents is silent, so the faulty
        # set is not pinned down and the common-knowledge shortcut cannot fire.
        # Full information still lets agents rule out a hidden 0-chain one
        # round early (a chain hidden at time 2 would need two distinct stale
        # agents, and only the silent one is stale), so P_opt decides in round
        # 3 via the chain-counting rule whether or not the common-knowledge
        # rules are enabled, while P_min must wait for its t + 2 deadline.
        from repro.protocols import MinProtocol

        n, t = 6, 2
        pattern = silent_adversary(n, faulty=[0], horizon=t + 3)
        for fip in (OptimalFipProtocol(t), OptimalFipProtocol(t, use_common_knowledge=False)):
            trace = simulate(fip, n, all_ones(n), pattern)
            for agent in sorted(pattern.nonfaulty):
                assert trace.decision_round(agent) == 3
        min_trace = simulate(MinProtocol(t), n, all_ones(n), pattern)
        for agent in sorted(pattern.nonfaulty):
            assert min_trace.decision_round(agent) == t + 2

    def test_common_knowledge_rule_satisfies_spec(self):
        preferences, pattern = example_7_1(n=7, t=3)
        trace = simulate(OptimalFipProtocol(3), 7, preferences, pattern)
        assert check_eba(trace, deadline=5, validity_for_faulty=True).ok


class TestDecisionOracle:
    def make_trace(self, n=5, t=2, preferences=None, pattern=None, horizon=3):
        if preferences is None:
            preferences = [0, 1, 1, 1, 1]
        return simulate(OptimalFipProtocol(t), n, preferences, pattern, horizon=horizon)

    def test_reconstructs_other_agents_decisions(self):
        trace = self.make_trace()
        state = trace.state_of(1, 2)
        oracle = DecisionOracle(state.graph, anchor=1, anchor_time=2, t=2)
        # Agent 0 decided 0 in round 1 (time 0); agent 1 knows it.
        assert oracle.known_decision(0, 0) == 0
        # Agent 2 decided 0 in round 2 (time 1); agent 1 knows that too.
        assert oracle.known_decision(2, 1) == 0
        # Nobody decides at negative times.
        assert oracle.known_decision(0, -1) is None

    def test_unknown_outside_the_cone(self):
        pattern = FailurePattern.silent(5, faulty=[4], horizon=4)
        trace = self.make_trace(pattern=pattern)
        state = trace.state_of(1, 2)
        oracle = DecisionOracle(state.graph, anchor=1, anchor_time=2, t=2)
        assert oracle.known_decision(4, 1) is UNKNOWN

    def test_own_current_action_is_unknown(self):
        trace = self.make_trace()
        state = trace.state_of(1, 1)
        oracle = DecisionOracle(state.graph, anchor=1, anchor_time=1, t=2)
        assert oracle.known_decision(1, 1) is UNKNOWN

    def test_reconstruction_matches_actual_run(self):
        # Every decision the oracle attributes to an agent must match what the
        # agent actually did in the simulated run.
        preferences, pattern = hidden_chain_scenario(6, chain_length=2)
        trace = simulate(OptimalFipProtocol(3), 6, preferences, pattern, horizon=5)
        for observer in range(6):
            state = trace.state_of(observer, 4)
            oracle = DecisionOracle(state.graph, anchor=observer, anchor_time=4, t=3)
            for agent in range(6):
                for time in range(4):
                    known = oracle.known_decision(agent, time)
                    if known is UNKNOWN or known is None:
                        continue
                    action = trace.action_of(agent, time)
                    assert action.is_decision and action.value == known
