"""Integration tests: the paper's headline claims, end to end.

One test per claim, at sizes small enough to run in seconds.  The benchmark
harness (``benchmarks/``) reports the same quantities at larger sizes.
"""

import pytest

from repro.analysis import compare_protocols
from repro.experiments import decision_rounds, implementation_check, message_complexity
from repro.failures import SendingOmissionModel
from repro.protocols import (
    BasicProtocol,
    DelayedMinProtocol,
    MinProtocol,
    NaiveZeroBiasedProtocol,
    OptimalFipProtocol,
)
from repro.simulation import simulate
from repro.spec import check_eba
from repro.workloads import (
    enumerate_preferences,
    example_7_1 as example_7_1_scenario,
    intro_counterexample,
)


class TestProposition61:
    """Correctness and the t+2 termination bound, exhaustively for n=4, t=1."""

    @pytest.mark.parametrize("protocol_factory", [MinProtocol, BasicProtocol])
    def test_exhaustive_correctness_small_system(self, protocol_factory):
        n, t = 4, 1
        protocol = protocol_factory(t)
        model = SendingOmissionModel(n=n, t=t)
        checked = 0
        for pattern in model.enumerate(horizon=t + 2):
            for preferences in ((0, 1, 1, 1), (1, 1, 1, 1), (1, 0, 1, 0)):
                trace = simulate(protocol, n, preferences, pattern)
                report = check_eba(trace, deadline=t + 2, validity_for_faulty=True,
                                   termination_for_faulty=True)
                assert report.ok, report.violations()
                checked += 1
        assert checked > 1000

    def test_popt_correctness_over_all_preferences(self):
        n, t = 4, 1
        protocol = OptimalFipProtocol(t)
        model = SendingOmissionModel(n=n, t=t)
        patterns = [model.failure_free()] + [
            pattern for pattern in model.enumerate(horizon=t + 2)
            if pattern.num_faulty == 1 and len(pattern.omissions) in (3, 6)
        ][:40]
        for pattern in patterns:
            for preferences in enumerate_preferences(n):
                trace = simulate(protocol, n, preferences, pattern)
                report = check_eba(trace, deadline=t + 2, validity_for_faulty=True)
                assert report.ok, report.violations()


class TestIntroductionCounterexample:
    def test_naive_zero_bias_is_impossible_under_omissions(self):
        preferences, pattern = intro_counterexample(n=4, t=1)
        naive = simulate(NaiveZeroBiasedProtocol(1), 4, preferences, pattern)
        assert check_eba(naive).agreement
        for protocol in (MinProtocol(1), BasicProtocol(1), OptimalFipProtocol(1)):
            trace = simulate(protocol, 4, preferences, pattern)
            assert check_eba(trace).ok


class TestTheorems65And66:
    def test_implementation_checks_hold(self):
        for measurement in implementation_check.measure(n=3, t=1, include_fip=False):
            assert measurement.holds, measurement.claim


class TestTheoremA21:
    def test_popt_implements_p1_in_gamma_fip(self):
        # Proposition 7.9 / Theorem A.21: the communication-graph tests of
        # P_opt coincide with the model-checked knowledge-based program P1 at
        # every reachable local state of the full-information context.
        report = implementation_check.check_theorem_a21(n=3, t=1)
        assert report.ok, report.mismatches
        assert report.checked_states > 400


class TestExample71:
    def test_fip_decides_in_round_3_while_limited_exchanges_wait(self):
        n, t = 9, 4
        preferences, pattern = example_7_1_scenario(n=n, t=t)
        rounds = {}
        for protocol in (MinProtocol(t), BasicProtocol(t), OptimalFipProtocol(t)):
            trace = simulate(protocol, n, preferences, pattern)
            rounds[protocol.name] = trace.last_decision_round(nonfaulty_only=True)
        assert rounds["P_opt"] == 3
        assert rounds["P_min"] == t + 2
        assert rounds["P_basic"] == t + 2
        assert rounds["P_min"] - rounds["P_opt"] == t - 1

    def test_ablation_common_knowledge_rules_are_what_makes_p_opt_fast(self):
        n, t = 8, 4
        preferences, pattern = example_7_1_scenario(n=n, t=t)
        with_ck = simulate(OptimalFipProtocol(t), n, preferences, pattern)
        without_ck = simulate(OptimalFipProtocol(t, use_common_knowledge=False), n,
                              preferences, pattern)
        assert with_ck.last_decision_round(nonfaulty_only=True) == 3
        assert without_ck.last_decision_round(nonfaulty_only=True) == t + 2


class TestProposition81:
    def test_bit_complexity_shape(self):
        rows = message_complexity.measure_bits(8, 3)
        bits = {}
        for row in rows:
            bits.setdefault(row.protocol, set()).add(row.bits)
        assert bits["P_min"] == {64}
        assert max(bits["P_basic"]) <= 4 * 64 * 4
        assert min(bits["P_opt"]) > max(bits["P_basic"])


class TestProposition82:
    def test_failure_free_rounds(self):
        for measurement in decision_rounds.measure_decision_rounds(8, 3):
            assert measurement.matches_paper, measurement


class TestCorollary67:
    def test_pmin_is_not_strictly_dominated_in_gamma_min(self):
        # Compare P_min against a delayed competitor over every preference vector
        # for a handful of adversaries: the competitor never strictly dominates.
        n, t = 4, 1
        model = SendingOmissionModel(n=n, t=t)
        patterns = [model.failure_free(),
                    model.sample(__import__("random").Random(0), horizon=3),
                    model.sample(__import__("random").Random(1), horizon=3)]
        scenarios = [(prefs, pattern)
                     for pattern in patterns for prefs in enumerate_preferences(n)]
        result = compare_protocols(DelayedMinProtocol(t, delay=1), MinProtocol(t), n, scenarios)
        assert not result.first_strictly_dominates
        assert result.second_dominates
