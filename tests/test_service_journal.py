"""Tests for the persistent job journal (:mod:`repro.service.journal`).

The crash-safety contract, bottom up:

* append/replay round trips with last-event-wins folding;
* a torn final line (the signature of ``kill -9`` mid-append) is skipped and
  counted, never raised;
* ``recover_into`` re-serves terminal jobs verbatim and re-enqueues
  non-terminal ones through the ordinary wire path;
* compaction atomically rewrites state-not-history and survives a replay;
* a :class:`~repro.service.JobServer` restarted on the same journal path
  re-serves a finished job's payload byte-identically with zero
  recomputation, and re-runs whatever was in flight.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.core.errors import ServiceUnavailable
from repro.service import JobJournal, JobQueue, JobServer, ServiceClient, decode_request
from repro.service.jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING
from repro.service.journal import _TERMINAL_EVENTS
from repro.store import ArtifactStore


def run_body(preferences=(1, 0, 1)):
    from repro.service import run_request
    return run_request("min", 1, 3, list(preferences))


class TestReplay:
    def test_last_event_wins(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", "k1", kind="run", body={"type": "run"})
        journal.record("running", "k1")
        journal.record("done", "k1", result={"answer": 42})
        records = journal.replay()
        assert records["k1"]["state"] == "done"
        assert records["k1"]["result"] == {"answer": 42}
        # Fields accumulate: the body from the submit line survives the
        # done line that does not carry one.
        assert records["k1"]["body"] == {"type": "run"}

    def test_none_valued_fields_are_omitted(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", "k1", kind="run", body=None)
        assert "body" not in journal.replay()["k1"]

    def test_missing_file_is_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "nope.jsonl")
        assert journal.replay() == {}
        assert journal.torn_lines == 0

    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record("submit", "k1", kind="run", body={"type": "run"})
        journal.record("done", "k1", result={"ok": True})
        journal.close()
        # Simulate a crash mid-append: a second record whose line was cut.
        whole = json.dumps({"event": "submit", "job": "k2", "kind": "run"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(whole[: len(whole) // 2])
        records = journal.replay()
        assert journal.torn_lines == 1
        assert set(records) == {"k1"}  # the torn k2 line is simply gone
        assert records["k1"]["state"] == "done"

    def test_garbage_line_mid_file_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record("submit", "k1", kind="run")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\x00\xff not json\n")
        journal.record("done", "k1", result={"ok": 1})
        records = journal.replay()
        assert journal.torn_lines == 1
        assert records["k1"]["state"] == "done"


class TestRecovery:
    def test_done_job_is_adopted_terminal(self, tmp_path):
        body = run_body()
        request = decode_request(body)
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", request.key, kind="run", body=body)
        journal.record("done", request.key, result={"payload": "final"})
        queue = JobQueue()
        counts = journal.recover_into(queue)
        assert counts == {"done": 1, "failed": 0, "cancelled": 0,
                          "requeued": 0, "dropped": 0}
        job = queue.get(request.key)
        assert job.state == DONE and job.recovered
        assert job.result == {"payload": "final"}
        # A re-submission of the same request is served, not re-queued.
        resubmitted, coalesced = queue.submit(decode_request(body))
        assert resubmitted is job and not coalesced
        assert queue.store_hits == 1

    def test_failed_and_cancelled_jobs_keep_their_outcome(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", "kf", kind="run", body=run_body())
        journal.record("failed", "kf", error="boom")
        journal.record("submit", "kc", kind="run", body=run_body((0, 1, 1)))
        journal.record("cancelled", "kc")
        queue = JobQueue()
        counts = journal.recover_into(queue)
        assert counts["failed"] == 1
        assert queue.get("kf").state == FAILED
        assert queue.get("kf").error == "boom"
        assert queue.get("kc").state == CANCELLED

    def test_in_flight_job_is_requeued_for_a_fresh_attempt(self, tmp_path):
        body = run_body()
        request = decode_request(body)
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", request.key, kind="run", body=body)
        journal.record("running", request.key)  # crash happened here
        queue = JobQueue()
        counts = journal.recover_into(queue)
        assert counts["requeued"] == 1
        job = queue.get(request.key)
        assert job.state == QUEUED
        # A worker can pick it up and execute it normally.
        picked = queue.next_job(timeout=1.0)
        assert picked is job and picked.request.spec is not None

    def test_undecodable_body_is_dropped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", "kx", kind="run", body={"type": "nonsense"})
        journal.record("submit", "ky", kind="run")  # no body at all
        queue = JobQueue()
        counts = journal.recover_into(queue)
        assert counts == {"done": 0, "failed": 0, "cancelled": 0,
                          "requeued": 0, "dropped": 2}

    def test_done_without_payload_is_dropped(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", "kz", kind="run", body=run_body())
        journal.record("done", "kz")  # result lost somehow
        queue = JobQueue()
        assert journal.recover_into(queue)["dropped"] == 1
        with pytest.raises(Exception):
            queue.get("kz")

    def test_recovery_ignores_the_backpressure_bound(self, tmp_path):
        """A journal holding > max_queue pending jobs must not wedge restart.

        Pre-crash the queue can legitimately hold ``max_queue`` pending jobs;
        enforcing the bound during replay would make every restart fail the
        same way until the operator deleted the journal.
        """
        journal = JobJournal(tmp_path / "journal.jsonl")
        bodies = [run_body(p) for p in ((1, 0, 1), (0, 1, 1), (1, 1, 0))]
        for body in bodies:
            journal.record("submit", decode_request(body).key,
                           kind="run", body=body)
        queue = JobQueue(max_queue=1)
        counts = journal.recover_into(queue)
        assert counts["requeued"] == 3
        # ...and the bound still applies to *new* submissions afterwards.
        assert queue.max_queue == 1
        with pytest.raises(ServiceUnavailable):
            queue.submit(decode_request(run_body((0, 0, 1))))

    def test_pending_cancel_recovers_as_cancelled(self, tmp_path):
        """A crash between cancel() and the worker's confirmation must not
        resurrect a job the client had already asked to stop."""
        body = run_body()
        request = decode_request(body)
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", request.key, kind="run", body=body)
        journal.record("running", request.key)
        journal.record("cancel_requested", request.key)  # crash before confirm
        queue = JobQueue()
        counts = journal.recover_into(queue)
        assert counts["cancelled"] == 1 and counts["requeued"] == 0
        job = queue.get(request.key)
        assert job.state == CANCELLED and job.recovered

    def test_running_cancel_is_journaled_for_recovery(self, tmp_path):
        """End-to-end: queue.cancel on a running job writes the event."""
        body = run_body()
        journal = JobJournal(tmp_path / "journal.jsonl")
        queue = JobQueue()
        queue.journal = journal
        job, _ = queue.submit(decode_request(body))
        assert queue.next_job(timeout=1.0) is job
        queue.cancel(job.key)  # running: cooperative, not yet confirmed
        assert job.state == RUNNING and job.cancel_requested
        # Crash now: a fresh queue recovers the job as cancelled.
        queue2 = JobQueue()
        counts = JobJournal(tmp_path / "journal.jsonl").recover_into(queue2)
        assert counts["cancelled"] == 1
        assert queue2.get(job.key).state == CANCELLED


class TestWriteDegradation:
    """Journal write errors degrade crash-safety; they never crash the queue."""

    def test_write_error_is_counted_and_warned_once(self, tmp_path, caplog):
        journal = JobJournal(tmp_path / "journal.jsonl")
        (tmp_path / "journal.jsonl").mkdir()  # appending now raises OSError
        with caplog.at_level(logging.WARNING, logger="repro.service.journal"):
            journal.record("submit", "k1", kind="run", body=run_body())
            assert journal.write_errors == 1
            assert any("journal append" in record.message
                       for record in caplog.records)
            caplog.clear()
            # Further failures count silently — one warning per journal path.
            journal.record("running", "k1")
            assert journal.write_errors == 2
            assert not caplog.records

    def test_queue_transitions_survive_a_dead_journal(self, tmp_path):
        """finish/fail must not propagate a disk failure into the worker."""
        journal = JobJournal(tmp_path / "journal.jsonl")
        (tmp_path / "journal.jsonl").mkdir()
        queue = JobQueue()
        queue.journal = journal
        job, _ = queue.submit(decode_request(run_body()))
        assert queue.next_job(timeout=1.0) is job
        queue.finish(job, {"payload": "ok"})
        assert job.state == DONE and queue.executed == 1
        assert journal.write_errors == 3  # submit + running + done

    def test_write_errors_heal_when_the_disk_comes_back(self, tmp_path):
        """The handle is dropped on failure, so the next append reopens."""
        journal = JobJournal(tmp_path / "journal.jsonl")
        (tmp_path / "journal.jsonl").mkdir()
        journal.record("submit", "k1", kind="run", body=run_body())
        (tmp_path / "journal.jsonl").rmdir()  # the "disk" recovers
        journal.record("done", "k1", result={"late": True})
        assert journal.write_errors == 1
        assert JobJournal(tmp_path / "journal.jsonl").replay()["k1"][
            "state"] == "done"


class TestCompaction:
    def test_compaction_preserves_recovery_semantics(self, tmp_path):
        body = run_body()
        request = decode_request(body)
        journal = JobJournal(tmp_path / "journal.jsonl")
        # A noisy history: submit, run, retry, run, done.
        journal.record("submit", request.key, kind="run", body=body)
        journal.record("running", request.key)
        journal.record("retry", request.key, error="transient")
        journal.record("running", request.key)
        journal.record("done", request.key, result={"final": True})
        queue = JobQueue()
        journal.recover_into(queue)
        journal.compact(queue)
        # Two lines (submit + done), not five.
        lines = (tmp_path / "journal.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2
        # And a second recovery from the compacted file sees the same state.
        queue2 = JobQueue()
        counts = JobJournal(tmp_path / "journal.jsonl").recover_into(queue2)
        assert counts["done"] == 1
        assert queue2.get(request.key).result == {"final": True}

    def test_compacting_an_empty_queue_truncates(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("submit", "k1", kind="run")
        journal.compact(JobQueue())
        assert (tmp_path / "journal.jsonl").read_text() == ""

    def test_terminal_events_constant_matches_queue_states(self):
        assert set(_TERMINAL_EVENTS) == {DONE, FAILED, CANCELLED}


class TestServerRestart:
    def test_restarted_server_reserves_done_and_reruns_in_flight(self, tmp_path):
        """The in-process half of the crash-recovery acceptance test.

        Server 1 finishes a job against a journal; a *fresh* server on the
        same journal (cold store, so nothing can come from the cache)
        re-serves the identical payload without executing, and a journaled
        in-flight job is re-enqueued and completed by server 2's workers.
        """
        journal_path = tmp_path / "journal.jsonl"
        body = run_body()
        with JobServer(port=0, store=ArtifactStore(), workers=1,
                       journal=str(journal_path)) as server:
            client = ServiceClient(server.url)
            payload_before = client.submit_and_wait(body, timeout=60.0)
            job_id = client.submit(body)["job"]
        # Fake an in-flight job at crash time by appending to the journal the
        # way a crashed server would have left it.
        body2 = run_body((0, 0, 1))
        request2 = decode_request(body2)
        journal = JobJournal(journal_path)
        journal.record("submit", request2.key, kind="run", body=body2)
        journal.record("running", request2.key)
        journal.close()
        with JobServer(port=0, store=ArtifactStore(), workers=1,
                       journal=str(journal_path)) as server2:
            client2 = ServiceClient(server2.url)
            stats = client2.stats()
            assert stats["service"]["recovered"]["done"] == 1
            assert stats["service"]["recovered"]["requeued"] == 1
            assert stats["journal"]["path"] == str(journal_path)
            # Byte-identical re-serve, no recomputation.
            payload_after = client2.submit_and_wait(body, timeout=60.0)
            assert (json.dumps(payload_after, sort_keys=True)
                    == json.dumps(payload_before, sort_keys=True))
            status = client2.status(job_id)
            assert status["state"] == DONE and status.get("recovered") is True
            # The in-flight job completes on the new server.
            result2 = client2.wait(request2.key, timeout=60.0)
            assert result2["kind"] == "run"
            # Exactly one computation ran on server 2: the requeued job.
            # The recovered job was re-served, never re-executed.
            assert client2.stats()["service"]["executed"] == 1
