"""Tests for the experiment drivers (small, fast configurations).

These tests run every experiment at a reduced size and assert the *shape* of
the paper's claims (who wins, by what factor), which is exactly what the
benchmark harness reports at larger sizes.
"""

import pytest

from repro.experiments import (
    agreement_violation,
    decision_rounds,
    dominance_study,
    example_7_1,
    fip_gap,
    implementation_check,
    message_complexity,
    termination_bound,
)


class TestMessageComplexity:
    def test_pmin_sends_exactly_n_squared_bits(self):
        for measurement in message_complexity.measure_bits(6, 2):
            if measurement.protocol == "P_min":
                assert measurement.bits == 36
            assert measurement.within_bound

    def test_ordering_matches_paper(self):
        measurements = message_complexity.measure_bits(6, 2)
        by_protocol = {}
        for m in measurements:
            by_protocol.setdefault(m.protocol, []).append(m.bits)
        assert max(by_protocol["P_min"]) <= min(by_protocol["P_basic"])
        assert max(by_protocol["P_basic"]) <= min(by_protocol["P_opt"])

    def test_sweep_and_report(self):
        rows = message_complexity.sweep_bits([(4, 1), (5, 2)], include_fip=False)
        assert len(rows) == 2 * 2 * 2
        text = message_complexity.report(settings=((4, 1),), include_fip=False)
        assert "Proposition 8.1" in text


class TestDecisionRounds:
    def test_all_measurements_match_paper(self):
        for measurement in decision_rounds.measure_decision_rounds(6, 2):
            assert measurement.matches_paper, measurement

    def test_report_renders(self):
        assert "Proposition 8.2" in decision_rounds.report(settings=((4, 1),))


class TestExample71:
    def test_scaled_example_shape(self):
        measurements = example_7_1.measure_example(n=7, t=3)
        rounds = {m.protocol: m.nonfaulty_decide_by_round for m in measurements}
        assert rounds["P_opt"] == 3
        assert rounds["P_min"] == 5
        assert rounds["P_basic"] == 5
        assert all(m.decided_value == 1 for m in measurements)

    def test_sweep_only_full_exposure_triggers_common_knowledge(self):
        measurements = example_7_1.sweep_silent_faulty(6, 2)
        opt_rounds = {m.silent_faulty: m.nonfaulty_decide_by_round
                      for m in measurements if m.protocol == "P_opt"}
        min_rounds = {m.silent_faulty: m.nonfaulty_decide_by_round
                      for m in measurements if m.protocol == "P_min"}
        assert opt_rounds[2] == 3
        assert min_rounds[0] == 4 and min_rounds[2] == 4
        # The FIP is never slower than P_min anywhere in the sweep.
        assert all(opt_rounds[k] <= min_rounds[k] for k in opt_rounds)

    def test_report_renders(self):
        assert "Example 7.1" in example_7_1.report(n=5, t=2, include_sweep=False)


class TestDominance:
    @pytest.fixture(scope="class")
    def results(self):
        return dominance_study.study(n=5, t=2, random_count=8, seed=1)

    def test_richer_exchange_is_never_strictly_dominated(self, results):
        # Cross-exchange comparisons may come out strict in favour of the richer
        # information exchange, but never against it (Corollaries 6.7 / 7.8 say
        # each protocol is optimal for its own exchange; a poorer exchange
        # cannot beat it).
        richness = {"P_opt": 3, "P_basic": 2, "P_min": 1, "P_min_delayed(2)": 0}
        for (first, second), result in results.items():
            if richness[first] > richness[second]:
                assert not result.second_strictly_dominates, result.summary()
            if richness[second] > richness[first]:
                assert not result.first_strictly_dominates, result.summary()

    def test_pmin_strictly_dominates_delayed_baseline(self, results):
        result = results[("P_min", "P_min_delayed(2)")]
        assert result.first_strictly_dominates

    def test_opt_never_loses_to_limited_exchange(self, results):
        for (first, second), result in results.items():
            if first == "P_opt":
                assert result.first_dominates

    def test_report_renders(self):
        assert "dominance" in dominance_study.report(n=4, t=1, random_count=3)


class TestTermination:
    def test_worst_case_within_bound(self):
        scenarios = termination_bound.adversarial_workload(5, 2, random_count=8, seed=2)
        for measurement in termination_bound.measure_termination(5, 2, scenarios):
            assert measurement.within_bound
            assert measurement.spec_violations == 0

    def test_exhaustive_small_workload(self):
        scenarios = termination_bound.exhaustive_workload(3, 1, horizon=1)
        assert len(scenarios) == (1 + 3 * 4) * 8

    def test_report_renders(self):
        assert "Proposition 6.1" in termination_bound.report(n=4, t=1, random_count=4)


class TestAgreementViolation:
    def test_naive_breaks_and_chain_protocols_do_not(self):
        for measurement in agreement_violation.measure_agreement(n=5, t=2):
            if measurement.expected_to_break:
                assert not measurement.agreement_holds
            else:
                assert measurement.agreement_holds

    def test_report_renders(self):
        assert "counterexample" in agreement_violation.report(sizes=((3, 1),))


class TestImplementationCheck:
    def test_measurements_all_hold(self):
        for measurement in implementation_check.measure(n=3, t=1, include_equivalence=False):
            assert measurement.holds

    def test_report_renders(self):
        text = implementation_check.report(n=3, t=1)
        assert "Theorem 6.5" in text and "Theorem 6.6" in text


class TestFipGap:
    def test_random_gap_is_small(self):
        for measurement in fip_gap.random_gap_study(n=5, t=2, count=10, seed=5):
            assert measurement.mean_gap <= 1.0
            assert measurement.max_gap <= 2 + 1

    def test_worst_case_gap_ranks_protocols(self):
        measurements = {m.protocol: m for m in fip_gap.worst_case_gap_study(n=6, t=2)}
        assert measurements["P_min"].mean_gap >= measurements["P_basic"].mean_gap
        assert measurements["P_min"].max_gap >= 1

    def test_report_renders(self):
        assert "P_opt" in fip_gap.report(n=5, t=1, count=5)
